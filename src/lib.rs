//! # Tessel
//!
//! A Rust reproduction of *Tessel: Boosting Distributed Execution of Large DNN
//! Models via Flexible Schedule Search* (HPCA 2024).
//!
//! This facade crate re-exports the workspace members so applications can use
//! a single dependency:
//!
//! - [`core`] — problem IR, schedules, repetend search, schedule completion.
//! - [`solver`] — exact disjunctive scheduling solver (Z3 substitute).
//! - [`placement`] — operator placement shapes and the Piper-style partitioner.
//! - [`models`] — GPT / mT5 / Flava analytical cost models.
//! - [`baselines`] — 1F1B, GPipe, Chimera, 1F1B+ and tensor-parallel schedules.
//! - [`runtime`] — runtime instantiation and the discrete-event cluster simulator.
//! - [`service`] — the schedule-search daemon: canonical-fingerprint result
//!   cache, single-flight coalescing, HTTP API and CLI client.
//!
//! # Quickstart
//!
//! ```
//! use tessel::placement::shapes::{ShapeKind, synthetic_placement};
//! use tessel::core::search::{SearchConfig, TesselSearch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A V-shape (1F1B-style) placement over 4 devices with unit costs.
//! let placement = synthetic_placement(ShapeKind::V, 4)?;
//! let search = TesselSearch::new(SearchConfig::default());
//! let outcome = search.run(&placement)?;
//! assert!(outcome.schedule.validate(&placement).is_ok());
//! # Ok(())
//! # }
//! ```

pub use tessel_baselines as baselines;
pub use tessel_core as core;
pub use tessel_models as models;
pub use tessel_placement as placement;
pub use tessel_runtime as runtime;
pub use tessel_service as service;
pub use tessel_solver as solver;
