//! Flava multi-modal inference on 4 GPUs (the Fig. 15 scenario): the K-shape
//! placement runs the text and vision branches concurrently, and Tessel's
//! searched schedule trades a little latency for much higher throughput than
//! pure tensor parallelism.
//!
//! ```bash
//! cargo run --release --example flava_inference
//! ```

use tessel::baselines::tensor_parallel_schedule;
use tessel::core::search::{SearchConfig, TesselSearch};
use tessel::models::config::FlavaConfig;
use tessel::models::cost::CostModel;
use tessel::placement::shapes::flava_k_shape;
use tessel::runtime::{instantiate, simulate, ClusterSpec, CommMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpus = 4;
    let requests = 16;
    let config = FlavaConfig::default();
    let cost = CostModel::paper_default();
    let cluster = ClusterSpec::v100_cluster(gpus);

    let placement = flava_k_shape(&config, &cost, gpus, true)?;
    println!(
        "Flava: {} text + {} vision + {} cross layers, hidden {} — inference placement `{}`",
        config.text_layers,
        config.vision_layers,
        config.cross_layers,
        config.hidden_size,
        placement.name()
    );

    // Tessel schedule for the K-shape placement.
    let outcome =
        TesselSearch::new(SearchConfig::default().with_micro_batches(requests)).run(&placement)?;
    let tessel = simulate(
        &instantiate(&placement, &outcome.schedule, CommMode::NonBlocking)?,
        &cluster,
        CommMode::NonBlocking,
    )?;

    // Pure tensor parallelism: lowest single-request latency, serialised
    // throughput.
    let (tp_placement, tp_schedule) = tensor_parallel_schedule(&placement, requests)?;
    let tensor_parallel = simulate(
        &instantiate(&tp_placement, &tp_schedule, CommMode::NonBlocking)?,
        &cluster,
        CommMode::NonBlocking,
    )?;

    println!("\n{requests} requests:");
    println!(
        "  Tessel (K-shape) : {:6.0} ms, {:5.1} req/s",
        tessel.iteration_seconds(&cluster) * 1e3,
        tessel.requests_per_second(&cluster)
    );
    println!(
        "  Tensor parallel  : {:6.0} ms, {:5.1} req/s",
        tensor_parallel.iteration_seconds(&cluster) * 1e3,
        tensor_parallel.requests_per_second(&cluster)
    );
    println!(
        "\nTessel throughput speedup over tensor parallelism: {:.2}x",
        tessel.requests_per_second(&cluster) / tensor_parallel.requests_per_second(&cluster)
    );
    Ok(())
}
