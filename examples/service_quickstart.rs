//! Quickstart for the in-process schedule-search service: no sockets, just
//! the library API — submit a search, watch the second (and a device-permuted
//! third) request hit the canonical-fingerprint cache, and read the metrics.
//!
//! ```bash
//! cargo run --release --example service_quickstart
//! ```

use tessel::placement::shapes::{synthetic_placement, ShapeKind};
use tessel::service::wire::SearchRequest;
use tessel::service::{ScheduleService, ServiceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = ScheduleService::new(ServiceConfig {
        default_micro_batches: 8,
        default_max_repetend: 3,
        ..ServiceConfig::default()
    })?;

    let placement = synthetic_placement(ShapeKind::X, 4)?;

    // First request: a cache miss that runs the full Tessel search.
    let miss = service.search(&SearchRequest::for_placement(placement.clone()))?;
    println!(
        "miss : fingerprint={} period={} bubble={:.1}% searched in {}ms",
        miss.fingerprint,
        miss.period,
        miss.bubble_rate * 100.0,
        miss.search_millis
    );

    // Second, identical request: served from the cache.
    let hit = service.search(&SearchRequest::for_placement(placement.clone()))?;
    println!(
        "hit  : cached={} identical schedule={}",
        hit.cached,
        hit.schedule == miss.schedule
    );

    // A device-relabeled variant of the same placement still hits, via the
    // canonical fingerprint; its schedule comes back in *its* labeling.
    let devices = placement.num_devices();
    let rotation: Vec<usize> = (0..devices).map(|d| (d + 1) % devices).collect();
    let order: Vec<usize> = (0..placement.num_blocks()).collect();
    let rotated = placement.permuted(&rotation, &order)?;
    let permuted_hit = service.search(&SearchRequest::for_placement(rotated.clone()))?;
    println!(
        "perm : cached={} same fingerprint={} valid in its own labeling={}",
        permuted_hit.cached,
        permuted_hit.fingerprint == miss.fingerprint,
        permuted_hit.schedule.validate(&rotated).is_ok()
    );

    // Per-device utilization comes from the cluster simulator.
    for row in &miss.utilization.devices {
        println!(
            "dev {}: busy {:>4.1}% comm {:>4.1}% wait {:>4.1}%",
            row.device,
            row.busy_fraction * 100.0,
            row.comm_fraction * 100.0,
            row.wait_fraction * 100.0
        );
    }

    let metrics = service.metrics_snapshot();
    println!(
        "metrics: {} requests, {} hits, {} misses (hit rate {:.0}%), p50 {:.2}ms",
        metrics.requests,
        metrics.cache_hits,
        metrics.cache_misses,
        metrics.hit_rate * 100.0,
        metrics.latency_p50_ms
    );
    Ok(())
}
