//! GPT with a large multilingual embedding: the workload that motivates the
//! paper (Fig. 2 and Fig. 13). Builds both the conventional 1F1B/Piper
//! placement and the M-shape placement, searches a schedule with Tessel, and
//! compares simulated training throughput.
//!
//! ```bash
//! cargo run --release --example gpt_large_embedding
//! ```

use tessel::baselines::{one_f_one_b, one_f_one_b_plus};
use tessel::core::search::{SearchConfig, TesselSearch};
use tessel::models::config::gpt_config_for_gpus;
use tessel::models::cost::CostModel;
use tessel::placement::shapes::{gpt_m_shape, gpt_v_shape_baseline};
use tessel::runtime::{instantiate, simulate, ClusterSpec, CommMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpus = 4;
    let micro_batches = 8;
    let config = gpt_config_for_gpus(gpus).expect("Table III lists the 4-GPU GPT configuration");
    let cost = CostModel::paper_default();
    let cluster = ClusterSpec::v100_cluster(4);

    println!(
        "GPT {} layers, hidden {}, vocabulary {} (~{:.0}B parameters) on {gpus} GPUs",
        config.num_layers,
        config.hidden_size,
        config.vocab_size,
        config.approx_params_billions()
    );

    // Conventional placement (Piper policy): the embedding hogs entire GPUs.
    let v_shape = gpt_v_shape_baseline(&config, &cost, gpus)?;
    let loads: Vec<u64> = (0..v_shape.num_devices())
        .map(|d| v_shape.device_load(d))
        .collect();
    println!("\n1F1B/Piper placement per-device load: {loads:?} (time units per micro-batch)");
    let baseline = one_f_one_b(&v_shape, micro_batches)?;
    let baseline_report = simulate(
        &instantiate(&v_shape, &baseline, CommMode::NonBlocking)?,
        &cluster,
        CommMode::NonBlocking,
    )?;

    // Advanced M-shape placement: embedding distributed across all GPUs.
    let m_shape = gpt_m_shape(&config, &cost, gpus)?;
    let loads: Vec<u64> = (0..m_shape.num_devices())
        .map(|d| m_shape.device_load(d))
        .collect();
    println!("M-shape placement per-device load   : {loads:?}");

    let plus = one_f_one_b_plus(&m_shape, micro_batches)?;
    let plus_report = simulate(
        &instantiate(&m_shape, &plus, CommMode::NonBlocking)?,
        &cluster,
        CommMode::NonBlocking,
    )?;

    let outcome = TesselSearch::new(SearchConfig::default().with_micro_batches(micro_batches))
        .run(&m_shape)?;
    let tessel_report = simulate(
        &instantiate(&m_shape, &outcome.schedule, CommMode::NonBlocking)?,
        &cluster,
        CommMode::NonBlocking,
    )?;

    println!("\niteration time ({micro_batches} micro-batches):");
    println!(
        "  1F1B  (V-shape): {:.2} s",
        baseline_report.iteration_seconds(&cluster)
    );
    println!(
        "  1F1B+ (M-shape): {:.2} s",
        plus_report.iteration_seconds(&cluster)
    );
    println!(
        "  Tessel (M-shape): {:.2} s",
        tessel_report.iteration_seconds(&cluster)
    );
    println!(
        "\nTessel speedup: {:.2}x over 1F1B, {:.2}x over 1F1B+",
        baseline_report.iteration_seconds(&cluster) / tessel_report.iteration_seconds(&cluster),
        plus_report.iteration_seconds(&cluster) / tessel_report.iteration_seconds(&cluster)
    );
    Ok(())
}
