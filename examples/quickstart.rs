//! Quickstart: build a small V-shape (1F1B-style) placement, run the Tessel
//! search and print the resulting schedule.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use tessel::core::ir::{BlockKind, PlacementSpec};
use tessel::core::search::{SearchConfig, TesselSearch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-stage pipeline: one forward block (1 time unit, +1 memory unit) and
    // one backward block (2 time units, -1 memory unit) per device.
    let devices = 4;
    let mut builder = PlacementSpec::builder("quickstart-v4", devices);
    builder.set_memory_capacity(Some(devices as i64 + 1));
    let mut prev = None;
    for d in 0..devices {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(builder.add_block(format!("f{d}"), BlockKind::Forward, [d], 1, 1, deps)?);
    }
    for d in (0..devices).rev() {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(builder.add_block(format!("b{d}"), BlockKind::Backward, [d], 2, -1, deps)?);
    }
    let placement = builder.build()?;

    let search = TesselSearch::new(SearchConfig::default().with_micro_batches(8));
    let outcome = search.run(&placement)?;

    println!("placement      : {}", placement.name());
    println!("repetend NR    : {}", outcome.repetend.num_micro_batches());
    println!("repetend period: {} time units", outcome.repetend.period);
    println!(
        "steady bubble  : {:.0}%",
        outcome.repetend.bubble_rate(&placement) * 100.0
    );
    println!(
        "schedule makespan for 8 micro-batches: {}",
        outcome.schedule.makespan()
    );
    println!("\n{}", outcome.schedule.render_ascii());

    // The searched schedule generalises to any number of micro-batches.
    let schedule_32 = outcome.schedule_for(&placement, 32)?;
    println!(
        "extended to 32 micro-batches: makespan {} (bubble {:.1}%)",
        schedule_32.makespan(),
        schedule_32.bubble_rate() * 100.0
    );
    Ok(())
}
