//! mT5 multilingual training with a shared large embedding (the Fig. 14
//! scenario): the NN-shape distributes the embedding across all GPUs and runs
//! the encoder and decoder stacks on disjoint device groups; Tessel finds the
//! schedule that keeps both halves busy.
//!
//! ```bash
//! cargo run --release --example mt5_multilingual
//! ```

use tessel::baselines::{one_f_one_b, one_f_one_b_plus};
use tessel::core::search::{SearchConfig, TesselSearch};
use tessel::models::config::mt5_config_for_gpus;
use tessel::models::cost::CostModel;
use tessel::placement::shapes::{mt5_nn_shape, mt5_v_shape_baseline};
use tessel::runtime::{instantiate, simulate, ClusterSpec, CommMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpus = 4;
    let micro_batches = 8;
    let config = mt5_config_for_gpus(gpus).expect("Table III lists the 4-GPU mT5 configuration");
    let cost = CostModel::paper_default();
    let cluster = ClusterSpec::v100_cluster(4);

    println!(
        "mT5: {} layers, hidden {}, vocabulary {} (~{:.1}B parameters) on {gpus} GPUs",
        config.num_layers,
        config.hidden_size,
        config.vocab_size,
        config.approx_params_billions()
    );

    let nn_shape = mt5_nn_shape(&config, &cost, gpus)?;
    let v_shape = mt5_v_shape_baseline(&config, &cost, gpus)?;

    let outcome = TesselSearch::new(SearchConfig::default().with_micro_batches(micro_batches))
        .run(&nn_shape)?;
    println!(
        "\nTessel repetend: NR={}, period={} time units, steady-state bubble {:.0}%",
        outcome.repetend.num_micro_batches(),
        outcome.repetend.period,
        outcome.repetend.bubble_rate(&nn_shape) * 100.0
    );

    let seconds = |placement: &tessel::core::PlacementSpec,
                   schedule: &tessel::core::Schedule|
     -> Result<f64, Box<dyn std::error::Error>> {
        let report = simulate(
            &instantiate(placement, schedule, CommMode::NonBlocking)?,
            &cluster,
            CommMode::NonBlocking,
        )?;
        Ok(report.iteration_seconds(&cluster))
    };

    let tessel_s = seconds(&nn_shape, &outcome.schedule)?;
    let plus_s = seconds(&nn_shape, &one_f_one_b_plus(&nn_shape, micro_batches)?)?;
    let f1b_s = seconds(&v_shape, &one_f_one_b(&v_shape, micro_batches)?)?;

    println!("\niteration time ({micro_batches} micro-batches):");
    println!("  1F1B  (V-shape) : {f1b_s:.2} s");
    println!("  1F1B+ (NN-shape): {plus_s:.2} s");
    println!("  Tessel (NN-shape): {tessel_s:.2} s");
    println!(
        "\nTessel speedup: {:.2}x over 1F1B, {:.2}x over 1F1B+",
        f1b_s / tessel_s,
        plus_s / tessel_s
    );
    Ok(())
}
