//! Searching a schedule for a custom, user-defined operator placement — the
//! "unexplored shapes" use case of the paper: any placement a downstream
//! system produces can be handed to Tessel as long as it is expressed as
//! blocks, devices, costs and dependencies.
//!
//! The placement built here is a two-branch model whose branches share the
//! first device but diverge afterwards (a shape none of the pre-defined
//! schedules covers).
//!
//! ```bash
//! cargo run --release --example custom_placement
//! ```

use tessel::baselines::gpipe;
use tessel::core::ir::{BlockKind, PlacementSpec};
use tessel::core::search::{SearchConfig, TesselSearch};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = PlacementSpec::builder("custom-two-branch", 3);
    b.set_memory_capacity(Some(6));
    // A shared stem on device 0.
    let stem_f = b.add_block("stem-f", BlockKind::Forward, [0], 2, 1, [])?;
    // Branch A on device 1, branch B on device 2.
    let a_f = b.add_block("branchA-f", BlockKind::Forward, [1], 3, 1, [stem_f])?;
    let b_f = b.add_block("branchB-f", BlockKind::Forward, [2], 4, 1, [stem_f])?;
    // A fusion block back on device 0 consuming both branches.
    let fuse_f = b.add_block("fuse-f", BlockKind::Forward, [0], 1, 1, [a_f, b_f])?;
    // Backward pass mirrors the forward structure.
    let fuse_b = b.add_block("fuse-b", BlockKind::Backward, [0], 2, -1, [fuse_f])?;
    let a_b = b.add_block("branchA-b", BlockKind::Backward, [1], 6, -1, [fuse_b])?;
    let b_b = b.add_block("branchB-b", BlockKind::Backward, [2], 8, -1, [fuse_b])?;
    b.add_block("stem-b", BlockKind::Backward, [0], 4, -1, [a_b, b_b])?;
    let placement = b.build()?;

    println!("custom placement `{}`:", placement.name());
    for (i, block) in placement.blocks().iter().enumerate() {
        println!(
            "  [{i}] {:12} devices {:?} time {} memory {:+} deps {:?}",
            block.name, block.devices, block.time, block.memory, block.deps
        );
    }

    let n = 8;
    let outcome =
        TesselSearch::new(SearchConfig::default().with_micro_batches(n)).run(&placement)?;
    println!(
        "\nTessel: repetend over {} micro-batches, period {}, steady-state bubble {:.0}%",
        outcome.repetend.num_micro_batches(),
        outcome.repetend.period,
        outcome.repetend.bubble_rate(&placement) * 100.0
    );
    println!("{}", outcome.schedule.render_ascii());

    // Compare against GPipe on the same placement.
    match gpipe(&placement, n) {
        Ok(schedule) => println!(
            "GPipe makespan {} vs Tessel makespan {} ({:.2}x)",
            schedule.makespan(),
            outcome.schedule.makespan(),
            schedule.makespan() as f64 / outcome.schedule.makespan() as f64
        ),
        Err(e) => println!("GPipe failed on this placement: {e}"),
    }
    Ok(())
}
