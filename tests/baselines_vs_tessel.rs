//! Integration tests comparing Tessel's searched schedules against the
//! baseline schedules, mirroring the qualitative claims of the paper's
//! evaluation.

use tessel::baselines::{gpipe, one_f_one_b, one_f_one_b_plus, tensor_parallel_schedule};
use tessel::core::search::{SearchConfig, TesselSearch};
use tessel::models::config::FlavaConfig;
use tessel::models::cost::CostModel;
use tessel::placement::shapes::{flava_k_shape, synthetic_placement, ShapeKind};

#[test]
fn tessel_matches_1f1b_on_its_home_turf() {
    // On the V-shape placement the 1F1B schedule is already optimal in the
    // steady state; Tessel's searched schedule matches its bubble rate.
    let placement = synthetic_placement(ShapeKind::V, 4)
        .unwrap()
        .with_memory_capacity(Some(5));
    let n = 24;
    let tessel = TesselSearch::new(SearchConfig::default().with_micro_batches(n))
        .run(&placement)
        .unwrap();
    let f1b = one_f_one_b(&placement, n).unwrap();
    // The repetend solver optimises the repetend makespan and recovers the
    // period with a compaction pass; on the 4-device V-shape this lands on
    // the 1F1B optimum or within one time unit of it (see EXPERIMENTS.md).
    assert!(tessel.repetend.period <= placement.repetend_lower_bound() + 1);
    // The overall cost stays in the same league as the hand-written 1F1B
    // schedule: within the small per-micro-batch residual noted above plus
    // the warmup/cooldown boundary.
    let budget = f1b.makespan() + n as u64 + placement.total_block_time();
    assert!(
        tessel.schedule.makespan() <= budget,
        "Tessel {} vs budget {budget}",
        tessel.schedule.makespan()
    );
}

#[test]
fn tessel_beats_fixed_schedules_on_advanced_placements() {
    // The headline claim: on the M/NN shapes a searched schedule beats the
    // manual 1F1B+ adaptation, which in turn beats GPipe.
    for shape in [ShapeKind::M, ShapeKind::NN] {
        let placement = synthetic_placement(shape, 4).unwrap();
        let n = 16;
        let tessel = TesselSearch::new(SearchConfig::default().with_micro_batches(n))
            .run(&placement)
            .unwrap();
        let plus = one_f_one_b_plus(&placement, n).unwrap();
        assert!(
            tessel.schedule.makespan() <= plus.makespan(),
            "{shape}: Tessel {} vs 1F1B+ {}",
            tessel.schedule.makespan(),
            plus.makespan()
        );
        let gpipe_schedule = gpipe(&placement, n).unwrap();
        assert!(tessel.schedule.makespan() <= gpipe_schedule.makespan());
    }
}

#[test]
fn baseline_schedules_validate_against_their_placements() {
    for shape in ShapeKind::all() {
        let placement = synthetic_placement(shape, 4).unwrap();
        for n in [2usize, 6] {
            let plus = one_f_one_b_plus(&placement, n).unwrap();
            plus.validate(&placement).unwrap();
            let gp = gpipe(&placement, n).unwrap();
            gp.validate(&placement).unwrap();
        }
    }
}

#[test]
fn inference_tradeoff_matches_fig15_shape() {
    // Tensor parallelism has the lowest single-request latency; Tessel's
    // K-shape schedule has the higher throughput at larger batch counts.
    let placement = flava_k_shape(
        &FlavaConfig::default(),
        &CostModel::paper_default(),
        4,
        true,
    )
    .unwrap();
    let tessel_outcome = TesselSearch::new(SearchConfig::default().with_micro_batches(16))
        .run(&placement)
        .unwrap();
    let (_, tp16) = tensor_parallel_schedule(&placement, 16).unwrap();
    let tessel16 = tessel_outcome.schedule_for(&placement, 16).unwrap();
    assert!(
        tessel16.makespan() < tp16.makespan(),
        "pipelined K-shape should finish 16 requests sooner than serialised tensor parallelism"
    );
    // Single request: tensor parallelism is at least as fast as running the
    // whole micro-batch through the pipeline sequentially.
    let (_, tp1) = tensor_parallel_schedule(&placement, 1).unwrap();
    assert!(tp1.makespan() <= placement.total_block_time());
}

#[test]
fn one_f_one_b_memory_cap_matches_pipeline_depth() {
    let placement = synthetic_placement(ShapeKind::V, 4).unwrap();
    let schedule = one_f_one_b(&placement, 16).unwrap();
    let peaks = schedule.peak_memory();
    // The first stage holds at most D = 4 in-flight micro-batches.
    assert!(peaks[0] <= 4);
}
