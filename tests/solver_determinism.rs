//! Cross-thread determinism of the work-stealing parallel solver.
//!
//! The parallel search shares a lock-free dominance table and an atomic
//! incumbent bound between workers, steals subtrees between their Chase–Lev
//! deques, and merges per-worker results at the end — none of which may
//! change *what is proved*. These tests pin that property end to end: for thread counts
//! 1, 2, 4 and 8 the proved optimal period/makespan must be identical on
//! every built-in placement shape and on a battery of randomized instances
//! (where infeasibility verdicts must agree too).

use tessel::core::search::{SearchConfig, TesselSearch};
use tessel::placement::shapes::{synthetic_placement, ShapeKind};
use tessel::solver::{InstanceBuilder, Solver, SolverConfig};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A bounded-but-quick search configuration: small enough that 5 shapes × 4
/// thread counts stay in the seconds range, large enough to exercise real
/// repetend searches with warmup/cooldown completion.
fn shape_config(solver_threads: usize) -> SearchConfig {
    let mut config = SearchConfig::default()
        .with_micro_batches(6)
        .with_max_repetend_micro_batches(3)
        .with_solver_threads(solver_threads);
    config.candidate_limit = Some(600);
    config
}

#[test]
fn built_in_shapes_prove_the_same_period_for_all_thread_counts() {
    for shape in [
        ShapeKind::V,
        ShapeKind::X,
        ShapeKind::M,
        ShapeKind::NN,
        ShapeKind::K,
    ] {
        let placement = synthetic_placement(shape, 4).expect("placement");
        let mut reference = None;
        for threads in THREAD_COUNTS {
            let outcome = TesselSearch::new(shape_config(threads))
                .run(&placement)
                .expect("search");
            outcome.schedule.validate(&placement).expect("valid");
            let period = outcome.repetend.period;
            match reference {
                None => reference = Some(period),
                Some(expected) => assert_eq!(
                    period, expected,
                    "{shape}: solver_threads={threads} found period {period}, serial found {expected}"
                ),
            }
        }
    }
}

/// Deterministic xorshift-style generator — no external crates, same
/// sequence on every host, so failures reproduce exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random precedence-constrained instance: 3 devices, 8–14 tasks, random
/// DAG edges (always from lower to higher task index, so acyclic), durations
/// 1–4, memory deltas in {-1, 0, 1} under a tight capacity, occasional
/// two-device (tensor-parallel-style) tasks.
fn random_instance(seed: u64) -> tessel::solver::Instance {
    let mut rng = Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef);
    let devices = 3usize;
    let tasks = 8 + rng.below(7) as usize;
    let mut b = InstanceBuilder::new(devices);
    if rng.below(2) == 0 {
        b.set_memory_capacity(Some(2 + rng.below(3) as i64));
    }
    let mut ids = Vec::with_capacity(tasks);
    for i in 0..tasks {
        let duration = 1 + rng.below(4);
        let memory = rng.below(3) as i64 - 1;
        let first = rng.below(devices as u64) as usize;
        let devs: Vec<usize> = if rng.below(8) == 0 {
            let second = (first + 1) % devices;
            vec![first, second]
        } else {
            vec![first]
        };
        let id = b
            .add_task(format!("t{i}"), duration, devs, memory)
            .expect("task");
        ids.push(id);
    }
    for j in 1..tasks {
        // Each task draws 0-2 predecessors from earlier tasks.
        for _ in 0..rng.below(3) {
            let i = rng.below(j as u64) as usize;
            let _ = b.add_precedence(ids[i], ids[j]);
        }
    }
    b.build().expect("instance")
}

#[test]
fn randomized_instances_agree_across_thread_counts() {
    for seed in 0..25u64 {
        let instance = random_instance(seed);
        let mut reference: Option<Option<u64>> = None;
        for threads in THREAD_COUNTS {
            let solver = Solver::new(SolverConfig::exhaustive().with_threads(threads));
            let outcome = solver.minimize(&instance).expect("solve");
            assert!(
                outcome.stats().complete,
                "seed {seed}: exhaustive search must complete"
            );
            let makespan = outcome.solution().map(|sol| {
                sol.validate(&instance).expect("valid");
                sol.makespan()
            });
            match &reference {
                None => reference = Some(makespan),
                Some(expected) => assert_eq!(
                    &makespan, expected,
                    "seed {seed}: threads={threads} disagrees with serial"
                ),
            }
        }
    }
}

#[test]
fn randomized_satisfiability_agrees_across_thread_counts() {
    for seed in 0..10u64 {
        let instance = random_instance(seed);
        let serial = Solver::new(SolverConfig::exhaustive())
            .minimize(&instance)
            .expect("solve");
        let Some(best) = serial.solution().map(tessel::solver::Solution::makespan) else {
            continue;
        };
        for threads in THREAD_COUNTS {
            let solver = Solver::new(SolverConfig::exhaustive().with_threads(threads));
            // At the optimum: satisfiable. Strictly below it: not.
            let sat = solver.satisfy(&instance, best).expect("satisfy");
            assert!(
                sat.solution().is_some(),
                "seed {seed}: threads={threads} missed a schedule at the optimum"
            );
            if best > 0 {
                let unsat = solver.satisfy(&instance, best - 1).expect("satisfy");
                assert!(
                    unsat.solution().is_none(),
                    "seed {seed}: threads={threads} beat the proved optimum"
                );
            }
        }
    }
}
