//! Integration tests spanning the full pipeline: model cost model →
//! placement → Tessel search → runtime instantiation → cluster simulation.

use tessel::core::search::{SearchConfig, TesselSearch};
use tessel::models::config::{gpt_config_for_gpus, mt5_config_for_gpus, FlavaConfig};
use tessel::models::cost::CostModel;
use tessel::placement::shapes::{
    flava_k_shape, gpt_m_shape, mt5_nn_shape, synthetic_placement, ShapeKind,
};
use tessel::runtime::{instantiate, simulate, ClusterSpec, CommMode};

fn search(placement: &tessel::core::PlacementSpec, n: usize) -> tessel::core::SearchOutcome {
    TesselSearch::new(SearchConfig::default().with_micro_batches(n))
        .run(placement)
        .expect("search succeeds")
}

#[test]
fn gpt_m_shape_end_to_end() {
    let config = gpt_config_for_gpus(4).unwrap();
    let placement = gpt_m_shape(&config, &CostModel::paper_default(), 4).unwrap();
    let outcome = search(&placement, 8);
    outcome.schedule.validate(&placement).unwrap();

    let cluster = ClusterSpec::v100_cluster(placement.num_devices());
    let program = instantiate(&placement, &outcome.schedule, CommMode::NonBlocking).unwrap();
    let report = simulate(&program, &cluster, CommMode::NonBlocking).unwrap();
    // The simulator replays the per-device *order* of the schedule: it may
    // close idle gaps the composed schedule left at phase boundaries and it
    // adds communication time, so the simulated makespan stays within a
    // modest factor of the schedule's makespan in both directions.
    assert!(report.makespan >= outcome.schedule.makespan() / 2);
    assert!(report.makespan < outcome.schedule.makespan() * 2);
    assert!(report.pflops(&cluster) > 0.0);
    // Peak activation memory respects the placement budget.
    let cap = placement.memory_capacity().unwrap();
    assert!(report.peak_memory.iter().all(|&m| m <= cap));
}

#[test]
fn mt5_nn_shape_end_to_end() {
    let config = mt5_config_for_gpus(4).unwrap();
    let placement = mt5_nn_shape(&config, &CostModel::paper_default(), 4).unwrap();
    let outcome = search(&placement, 6);
    outcome.schedule.validate(&placement).unwrap();
    // The steady state beats the trivially sequential repetend.
    assert!(outcome.repetend.period < placement.total_block_time());
}

#[test]
fn flava_k_shape_inference_end_to_end() {
    let placement = flava_k_shape(
        &FlavaConfig::default(),
        &CostModel::paper_default(),
        4,
        true,
    )
    .unwrap();
    let outcome = search(&placement, 8);
    outcome.schedule.validate(&placement).unwrap();
    // Inference placements are forward-only.
    assert!(outcome
        .schedule
        .blocks()
        .iter()
        .all(|b| b.kind.is_forward()));
    // The two branches overlap: the repetend period is below the sum of all
    // block times.
    assert!(outcome.repetend.period < placement.total_block_time());
}

#[test]
fn every_synthetic_shape_is_searchable_and_extendable() {
    for shape in ShapeKind::all() {
        let placement = synthetic_placement(shape, 4).unwrap();
        // The X-shape has two independent 8-block chains and therefore a very
        // large candidate space; cap the enumeration to keep the test fast
        // (quality is not asserted here, only validity).
        let mut config = SearchConfig::default().with_micro_batches(8);
        config.candidate_limit = Some(400);
        let outcome = TesselSearch::new(config)
            .run(&placement)
            .expect("search succeeds");
        outcome.schedule.validate(&placement).unwrap();
        for n in [8usize, 12, 20] {
            let schedule = outcome.schedule_for(&placement, n).unwrap();
            schedule.validate(&placement).unwrap();
            assert_eq!(schedule.num_micro_batches(), n);
        }
        // More micro-batches never increase the per-micro-batch cost in the
        // steady state: the marginal cost of one more micro-batch is exactly
        // one repetend period.
        let s12 = outcome.schedule_for(&placement, 12).unwrap();
        let s13 = outcome.schedule_for(&placement, 13).unwrap();
        assert_eq!(s13.makespan() - s12.makespan(), outcome.repetend.period);
    }
}

#[test]
fn memory_constrained_search_degrades_gracefully() {
    let placement = synthetic_placement(ShapeKind::V, 4).unwrap();
    let mut previous_period = None;
    for capacity in [1i64, 2, 4, 8] {
        let constrained = placement.with_memory_capacity(Some(capacity));
        let outcome = search(&constrained, 8);
        outcome.schedule.validate(&constrained).unwrap();
        if let Some(prev) = previous_period {
            assert!(
                outcome.repetend.period <= prev,
                "period should not grow with more memory"
            );
        }
        previous_period = Some(outcome.repetend.period);
    }
}
