//! Correctness battery for the exact individualisation-refinement canonical
//! labeling (`tessel::core::fingerprint`).
//!
//! Four layers of evidence, from cheapest to most adversarial:
//!
//! 1. **Exhaustive invariance** — every built-in shape at ≤ 6 devices is
//!    canonicalized under *all* `d!` device relabelings (and, where the count
//!    is enumerable, all topological block orders); every image must produce
//!    the byte-identical canonical placement.
//! 2. **Randomized invariance** — 500 LCG-generated placements with random
//!    DAGs and attributes, each compared against a random relabeling.
//! 3. **Refinement-strength separation** — WL-equivalent but non-isomorphic
//!    placement pairs (regular-graph gadgets the 1-WL colour refinement
//!    provably cannot split) collide under `wl_fingerprint()` and separate
//!    under the exact labeling, and the exact labeling never *merges* what
//!    WL distinguished.
//! 4. **Pruning soundness** — the automorphism-pruned search agrees with the
//!    unpruned search leaf-for-leaf on the winning canonical form while
//!    exploring strictly fewer leaves than the factorial bound.
//!
//! The `#[ignore]`d 10k-instance fuzz at the bottom is run by the
//! `fingerprint-stress` CI job with a pinned `TESSEL_FUZZ_SEED`; on failure
//! the seed and instance index are in the panic message for reproduction.

use tessel::core::fingerprint::Fingerprint;
use tessel::core::ir::{BlockKind, BlockSpec, PlacementSpec};
use tessel::placement::shapes::{synthetic_placement, ShapeKind};

// ---------------------------------------------------------------------------
// Deterministic randomness: a hand-rolled LCG so the suite needs no external
// crates and every failure reproduces from one printed seed.
// ---------------------------------------------------------------------------

struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixpoint of the multiplier-only path.
        Lcg(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        // Knuth's MMIX constants; the high bits are well mixed.
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// A uniformly random permutation of `0..n` (Fisher–Yates).
fn random_perm(rng: &mut Lcg, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A random topological order of the placement's blocks (Kahn's algorithm
/// with random tie-breaking).
fn random_topo_order(rng: &mut Lcg, placement: &PlacementSpec) -> Vec<usize> {
    let k = placement.num_blocks();
    let mut indegree: Vec<usize> = (0..k).map(|i| placement.block(i).deps.len()).collect();
    let mut ready: Vec<usize> = (0..k).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(k);
    while !ready.is_empty() {
        let pick = rng.below(ready.len() as u64) as usize;
        let block = ready.swap_remove(pick);
        order.push(block);
        for dependent in placement.dependents(block) {
            indegree[dependent] -= 1;
            if indegree[dependent] == 0 {
                ready.push(dependent);
            }
        }
    }
    assert_eq!(order.len(), k, "placement must be acyclic");
    order
}

/// All permutations of `0..n` (Heap's algorithm). Callers keep `n ≤ 6`.
fn all_perms(n: usize) -> Vec<Vec<usize>> {
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    heap(n, &mut items, &mut out);
    out
}

/// All topological orders of the placement, or `None` once more than `cap`
/// would be produced (backtracking enumeration).
fn all_topo_orders(placement: &PlacementSpec, cap: usize) -> Option<Vec<Vec<usize>>> {
    fn go(
        placement: &PlacementSpec,
        indegree: &mut Vec<usize>,
        prefix: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
        cap: usize,
    ) -> bool {
        if prefix.len() == placement.num_blocks() {
            if out.len() == cap {
                return false;
            }
            out.push(prefix.clone());
            return true;
        }
        for i in 0..placement.num_blocks() {
            if used[i] || indegree[i] != 0 {
                continue;
            }
            used[i] = true;
            prefix.push(i);
            for dependent in placement.dependents(i) {
                indegree[dependent] -= 1;
            }
            let ok = go(placement, indegree, prefix, used, out, cap);
            for dependent in placement.dependents(i) {
                indegree[dependent] += 1;
            }
            prefix.pop();
            used[i] = false;
            if !ok {
                return false;
            }
        }
        true
    }
    let k = placement.num_blocks();
    let mut indegree: Vec<usize> = (0..k).map(|i| placement.block(i).deps.len()).collect();
    let mut out = Vec::new();
    go(
        placement,
        &mut indegree,
        &mut Vec::new(),
        &mut vec![false; k],
        &mut out,
        cap,
    )
    .then_some(out)
}

// ---------------------------------------------------------------------------
// Random placement instances.
// ---------------------------------------------------------------------------

/// A random connected-ish DAG placement: 2–5 devices, 3–12 blocks, each block
/// on 1–2 devices with random kind/time/memory/flops/output bytes and random
/// backward edges into earlier blocks.
fn random_instance(rng: &mut Lcg, tag: u64) -> PlacementSpec {
    let devices = 2 + rng.below(4) as usize;
    let blocks = 3 + rng.below(10) as usize;
    let mut b = PlacementSpec::builder(format!("lcg-{tag}"), devices);
    if rng.below(2) == 0 {
        b.set_memory_capacity(Some(4 + rng.below(12) as i64));
    }
    for i in 0..blocks {
        let kind = if rng.below(2) == 0 {
            BlockKind::Forward
        } else {
            BlockKind::Backward
        };
        let mut devs = vec![rng.below(devices as u64) as usize];
        if rng.below(3) == 0 {
            let other = rng.below(devices as u64) as usize;
            if !devs.contains(&other) {
                devs.push(other);
            }
        }
        let mut deps = Vec::new();
        if i > 0 {
            for _ in 0..rng.below(3) {
                let dep = rng.below(i as u64) as usize;
                if !deps.contains(&dep) {
                    deps.push(dep);
                }
            }
        }
        // Memory stays non-negative so any capacity bound is satisfiable.
        let spec = BlockSpec::new(format!("blk{i}"), kind, devs, 1 + rng.below(9), {
            rng.below(3) as i64
        })
        .with_deps(deps)
        .with_flops(rng.below(5) as f64 * 1e9)
        .with_output_bytes(rng.below(4) * 512);
        b.push_block(spec).unwrap();
    }
    b.build().unwrap()
}

/// Asserts that `placement` and one random `(device, block)` relabeling of it
/// agree on the exact fingerprint, the full canonical placement, and the WL
/// fingerprint. `context` lands in the panic message (seed + index).
fn assert_invariant_under_random_relabeling(
    rng: &mut Lcg,
    placement: &PlacementSpec,
    context: &str,
) {
    let device_perm = random_perm(rng, placement.num_devices());
    let block_order = random_topo_order(rng, placement);
    let permuted = placement.permuted(&device_perm, &block_order).unwrap();
    let canon = placement.canonicalize();
    let canon_permuted = permuted.canonicalize();
    assert_eq!(
        canon.fingerprint, canon_permuted.fingerprint,
        "{context}: fingerprint changed under relabeling"
    );
    assert_eq!(
        canon.placement, canon_permuted.placement,
        "{context}: canonical placement changed under relabeling"
    );
    assert_eq!(
        placement.wl_fingerprint(),
        permuted.wl_fingerprint(),
        "{context}: WL fingerprint changed under relabeling"
    );
}

// ---------------------------------------------------------------------------
// 1. Exhaustive invariance for the built-in shapes.
// ---------------------------------------------------------------------------

/// Every built-in shape at every device count ≤ 6, canonicalized under **all**
/// `d!` device relabelings: one canonical placement per shape instance.
#[test]
fn builtin_shapes_are_invariant_under_all_device_permutations() {
    for kind in ShapeKind::all() {
        for devices in 2usize..=6 {
            let placement = synthetic_placement(kind, devices).unwrap();
            let reference = placement.canonicalize();
            let identity_order: Vec<usize> = (0..placement.num_blocks()).collect();
            for perm in all_perms(devices) {
                let image = placement.permuted(&perm, &identity_order).unwrap();
                let canon = image.canonicalize();
                assert_eq!(
                    reference.fingerprint, canon.fingerprint,
                    "{kind}-{devices}: fingerprint changed under device perm {perm:?}"
                );
                assert_eq!(
                    reference.placement, canon.placement,
                    "{kind}-{devices}: canonical placement changed under device perm {perm:?}"
                );
            }
        }
    }
}

/// Where the number of topological block orders is enumerable (≤ 2000), walk
/// **all** of them — combined with a rotating device relabeling — otherwise
/// sample 50 random orders. Covers block-reordering invariance exhaustively
/// on the small instances and statistically on the big ones.
#[test]
fn builtin_shapes_are_invariant_under_block_reorderings() {
    let mut rng = Lcg::new(0x0b10_c0de);
    for kind in ShapeKind::all() {
        for devices in [2usize, 3] {
            let placement = synthetic_placement(kind, devices).unwrap();
            let reference = placement.canonicalize();
            let rotation: Vec<usize> = (0..devices).map(|d| (d + 1) % devices).collect();
            let orders: Vec<Vec<usize>> = match all_topo_orders(&placement, 2000) {
                Some(orders) => orders,
                None => (0..50)
                    .map(|_| random_topo_order(&mut rng, &placement))
                    .collect(),
            };
            for order in orders {
                let image = placement.permuted(&rotation, &order).unwrap();
                let canon = image.canonicalize();
                assert_eq!(
                    reference.fingerprint, canon.fingerprint,
                    "{kind}-{devices}: fingerprint changed under block order {order:?}"
                );
                assert_eq!(
                    reference.placement, canon.placement,
                    "{kind}-{devices}: canonical placement changed under block order {order:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Randomized invariance + 3. differential WL check, 500 instances.
// ---------------------------------------------------------------------------

/// 500 LCG-generated placements: each is invariant under a random relabeling,
/// and across the whole set the exact labeling never merges two placements
/// the WL fingerprint distinguished (WL-different ⇒ non-isomorphic ⇒ the
/// exact canonical forms must differ too).
#[test]
fn five_hundred_random_instances_are_invariant_and_never_wl_merged() {
    const SEED: u64 = 0x7e55_e1f1;
    let mut rng = Lcg::new(SEED);
    let mut seen: Vec<(Fingerprint, Fingerprint, PlacementSpec)> = Vec::new();
    for i in 0..500u64 {
        let placement = random_instance(&mut rng, i);
        assert_invariant_under_random_relabeling(
            &mut rng,
            &placement,
            &format!("seed {SEED:#x} instance {i}"),
        );
        let canon = placement.canonicalize();
        seen.push((
            placement.wl_fingerprint(),
            canon.fingerprint,
            canon.placement,
        ));
    }
    for (i, (wl_a, exact_a, canon_a)) in seen.iter().enumerate() {
        for (j, (wl_b, exact_b, canon_b)) in seen.iter().enumerate().skip(i + 1) {
            if wl_a != wl_b {
                // WL already separated the pair, so they are non-isomorphic:
                // the exact labeling must separate them as well. (Comparing
                // forms, not just 64-bit hashes, keeps the check honest.)
                assert_ne!(
                    canon_a, canon_b,
                    "instances {i} and {j}: exact labeling merged WL-distinct placements"
                );
                assert_ne!(
                    exact_a, exact_b,
                    "instances {i} and {j}: fingerprint hash collided on WL-distinct placements"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. WL-hardness: regular-graph gadgets 1-WL provably cannot split.
// ---------------------------------------------------------------------------

/// Encodes a plain graph as a placement: one device per vertex and one
/// attribute-uniform, dependency-free block per edge spanning its two
/// endpoints. Colour refinement on such a placement is exactly 1-WL on the
/// graph, so WL-equivalent graphs yield WL-equivalent placements.
fn edge_incidence_placement(
    name: &str,
    vertices: usize,
    edges: &[(usize, usize)],
) -> PlacementSpec {
    let mut b = PlacementSpec::builder(name, vertices);
    for (i, &(u, v)) in edges.iter().enumerate() {
        b.add_block(format!("e{i}"), BlockKind::Forward, [u, v], 1, 0, [])
            .unwrap();
    }
    b.build().unwrap()
}

/// C6 (one 6-cycle) vs 2×C3 (two triangles): both 2-regular on 6 vertices,
/// so 1-WL cannot split them — but one is connected and the other is not.
#[test]
fn wl_hard_pair_c6_vs_two_triangles_separates() {
    let c6 = edge_incidence_placement("c6", 6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
    let two_c3 =
        edge_incidence_placement("2xc3", 6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
    assert_eq!(
        c6.wl_fingerprint(),
        two_c3.wl_fingerprint(),
        "colour refinement should NOT split 2-regular graphs of equal size"
    );
    assert_ne!(
        c6.fingerprint(),
        two_c3.fingerprint(),
        "the exact labeling must split C6 from 2xC3"
    );
    assert_ne!(c6.canonicalize().placement, two_c3.canonicalize().placement);
}

/// K3,3 vs the triangular prism: both 3-regular on 6 vertices (9 edges), so
/// 1-WL cannot split them — but K3,3 is triangle-free and the prism is not.
#[test]
fn wl_hard_pair_k33_vs_prism_separates() {
    let k33 = edge_incidence_placement(
        "k33",
        6,
        &[
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 3),
            (1, 4),
            (1, 5),
            (2, 3),
            (2, 4),
            (2, 5),
        ],
    );
    let prism = edge_incidence_placement(
        "prism",
        6,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (0, 3),
            (1, 4),
            (2, 5),
        ],
    );
    assert_eq!(
        k33.wl_fingerprint(),
        prism.wl_fingerprint(),
        "colour refinement should NOT split 3-regular graphs of equal size"
    );
    assert_ne!(
        k33.fingerprint(),
        prism.fingerprint(),
        "the exact labeling must split K3,3 from the prism"
    );
    assert_ne!(k33.canonicalize().placement, prism.canonicalize().placement);
}

/// The WL-hard gadgets stay invariant under relabeling — they are hard, not
/// degenerate, inputs.
#[test]
fn wl_hard_gadgets_are_still_relabeling_invariant() {
    let mut rng = Lcg::new(0x09ad_9e75);
    let prism = edge_incidence_placement(
        "prism",
        6,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (0, 3),
            (1, 4),
            (2, 5),
        ],
    );
    for round in 0..10 {
        assert_invariant_under_random_relabeling(&mut rng, &prism, &format!("prism round {round}"));
    }
}

// ---------------------------------------------------------------------------
// 4. Automorphism-pruning soundness.
// ---------------------------------------------------------------------------

/// `n! · k!` with saturation — the trivial bound on canonical-search leaves.
fn factorial_bound(devices: usize, blocks: usize) -> u128 {
    let mut bound: u128 = 1;
    for i in 2..=devices as u128 {
        bound = bound.saturating_mul(i);
    }
    for i in 2..=blocks as u128 {
        bound = bound.saturating_mul(i);
    }
    bound
}

/// Three identical two-block chains on six devices: a highly symmetric
/// instance where orbit pruning must visibly pay off.
fn triplet_chains() -> PlacementSpec {
    let mut b = PlacementSpec::builder("triplet-chains", 6);
    for chain in 0..3usize {
        let f = b
            .add_block(
                format!("f{chain}"),
                BlockKind::Forward,
                [chain * 2],
                3,
                1,
                [],
            )
            .unwrap();
        b.add_block(
            format!("b{chain}"),
            BlockKind::Backward,
            [chain * 2 + 1],
            5,
            -1,
            [f],
        )
        .unwrap();
    }
    b.build().unwrap()
}

/// Pruned and unpruned searches agree on the canonical form bit-for-bit, the
/// pruned search never explores more leaves, both stay strictly below the
/// factorial bound, and on the symmetric instance pruning is strict and
/// backed by at least one discovered automorphism.
#[test]
fn automorphism_pruning_is_sound_and_strict_on_symmetric_instances() {
    let mut instances: Vec<(String, PlacementSpec)> = vec![
        ("triplet-chains".into(), triplet_chains()),
        (
            "2xc3".into(),
            edge_incidence_placement("2xc3", 6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]),
        ),
    ];
    for kind in ShapeKind::all() {
        for devices in [2usize, 4] {
            instances.push((
                format!("{kind}-{devices}"),
                synthetic_placement(kind, devices).unwrap(),
            ));
        }
    }
    for (name, placement) in &instances {
        let (pruned, pruned_stats) = placement.canonicalize_with_stats();
        let (unpruned, unpruned_stats) = placement.canonicalize_unpruned();
        assert_eq!(
            pruned.fingerprint, unpruned.fingerprint,
            "{name}: pruned and unpruned searches disagree on the fingerprint"
        );
        assert_eq!(
            pruned.placement, unpruned.placement,
            "{name}: pruned and unpruned searches disagree on the canonical form"
        );
        assert!(
            pruned_stats.leaves <= unpruned_stats.leaves,
            "{name}: pruning explored MORE leaves ({} > {})",
            pruned_stats.leaves,
            unpruned_stats.leaves
        );
        let bound = factorial_bound(placement.num_devices(), placement.num_blocks());
        assert!(
            u128::from(pruned_stats.leaves) < bound,
            "{name}: {} leaves is not below the factorial bound {bound}",
            pruned_stats.leaves
        );
    }
    // The symmetric instances must show *strict* pruning via real generators.
    for name in ["triplet-chains", "2xc3"] {
        let placement = &instances.iter().find(|(n, _)| n == name).unwrap().1;
        let (_, pruned_stats) = placement.canonicalize_with_stats();
        let (_, unpruned_stats) = placement.canonicalize_unpruned();
        assert!(
            pruned_stats.automorphisms > 0,
            "{name}: no automorphism generators discovered"
        );
        assert!(
            pruned_stats.leaves < unpruned_stats.leaves,
            "{name}: pruning was not strict ({} vs {})",
            pruned_stats.leaves,
            unpruned_stats.leaves
        );
    }
}

/// Brute force on a tiny instance: canonicalizing **every** image under all
/// device permutations × all topological block orders lands on the one
/// canonical form the pruned search found — the canonical form really is a
/// full-orbit minimum, not just a stable point of the search.
#[test]
fn canonical_form_is_the_full_orbit_minimum_on_a_tiny_instance() {
    let mut b = PlacementSpec::builder("tiny-orbit", 3);
    let f0 = b
        .add_block("f0", BlockKind::Forward, [0], 2, 1, [])
        .unwrap();
    let f1 = b
        .add_block("f1", BlockKind::Forward, [1], 2, 1, [])
        .unwrap();
    b.add_block("join", BlockKind::Backward, [2], 4, -1, [f0, f1])
        .unwrap();
    let placement = b.build().unwrap();
    let reference = placement.canonicalize();
    let orders = all_topo_orders(&placement, 1000).expect("tiny instance must be enumerable");
    let mut images = 0usize;
    for device_perm in all_perms(placement.num_devices()) {
        for order in &orders {
            let image = placement.permuted(&device_perm, order).unwrap();
            let canon = image.canonicalize();
            assert_eq!(reference.fingerprint, canon.fingerprint);
            assert_eq!(reference.placement, canon.placement);
            images += 1;
        }
    }
    assert_eq!(images, 6 * 2, "3! device perms x 2 topo orders");
}

// ---------------------------------------------------------------------------
// CI stress: 10k random instances × random permutations (`--ignored`).
// ---------------------------------------------------------------------------

/// Long-run fuzz used by the `fingerprint-stress` CI job. The seed comes from
/// `TESSEL_FUZZ_SEED` (decimal or 0x-hex; defaults to a pinned value) and is
/// part of every failure message, so any break reproduces with
/// `TESSEL_FUZZ_SEED=<seed> cargo test --test fingerprint_canonical -- --ignored`.
#[test]
#[ignore = "10k-instance fuzz; run explicitly or via the fingerprint-stress CI job"]
fn fuzz_10k_random_instances_under_random_relabelings() {
    let seed = std::env::var("TESSEL_FUZZ_SEED")
        .ok()
        .and_then(|raw| {
            let raw = raw.trim();
            match raw.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => raw.parse().ok(),
            }
        })
        .unwrap_or(0xf16e_4a44);
    eprintln!("fingerprint fuzz seed: {seed:#x}");
    let mut rng = Lcg::new(seed);
    for i in 0..10_000u64 {
        let placement = random_instance(&mut rng, i);
        assert_invariant_under_random_relabeling(
            &mut rng,
            &placement,
            &format!("TESSEL_FUZZ_SEED={seed:#x} instance {i}"),
        );
        // Keep the exact-vs-WL contract honest under fuzz too: the exact
        // labeling refines WL, so equal canonical forms force equal WL.
        let twisted = placement
            .permuted(
                &random_perm(&mut rng, placement.num_devices()),
                &random_topo_order(&mut rng, &placement),
            )
            .unwrap();
        assert_eq!(
            placement.wl_fingerprint(),
            twisted.wl_fingerprint(),
            "TESSEL_FUZZ_SEED={seed:#x} instance {i}: WL fingerprint not invariant"
        );
    }
}
