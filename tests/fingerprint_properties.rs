//! Property tests for canonical placement fingerprinting: the fingerprint
//! (and the whole canonical form) must be invariant under random device
//! relabelings and random topological block reorderings, and must separate
//! the non-isomorphic placement shapes of the paper.

use proptest::prelude::*;
use proptest::TestRng;
use tessel::core::ir::{BlockKind, PlacementSpec};
use tessel::placement::shapes::{synthetic_placement, ShapeKind};

/// Strategy: a pair of pipeline chains over `devices` devices — one flowing
/// down, one flowing up (an X-shape generalisation) — with random per-stage
/// durations and a training-style backward sweep. Exercises both device
/// symmetry (the chains are interchangeable when costs coincide) and block
/// reorderings (the chains interleave freely).
fn placement_strategy() -> impl Strategy<Value = PlacementSpec> {
    (
        2usize..=4,
        proptest::collection::vec(1u64..=3, 2..=4),
        2i64..=8,
        0u64..=1,
    )
        .prop_map(|(devices, times, capacity, second_chain)| {
            let mut b = PlacementSpec::builder("prop-fingerprint", devices);
            b.set_memory_capacity(Some(capacity.max(devices as i64)));
            let chains: usize = 1 + second_chain as usize;
            for chain in 0..chains {
                let mut prev: Option<usize> = None;
                let order: Vec<usize> = if chain == 0 {
                    (0..devices).collect()
                } else {
                    (0..devices).rev().collect()
                };
                for (i, &dev) in order.iter().enumerate() {
                    let t = times[i % times.len()];
                    let deps: Vec<usize> = prev.into_iter().collect();
                    prev = Some(
                        b.add_block(
                            format!("c{chain}-f{dev}"),
                            BlockKind::Forward,
                            [dev],
                            t,
                            1,
                            deps,
                        )
                        .unwrap(),
                    );
                }
                for &dev in order.iter().rev() {
                    let deps: Vec<usize> = prev.into_iter().collect();
                    prev = Some(
                        b.add_block(
                            format!("c{chain}-b{dev}"),
                            BlockKind::Backward,
                            [dev],
                            2,
                            -1,
                            deps,
                        )
                        .unwrap(),
                    );
                }
            }
            b.build().unwrap()
        })
}

/// A uniformly random permutation of `0..n` drawn from `rng`.
fn random_perm(rng: &mut TestRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    perm
}

/// A random topological order of the placement's blocks (Kahn's algorithm
/// with random tie-breaking).
fn random_topo_order(rng: &mut TestRng, placement: &PlacementSpec) -> Vec<usize> {
    let k = placement.num_blocks();
    let mut indegree: Vec<usize> = (0..k).map(|i| placement.block(i).deps.len()).collect();
    let mut ready: Vec<usize> = (0..k).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(k);
    while !ready.is_empty() {
        let pick = rng.below(ready.len() as u64) as usize;
        let block = ready.swap_remove(pick);
        order.push(block);
        for dependent in placement.dependents(block) {
            indegree[dependent] -= 1;
            if indegree[dependent] == 0 {
                ready.push(dependent);
            }
        }
    }
    assert_eq!(order.len(), k, "placement must be acyclic");
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fingerprint and the full canonical form are invariant under any
    /// device relabeling combined with any topological block reordering.
    #[test]
    fn fingerprint_is_invariant_under_relabelings(
        placement in placement_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::from_seed(seed);
        let device_perm = random_perm(&mut rng, placement.num_devices());
        let block_order = random_topo_order(&mut rng, &placement);
        let permuted = placement.permuted(&device_perm, &block_order).unwrap();
        prop_assert_eq!(placement.fingerprint(), permuted.fingerprint());
        let canon = placement.canonicalize();
        let canon_permuted = permuted.canonicalize();
        prop_assert_eq!(&canon.placement, &canon_permuted.placement);
    }

    /// Composing two independent relabelings still lands on one fingerprint.
    #[test]
    fn fingerprint_is_transitively_invariant(
        placement in placement_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::from_seed(seed ^ 0x5eed);
        let first = placement
            .permuted(
                &random_perm(&mut rng, placement.num_devices()),
                &random_topo_order(&mut rng, &placement),
            )
            .unwrap();
        let second = first
            .permuted(
                &random_perm(&mut rng, first.num_devices()),
                &random_topo_order(&mut rng, &first),
            )
            .unwrap();
        prop_assert_eq!(placement.fingerprint(), second.fingerprint());
    }

    /// Perturbing one block's cost must change the fingerprint: the canonical
    /// form keeps the full cost structure, not just the topology.
    #[test]
    fn cost_changes_change_the_fingerprint(
        placement in placement_strategy(),
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = TestRng::from_seed(seed ^ 0xc057);
        let victim = rng.below(placement.num_blocks() as u64) as usize;
        let mut b = PlacementSpec::builder(placement.name(), placement.num_devices());
        b.set_memory_capacity(placement.memory_capacity());
        for (i, block) in placement.blocks().iter().enumerate() {
            let mut copy = block.clone();
            if i == victim {
                copy.time += 17;
            }
            b.push_block(copy).unwrap();
        }
        let perturbed = b.build().unwrap();
        prop_assert_ne!(placement.fingerprint(), perturbed.fingerprint());
    }
}

/// The five placement shapes of the paper (Fig. 1/8) are pairwise
/// non-isomorphic at a fixed device count — their fingerprints must differ,
/// and each must differ from its own other-device-count instances.
#[test]
fn distinct_shapes_get_distinct_fingerprints() {
    let mut fingerprints = Vec::new();
    for kind in ShapeKind::all() {
        for devices in [2usize, 4] {
            let placement = synthetic_placement(kind, devices).unwrap();
            fingerprints.push((format!("{kind}-{devices}"), placement.fingerprint()));
        }
    }
    for (i, (name_a, fp_a)) in fingerprints.iter().enumerate() {
        for (name_b, fp_b) in fingerprints.iter().skip(i + 1) {
            assert_ne!(fp_a, fp_b, "{name_a} and {name_b} collide on {fp_a}");
        }
    }
}

/// Permuted variants of every synthetic shape keep their fingerprint — the
/// concrete form of the cache-hit guarantee the daemon relies on.
#[test]
fn synthetic_shapes_are_invariant_under_rotation() {
    for kind in ShapeKind::all() {
        let placement = synthetic_placement(kind, 4).unwrap();
        let rotation: Vec<usize> = (0..4).map(|d| (d + 1) % 4).collect();
        let order: Vec<usize> = (0..placement.num_blocks()).collect();
        let rotated = placement.permuted(&rotation, &order).unwrap();
        assert_eq!(
            placement.fingerprint(),
            rotated.fingerprint(),
            "{kind} fingerprint changed under device rotation"
        );
    }
}
