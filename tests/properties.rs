//! Property-based tests over the core invariants: solver solutions always
//! satisfy the constraint system, searched schedules always validate, and
//! schedule extension preserves validity for arbitrary micro-batch counts.

use proptest::prelude::*;
use tessel::core::ir::{BlockKind, PlacementSpec};
use tessel::core::search::{SearchConfig, TesselSearch};
use tessel::placement::shapes::{synthetic_placement, ShapeKind};
use tessel::solver::{greedy_schedule, GreedyPriority, InstanceBuilder, Solver, SolverConfig};
use tessel_bench::time_optimal_instance;

/// Strategy: a random pipeline-like placement — a chain of forward blocks over
/// `devices` devices followed by the mirrored backward chain, with random
/// per-stage durations.
fn placement_strategy() -> impl Strategy<Value = PlacementSpec> {
    (
        2usize..=4,
        proptest::collection::vec(1u64..=4, 2..=4),
        2i64..=8,
    )
        .prop_map(|(devices, times, capacity)| {
            let devices = devices.min(times.len().max(2));
            let mut b = PlacementSpec::builder("prop-pipeline", devices);
            b.set_memory_capacity(Some(capacity.max(devices as i64)));
            let mut prev: Option<usize> = None;
            for (i, &t) in times.iter().enumerate() {
                let dev = i % devices;
                let deps: Vec<usize> = prev.into_iter().collect();
                prev = Some(
                    b.add_block(format!("f{i}"), BlockKind::Forward, [dev], t, 1, deps)
                        .unwrap(),
                );
            }
            for (i, &t) in times.iter().enumerate().rev() {
                let dev = i % devices;
                let deps: Vec<usize> = prev.into_iter().collect();
                prev = Some(
                    b.add_block(format!("b{i}"), BlockKind::Backward, [dev], t * 2, -1, deps)
                        .unwrap(),
                );
            }
            b.build().unwrap()
        })
}

/// Strategy: a random solver instance with chain dependencies.
fn instance_strategy() -> impl Strategy<Value = tessel::solver::Instance> {
    (
        2usize..=3,
        proptest::collection::vec((1u64..=5, -2i64..=2), 3..=8),
    )
        .prop_map(|(devices, tasks)| {
            let mut b = InstanceBuilder::new(devices);
            b.set_memory_capacity(Some(6));
            let mut prev = None;
            for (i, &(duration, memory)) in tasks.iter().enumerate() {
                let id = b
                    .add_task(format!("t{i}"), duration, [i % devices], memory)
                    .unwrap();
                // Chain every other task to create a mix of dependent and
                // independent work.
                if i % 2 == 1 {
                    if let Some(p) = prev {
                        b.add_precedence(p, id).unwrap();
                    }
                }
                prev = Some(id);
            }
            b.build().unwrap()
        })
}

/// Determinism of the parallel solver: every thread count proves the same
/// optimal makespan on every synthetic placement shape of
/// `crates/placement/src/shapes.rs`.
#[test]
fn parallel_and_serial_solver_agree_on_all_shapes() {
    for shape in ShapeKind::all() {
        let placement = synthetic_placement(shape, 4).unwrap();
        let instance = time_optimal_instance(&placement, 2).unwrap();
        let serial = Solver::new(SolverConfig::default())
            .minimize(&instance)
            .unwrap();
        assert!(
            serial.is_optimal(),
            "{shape:?} serial must prove optimality"
        );
        let serial_makespan = serial.solution().unwrap().makespan();
        for threads in [2usize, 4, 0] {
            let parallel = Solver::new(SolverConfig::default().with_threads(threads))
                .minimize(&instance)
                .unwrap();
            assert!(
                parallel.is_optimal(),
                "{shape:?} with {threads} threads must prove optimality"
            );
            let solution = parallel.solution().unwrap();
            solution.validate(&instance).unwrap();
            assert_eq!(
                solution.makespan(),
                serial_makespan,
                "{shape:?} with {threads} threads proved a different optimum"
            );
        }
    }
}

/// Determinism of the portfolio search: the winning repetend period does not
/// depend on the portfolio thread count on any synthetic shape.
#[test]
fn portfolio_and_serial_search_agree_on_all_shapes() {
    for shape in ShapeKind::all() {
        let placement = synthetic_placement(shape, 4).unwrap();
        let serial = TesselSearch::new(SearchConfig::default().with_micro_batches(6))
            .run(&placement)
            .unwrap();
        let portfolio = TesselSearch::new(
            SearchConfig::default()
                .with_micro_batches(6)
                .with_portfolio_threads(4),
        )
        .run(&placement)
        .unwrap();
        portfolio.schedule.validate(&placement).unwrap();
        assert_eq!(
            portfolio.repetend.period, serial.repetend.period,
            "{shape:?} portfolio found a different period"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn solver_solutions_satisfy_all_constraints(instance in instance_strategy()) {
        let outcome = Solver::new(SolverConfig::default()).minimize(&instance).unwrap();
        if let Some(solution) = outcome.solution() {
            prop_assert!(solution.validate(&instance).is_ok());
            // The makespan respects the trivial lower bound.
            let lower = tessel::solver::makespan_lower_bound(&instance);
            prop_assert!(solution.makespan() >= lower);
        }
    }

    #[test]
    fn greedy_never_beats_the_exact_solver(instance in instance_strategy()) {
        let exact = Solver::new(SolverConfig::default()).minimize(&instance).unwrap();
        if let (Some(exact_solution), Some(greedy)) = (
            exact.solution(),
            greedy_schedule(&instance, GreedyPriority::LongestTail),
        ) {
            prop_assert!(greedy.validate(&instance).is_ok());
            if exact.is_optimal() {
                prop_assert!(exact_solution.makespan() <= greedy.makespan());
            }
        }
    }

    /// Soundness of dominance pruning: disabling the memo entirely
    /// (`dominance_memo_limit = 0`) must prove the same optimum, so pruning
    /// never discards the only path to the optimal schedule.
    #[test]
    fn dominance_pruning_never_discards_the_optimum(instance in instance_strategy()) {
        let pruned = Solver::new(SolverConfig {
            dominance_memo_limit: 1 << 20,
            ..SolverConfig::default()
        })
        .minimize(&instance)
        .unwrap();
        let unpruned = Solver::new(SolverConfig {
            dominance_memo_limit: 0,
            ..SolverConfig::default()
        })
        .minimize(&instance)
        .unwrap();
        if pruned.is_optimal() && unpruned.is_optimal() {
            prop_assert_eq!(
                pruned.solution().unwrap().makespan(),
                unpruned.solution().unwrap().makespan()
            );
        }
        prop_assert_eq!(pruned.is_infeasible(), unpruned.is_infeasible());
    }

    /// The parallel root split proves the same optimum as the serial search
    /// on random instances, not just the curated shapes.
    #[test]
    fn parallel_solver_agrees_on_random_instances(instance in instance_strategy()) {
        let serial = Solver::new(SolverConfig::default()).minimize(&instance).unwrap();
        let parallel = Solver::new(SolverConfig::default().with_threads(3))
            .minimize(&instance)
            .unwrap();
        if serial.is_optimal() && parallel.is_optimal() {
            prop_assert_eq!(
                serial.solution().unwrap().makespan(),
                parallel.solution().unwrap().makespan()
            );
            prop_assert!(parallel.solution().unwrap().validate(&instance).is_ok());
        }
    }

    #[test]
    fn searched_schedules_always_validate(placement in placement_strategy()) {
        let outcome = TesselSearch::new(SearchConfig::default().with_micro_batches(6))
            .run(&placement)
            .unwrap();
        prop_assert!(outcome.schedule.validate(&placement).is_ok());
        // The repetend period is bounded by the search's own bounds.
        prop_assert!(outcome.repetend.period >= placement.repetend_lower_bound());
        prop_assert!(outcome.repetend.period <= placement.total_block_time());
    }

    #[test]
    fn schedule_extension_is_valid_for_any_micro_batch_count(
        placement in placement_strategy(),
        extra in 0usize..12,
    ) {
        let outcome = TesselSearch::new(SearchConfig::default().with_micro_batches(6))
            .run(&placement)
            .unwrap();
        let n = outcome.repetend.num_micro_batches() + extra;
        let schedule = outcome.schedule_for(&placement, n).unwrap();
        prop_assert!(schedule.validate(&placement).is_ok());
        prop_assert_eq!(schedule.num_micro_batches(), n);
    }
}
