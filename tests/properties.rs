//! Property-based tests over the core invariants: solver solutions always
//! satisfy the constraint system, searched schedules always validate, and
//! schedule extension preserves validity for arbitrary micro-batch counts.

use proptest::prelude::*;
use tessel::core::ir::{BlockKind, PlacementSpec};
use tessel::core::search::{SearchConfig, TesselSearch};
use tessel::solver::{greedy_schedule, GreedyPriority, InstanceBuilder, Solver, SolverConfig};

/// Strategy: a random pipeline-like placement — a chain of forward blocks over
/// `devices` devices followed by the mirrored backward chain, with random
/// per-stage durations.
fn placement_strategy() -> impl Strategy<Value = PlacementSpec> {
    (2usize..=4, proptest::collection::vec(1u64..=4, 2..=4), 2i64..=8).prop_map(
        |(devices, times, capacity)| {
            let devices = devices.min(times.len().max(2));
            let mut b = PlacementSpec::builder("prop-pipeline", devices);
            b.set_memory_capacity(Some(capacity.max(devices as i64)));
            let mut prev: Option<usize> = None;
            for (i, &t) in times.iter().enumerate() {
                let dev = i % devices;
                let deps: Vec<usize> = prev.into_iter().collect();
                prev = Some(
                    b.add_block(format!("f{i}"), BlockKind::Forward, [dev], t, 1, deps)
                        .unwrap(),
                );
            }
            for (i, &t) in times.iter().enumerate().rev() {
                let dev = i % devices;
                let deps: Vec<usize> = prev.into_iter().collect();
                prev = Some(
                    b.add_block(format!("b{i}"), BlockKind::Backward, [dev], t * 2, -1, deps)
                        .unwrap(),
                );
            }
            b.build().unwrap()
        },
    )
}

/// Strategy: a random solver instance with chain dependencies.
fn instance_strategy() -> impl Strategy<Value = tessel::solver::Instance> {
    (
        2usize..=3,
        proptest::collection::vec((1u64..=5, -2i64..=2), 3..=8),
    )
        .prop_map(|(devices, tasks)| {
            let mut b = InstanceBuilder::new(devices);
            b.set_memory_capacity(Some(6));
            let mut prev = None;
            for (i, &(duration, memory)) in tasks.iter().enumerate() {
                let id = b
                    .add_task(format!("t{i}"), duration, [i % devices], memory)
                    .unwrap();
                // Chain every other task to create a mix of dependent and
                // independent work.
                if i % 2 == 1 {
                    if let Some(p) = prev {
                        b.add_precedence(p, id).unwrap();
                    }
                }
                prev = Some(id);
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn solver_solutions_satisfy_all_constraints(instance in instance_strategy()) {
        let outcome = Solver::new(SolverConfig::default()).minimize(&instance).unwrap();
        if let Some(solution) = outcome.solution() {
            prop_assert!(solution.validate(&instance).is_ok());
            // The makespan respects the trivial lower bound.
            let lower = tessel::solver::makespan_lower_bound(&instance);
            prop_assert!(solution.makespan() >= lower);
        }
    }

    #[test]
    fn greedy_never_beats_the_exact_solver(instance in instance_strategy()) {
        let exact = Solver::new(SolverConfig::default()).minimize(&instance).unwrap();
        if let (Some(exact_solution), Some(greedy)) = (
            exact.solution(),
            greedy_schedule(&instance, GreedyPriority::LongestTail),
        ) {
            prop_assert!(greedy.validate(&instance).is_ok());
            if exact.is_optimal() {
                prop_assert!(exact_solution.makespan() <= greedy.makespan());
            }
        }
    }

    #[test]
    fn searched_schedules_always_validate(placement in placement_strategy()) {
        let outcome = TesselSearch::new(SearchConfig::default().with_micro_batches(6))
            .run(&placement)
            .unwrap();
        prop_assert!(outcome.schedule.validate(&placement).is_ok());
        // The repetend period is bounded by the search's own bounds.
        prop_assert!(outcome.repetend.period >= placement.repetend_lower_bound());
        prop_assert!(outcome.repetend.period <= placement.total_block_time());
    }

    #[test]
    fn schedule_extension_is_valid_for_any_micro_batch_count(
        placement in placement_strategy(),
        extra in 0usize..12,
    ) {
        let outcome = TesselSearch::new(SearchConfig::default().with_micro_batches(6))
            .run(&placement)
            .unwrap();
        let n = outcome.repetend.num_micro_batches() + extra;
        let schedule = outcome.schedule_for(&placement, n).unwrap();
        prop_assert!(schedule.validate(&placement).is_ok());
        prop_assert_eq!(schedule.num_micro_batches(), n);
    }
}
