//! Runtime instantiation and a discrete-event cluster simulator.
//!
//! The paper's runtime turns a searched schedule into per-device PyTorch code
//! with NCCL send/recv pairs (§IV-D) and runs it on a 32× V100 cluster. This
//! crate reproduces that pipeline against a simulated cluster:
//!
//! * [`network`] — the cluster topology (NVLink inside a server, InfiniBand
//!   across servers) and its transfer-time model.
//! * [`program`] — per-device instruction sequences (compute, send, receive)
//!   produced by runtime instantiation.
//! * [`mod@instantiate`] — topological-sort based communication insertion with
//!   deadlock-free send/recv ordering, in blocking or non-blocking mode.
//! * [`sim`] — a deterministic simulator that executes a program on the
//!   cluster model and reports iteration time, per-device busy/wait
//!   breakdowns, peak memory and achieved PFLOPS (the metrics of Figs. 13–17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instantiate;
pub mod metrics;
pub mod network;
pub mod program;
pub mod sim;

pub use instantiate::{instantiate, CommMode};
pub use metrics::ExecutionReport;
pub use network::ClusterSpec;
pub use program::{DeviceProgram, Instr, Program};
pub use sim::simulate;

/// Result alias re-using the core error type.
pub type Result<T> = std::result::Result<T, tessel_core::CoreError>;
