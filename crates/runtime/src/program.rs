//! Per-device instruction programs produced by runtime instantiation.

use serde::{Deserialize, Serialize};

/// Identifies one tensor transfer: the producing block, the consuming block
/// and the micro-batch they belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CommTag {
    /// Stage index of the producing block.
    pub producer_stage: usize,
    /// Stage index of the consuming block.
    pub consumer_stage: usize,
    /// Micro-batch index.
    pub micro_batch: usize,
}

/// One instruction of a device program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Execute a block of the placement.
    Compute {
        /// Stage index into the placement.
        stage: usize,
        /// Micro-batch index.
        micro_batch: usize,
        /// Duration in time units (copied from the placement).
        duration: u64,
        /// FLOPs performed (for throughput accounting).
        flops: f64,
        /// Signed memory delta applied to the device.
        memory: i64,
    },
    /// Send a tensor to another device.
    Send {
        /// Destination device.
        to: usize,
        /// Payload size in bytes.
        bytes: u64,
        /// Transfer identity.
        tag: CommTag,
    },
    /// Receive a tensor from another device.
    Recv {
        /// Source device.
        from: usize,
        /// Payload size in bytes.
        bytes: u64,
        /// Transfer identity.
        tag: CommTag,
    },
}

impl Instr {
    /// `true` for compute instructions.
    #[must_use]
    pub fn is_compute(&self) -> bool {
        matches!(self, Instr::Compute { .. })
    }

    /// `true` for send/recv instructions.
    #[must_use]
    pub fn is_comm(&self) -> bool {
        !self.is_compute()
    }
}

/// The ordered instruction list of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProgram {
    /// The device this program runs on.
    pub device: usize,
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
}

impl DeviceProgram {
    /// Number of compute instructions.
    #[must_use]
    pub fn num_compute(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_compute()).count()
    }

    /// Number of communication instructions.
    #[must_use]
    pub fn num_comm(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_comm()).count()
    }
}

/// A complete program: one instruction list per device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Per-device programs, indexed by device id.
    pub devices: Vec<DeviceProgram>,
    /// Number of micro-batches the program executes.
    pub num_micro_batches: usize,
}

impl Program {
    /// Total number of compute instructions across devices.
    #[must_use]
    pub fn total_compute(&self) -> usize {
        self.devices.iter().map(DeviceProgram::num_compute).sum()
    }

    /// Total number of send instructions (each transfer counted once).
    #[must_use]
    pub fn total_transfers(&self) -> usize {
        self.devices
            .iter()
            .flat_map(|d| d.instrs.iter())
            .filter(|i| matches!(i, Instr::Send { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute(stage: usize) -> Instr {
        Instr::Compute {
            stage,
            micro_batch: 0,
            duration: 1,
            flops: 1.0,
            memory: 1,
        }
    }

    #[test]
    fn instruction_kind_predicates() {
        let tag = CommTag {
            producer_stage: 0,
            consumer_stage: 1,
            micro_batch: 0,
        };
        assert!(compute(0).is_compute());
        assert!(!compute(0).is_comm());
        let send = Instr::Send {
            to: 1,
            bytes: 10,
            tag,
        };
        assert!(send.is_comm());
    }

    #[test]
    fn program_counts_instructions() {
        let tag = CommTag {
            producer_stage: 0,
            consumer_stage: 1,
            micro_batch: 0,
        };
        let program = Program {
            devices: vec![
                DeviceProgram {
                    device: 0,
                    instrs: vec![
                        compute(0),
                        Instr::Send {
                            to: 1,
                            bytes: 8,
                            tag,
                        },
                    ],
                },
                DeviceProgram {
                    device: 1,
                    instrs: vec![
                        Instr::Recv {
                            from: 0,
                            bytes: 8,
                            tag,
                        },
                        compute(1),
                    ],
                },
            ],
            num_micro_batches: 1,
        };
        assert_eq!(program.total_compute(), 2);
        assert_eq!(program.total_transfers(), 1);
        assert_eq!(program.devices[0].num_comm(), 1);
        assert_eq!(program.devices[1].num_compute(), 1);
    }
}
