//! Deterministic cluster simulator.
//!
//! The simulator executes a [`Program`] on a [`ClusterSpec`], respecting the
//! per-device instruction order produced by runtime instantiation. Two
//! communication modes are supported, mirroring Fig. 7 of the paper:
//!
//! * **blocking** — a send/recv pair occupies the compute stream of both
//!   devices for the duration of the transfer (plus any rendezvous wait);
//! * **non-blocking** — transfers run on a dedicated channel per device pair
//!   and only the consuming compute block waits for them.

use crate::instantiate::CommMode;
use crate::metrics::ExecutionReport;
use crate::network::ClusterSpec;
use crate::program::{CommTag, Instr, Program};
use crate::Result;
use std::collections::HashMap;
use tessel_core::CoreError;

/// Simulates `program` on `cluster` and returns the execution report.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSchedule`] if the program deadlocks (cannot
/// happen for programs produced by [`instantiate`](crate::instantiate())).
pub fn simulate(
    program: &Program,
    cluster: &ClusterSpec,
    mode: CommMode,
) -> Result<ExecutionReport> {
    let num_devices = program.devices.len();
    let mut pc = vec![0usize; num_devices];
    let mut clock = vec![0u64; num_devices];
    let mut busy = vec![0u64; num_devices];
    let mut comm = vec![0u64; num_devices];
    let mut memory = vec![0i64; num_devices];
    let mut peak_memory = vec![0i64; num_devices];
    let mut total_flops = 0.0f64;
    // Completion time of each transfer, keyed by tag.
    let mut transfer_done: HashMap<CommTag, u64> = HashMap::new();
    // Non-blocking: next free time of each directed channel.
    let mut channel_free: HashMap<(usize, usize), u64> = HashMap::new();

    let total_instrs: usize = program.devices.iter().map(|d| d.instrs.len()).sum();
    let mut executed = 0usize;

    while executed < total_instrs {
        let mut progressed = false;
        for device in 0..num_devices {
            let Some(instr) = program.devices[device].instrs.get(pc[device]) else {
                continue;
            };
            match instr {
                Instr::Compute {
                    stage,
                    micro_batch,
                    duration,
                    flops,
                    memory: mem_delta,
                } => {
                    // Wait for every tensor this block consumes. In
                    // non-blocking mode the receives do not occupy the
                    // compute stream, so the dependency is expressed here.
                    let mut ready_at = clock[device];
                    let mut waiting = false;
                    for d in &program.devices {
                        for i in &d.instrs {
                            if let Instr::Recv { tag, .. } = i {
                                if tag.consumer_stage == *stage
                                    && tag.micro_batch == *micro_batch
                                    && program.devices[device].instrs.iter().any(
                                        |x| matches!(x, Instr::Recv { tag: t2, .. } if t2 == tag),
                                    )
                                {
                                    match transfer_done.get(tag) {
                                        Some(&done) => ready_at = ready_at.max(done),
                                        None => waiting = true,
                                    }
                                }
                            }
                        }
                    }
                    if waiting {
                        continue;
                    }
                    let start = ready_at;
                    clock[device] = start + duration;
                    busy[device] += duration;
                    // Only count the flops once even for multi-device blocks:
                    // attribute them to the first device that executes it.
                    total_flops +=
                        flops / count_devices_running(program, *stage, *micro_batch) as f64;
                    memory[device] += mem_delta;
                    peak_memory[device] = peak_memory[device].max(memory[device]);
                    pc[device] += 1;
                    executed += 1;
                    progressed = true;
                }
                Instr::Recv { from, bytes, tag } => match mode {
                    CommMode::NonBlocking => {
                        // The matching send schedules the transfer; the recv
                        // itself costs nothing on the compute stream.
                        if transfer_done.contains_key(tag) || *bytes == 0 {
                            pc[device] += 1;
                            executed += 1;
                            progressed = true;
                        } else {
                            // Wait until the sender posts the transfer.
                            let sender_posted = has_posted_send(program, &pc, *from, tag);
                            if sender_posted {
                                continue;
                            }
                            continue;
                        }
                    }
                    CommMode::Blocking => {
                        // Rendezvous: both sides must be at the matching
                        // send/recv.
                        if let Some(sender_clock) =
                            sender_ready_at(program, &pc, &clock, *from, tag)
                        {
                            let start = clock[device].max(sender_clock);
                            let duration = cluster.transfer_time_units(*from, device, *bytes);
                            transfer_done.insert(*tag, start + duration);
                            clock[device] = start + duration;
                            comm[device] += duration;
                            pc[device] += 1;
                            executed += 1;
                            progressed = true;
                        }
                    }
                },
                Instr::Send { to, bytes, tag } => match mode {
                    CommMode::NonBlocking => {
                        let channel = channel_free.entry((device, *to)).or_insert(0);
                        let start = clock[device].max(*channel);
                        let duration = cluster.transfer_time_units(device, *to, *bytes);
                        *channel = start + duration;
                        transfer_done.insert(*tag, start + duration);
                        pc[device] += 1;
                        executed += 1;
                        progressed = true;
                    }
                    CommMode::Blocking => {
                        // The receiver side drives the rendezvous; the sender
                        // completes when the transfer is recorded.
                        if let Some(&done) = transfer_done.get(tag) {
                            clock[device] = clock[device].max(done);
                            comm[device] += cluster.transfer_time_units(device, *to, *bytes);
                            pc[device] += 1;
                            executed += 1;
                            progressed = true;
                        } else if receiver_waiting(program, &pc, *to, tag) {
                            // Record the transfer from the sender side; the
                            // receiver will pick it up on its next visit.
                            let receiver = *to;
                            let start = clock[device].max(clock[receiver]);
                            let duration = cluster.transfer_time_units(device, receiver, *bytes);
                            transfer_done.insert(*tag, start + duration);
                            clock[device] = start + duration;
                            comm[device] += duration;
                            pc[device] += 1;
                            executed += 1;
                            progressed = true;
                        }
                    }
                },
            }
        }
        if !progressed {
            return Err(CoreError::InvalidSchedule(format!(
                "simulation deadlocked after {executed} of {total_instrs} instructions"
            )));
        }
    }

    Ok(ExecutionReport {
        makespan: clock.iter().copied().max().unwrap_or(0),
        device_busy: busy,
        device_comm: comm,
        peak_memory,
        total_flops,
        num_micro_batches: program.num_micro_batches,
    })
}

/// Number of devices that execute `(stage, micro_batch)` (multi-device blocks
/// appear once per device in the program).
fn count_devices_running(program: &Program, stage: usize, micro_batch: usize) -> usize {
    program
        .devices
        .iter()
        .filter(|d| {
            d.instrs.iter().any(|i| {
                matches!(i, Instr::Compute { stage: s, micro_batch: m, .. } if *s == stage && *m == micro_batch)
            })
        })
        .count()
        .max(1)
}

/// `true` if device `from`'s program counter has passed (or is at) the send
/// matching `tag`.
fn has_posted_send(program: &Program, pc: &[usize], from: usize, tag: &CommTag) -> bool {
    program.devices[from]
        .instrs
        .iter()
        .take(pc[from])
        .any(|i| matches!(i, Instr::Send { tag: t, .. } if t == tag))
}

/// If device `from` is currently parked at the send matching `tag`, returns
/// its clock (the rendezvous time from the sender side).
fn sender_ready_at(
    program: &Program,
    pc: &[usize],
    clock: &[u64],
    from: usize,
    tag: &CommTag,
) -> Option<u64> {
    match program.devices[from].instrs.get(pc[from]) {
        Some(Instr::Send { tag: t, .. }) if t == tag => Some(clock[from]),
        _ => None,
    }
}

/// `true` if device `to` is currently parked at the recv matching `tag`.
fn receiver_waiting(program: &Program, pc: &[usize], to: usize, tag: &CommTag) -> bool {
    matches!(
        program.devices[to].instrs.get(pc[to]),
        Some(Instr::Recv { tag: t, .. }) if t == tag
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiate::instantiate;
    use tessel_core::ir::{BlockKind, BlockSpec, PlacementSpec};
    use tessel_core::schedule::{scheduled_block, Schedule};

    fn pipeline(bytes: u64) -> (PlacementSpec, Schedule) {
        let mut b = PlacementSpec::builder("two", 2);
        b.push_block(BlockSpec::new("f0", BlockKind::Forward, [0], 2, 1).with_output_bytes(bytes))
            .unwrap();
        b.push_block(
            BlockSpec::new("f1", BlockKind::Forward, [1], 2, 1)
                .with_deps([0])
                .with_output_bytes(bytes),
        )
        .unwrap();
        b.push_block(
            BlockSpec::new("b1", BlockKind::Backward, [1], 4, -1)
                .with_deps([1])
                .with_output_bytes(bytes),
        )
        .unwrap();
        b.push_block(
            BlockSpec::new("b0", BlockKind::Backward, [0], 4, -1)
                .with_deps([2])
                .with_output_bytes(bytes),
        )
        .unwrap();
        let p = b.build().unwrap();
        let s = Schedule::new(
            2,
            1,
            vec![
                scheduled_block(&p, 0, 0, 0),
                scheduled_block(&p, 1, 0, 2),
                scheduled_block(&p, 2, 0, 4),
                scheduled_block(&p, 3, 0, 8),
            ],
        );
        (p, s)
    }

    #[test]
    fn simulation_without_communication_matches_the_schedule() {
        let (p, s) = pipeline(0);
        let cluster = ClusterSpec::v100_cluster(2);
        for mode in [CommMode::Blocking, CommMode::NonBlocking] {
            let program = instantiate(&p, &s, mode).unwrap();
            let report = simulate(&program, &cluster, mode).unwrap();
            assert_eq!(report.makespan, s.makespan());
            assert_eq!(report.device_busy, vec![6, 6]);
            assert_eq!(report.peak_memory, vec![1, 1]);
        }
    }

    #[test]
    fn blocking_communication_is_never_faster_than_non_blocking() {
        let (p, s) = pipeline(512 * 1024 * 1024);
        let cluster = ClusterSpec::v100_cluster(2);
        let program = instantiate(&p, &s, CommMode::Blocking).unwrap();
        let blocking = simulate(&program, &cluster, CommMode::Blocking).unwrap();
        let nonblocking = simulate(&program, &cluster, CommMode::NonBlocking).unwrap();
        assert!(blocking.makespan >= nonblocking.makespan);
        // Blocking mode charges transfer time to the compute streams.
        assert!(blocking.device_comm.iter().sum::<u64>() > 0);
    }

    #[test]
    fn communication_extends_the_critical_path() {
        let (p, s) = pipeline(1 << 30);
        let cluster = ClusterSpec::v100_cluster(2);
        let program = instantiate(&p, &s, CommMode::NonBlocking).unwrap();
        let report = simulate(&program, &cluster, CommMode::NonBlocking).unwrap();
        assert!(report.makespan > s.makespan());
    }

    #[test]
    fn flops_are_counted_once_per_block() {
        let mut b = PlacementSpec::builder("tp", 2);
        b.push_block(BlockSpec::new("tp-block", BlockKind::Forward, [0, 1], 2, 0).with_flops(10.0))
            .unwrap();
        let p = b.build().unwrap();
        let s = Schedule::new(2, 1, vec![scheduled_block(&p, 0, 0, 0)]);
        let cluster = ClusterSpec::v100_cluster(2);
        let program = instantiate(&p, &s, CommMode::NonBlocking).unwrap();
        let report = simulate(&program, &cluster, CommMode::NonBlocking).unwrap();
        assert!((report.total_flops - 10.0).abs() < 1e-9);
    }

    #[test]
    fn multi_micro_batch_pipelines_overlap_in_the_simulator() {
        // Build a 4-micro-batch 1F1B-like schedule and check the simulated
        // iteration time is far below sequential execution.
        let (p, _) = pipeline(1024);
        let schedule = tessel_baselines_like_schedule(&p, 4);
        let cluster = ClusterSpec::v100_cluster(2);
        let program = instantiate(&p, &schedule, CommMode::NonBlocking).unwrap();
        let report = simulate(&program, &cluster, CommMode::NonBlocking).unwrap();
        assert!(report.makespan < 4 * p.total_block_time());
        assert!(report.peak_memory[0] <= 2);
    }

    /// A minimal hand-rolled 1F1B schedule for the 2-stage pipeline.
    fn tessel_baselines_like_schedule(p: &PlacementSpec, n: usize) -> Schedule {
        let mut blocks = Vec::new();
        // Classic 2-stage 1F1B: period 6 per micro-batch in steady state.
        for mb in 0..n {
            let base = mb as u64 * 6;
            blocks.push(scheduled_block(p, 0, mb, base));
            blocks.push(scheduled_block(p, 1, mb, base + 2));
            blocks.push(scheduled_block(p, 2, mb, base + 4));
            blocks.push(scheduled_block(p, 3, mb, base + 8));
        }
        Schedule::new(2, n, blocks)
    }
}
