//! Cluster topology and transfer-time model.

use serde::{Deserialize, Serialize};

/// A homogeneous GPU cluster: servers of `gpus_per_server` GPUs linked by
/// NVLink inside a server and InfiniBand across servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Total number of schedule-level devices.
    pub num_devices: usize,
    /// Devices per server (NVLink domain).
    pub gpus_per_server: usize,
    /// Intra-server bandwidth in bytes per second (NVLink).
    pub nvlink_bytes_per_sec: f64,
    /// Inter-server bandwidth in bytes per second (InfiniBand).
    pub ib_bytes_per_sec: f64,
    /// Per-message latency in seconds.
    pub latency_seconds: f64,
    /// Seconds represented by one integer time unit (must match the cost
    /// model used to build the placement).
    pub time_unit_seconds: f64,
}

impl ClusterSpec {
    /// The paper's testbed: servers of 8 V100 GPUs with 300 GB/s NVLink and a
    /// 100 Gb/s InfiniBand network, on a 1 ms time-unit scale.
    #[must_use]
    pub fn v100_cluster(num_devices: usize) -> Self {
        ClusterSpec {
            num_devices,
            gpus_per_server: 8,
            nvlink_bytes_per_sec: 300e9,
            ib_bytes_per_sec: 12.5e9,
            latency_seconds: 10e-6,
            time_unit_seconds: 1e-3,
        }
    }

    /// Which server a device belongs to.
    #[must_use]
    pub fn server_of(&self, device: usize) -> usize {
        device / self.gpus_per_server.max(1)
    }

    /// `true` if the two devices share a server (NVLink domain).
    #[must_use]
    pub fn same_server(&self, a: usize, b: usize) -> bool {
        self.server_of(a) == self.server_of(b)
    }

    /// Transfer time of `bytes` from `from` to `to`, in integer time units
    /// (zero for device-local transfers).
    #[must_use]
    pub fn transfer_time_units(&self, from: usize, to: usize, bytes: u64) -> u64 {
        if from == to || bytes == 0 {
            return 0;
        }
        let bandwidth = if self.same_server(from, to) {
            self.nvlink_bytes_per_sec
        } else {
            self.ib_bytes_per_sec
        };
        let seconds = self.latency_seconds + bytes as f64 / bandwidth;
        (seconds / self.time_unit_seconds).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_mapping_groups_eight_gpus() {
        let cluster = ClusterSpec::v100_cluster(32);
        assert_eq!(cluster.server_of(0), 0);
        assert_eq!(cluster.server_of(7), 0);
        assert_eq!(cluster.server_of(8), 1);
        assert!(cluster.same_server(0, 7));
        assert!(!cluster.same_server(7, 8));
    }

    #[test]
    fn cross_server_transfers_are_slower() {
        let cluster = ClusterSpec::v100_cluster(16);
        let bytes = 256 * 1024 * 1024;
        let local = cluster.transfer_time_units(0, 1, bytes);
        let remote = cluster.transfer_time_units(0, 8, bytes);
        assert!(
            remote > local,
            "IB transfer {remote} should exceed NVLink {local}"
        );
    }

    #[test]
    fn degenerate_transfers_cost_nothing() {
        let cluster = ClusterSpec::v100_cluster(4);
        assert_eq!(cluster.transfer_time_units(2, 2, 1 << 20), 0);
        assert_eq!(cluster.transfer_time_units(0, 1, 0), 0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let cluster = ClusterSpec::v100_cluster(4);
        let small = cluster.transfer_time_units(0, 1, 1 << 20);
        let large = cluster.transfer_time_units(0, 1, 1 << 30);
        assert!(large >= small);
    }
}
