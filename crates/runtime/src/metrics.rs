//! Execution metrics reported by the simulator.

use crate::network::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The outcome of simulating one iteration of a schedule on the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// End-to-end completion time of the iteration, in time units.
    pub makespan: u64,
    /// Per-device time spent executing compute blocks.
    pub device_busy: Vec<u64>,
    /// Per-device time spent in blocking communication on the compute stream.
    pub device_comm: Vec<u64>,
    /// Peak memory per device in memory units.
    pub peak_memory: Vec<i64>,
    /// Total FLOPs executed across devices.
    pub total_flops: f64,
    /// Number of micro-batches executed.
    pub num_micro_batches: usize,
}

impl ExecutionReport {
    /// Iteration time in seconds under the cluster's time-unit scale.
    #[must_use]
    pub fn iteration_seconds(&self, cluster: &ClusterSpec) -> f64 {
        self.makespan as f64 * cluster.time_unit_seconds
    }

    /// Aggregate throughput in PFLOPS (the Fig. 13/14 metric).
    #[must_use]
    pub fn pflops(&self, cluster: &ClusterSpec) -> f64 {
        let seconds = self.iteration_seconds(cluster);
        if seconds <= 0.0 {
            return 0.0;
        }
        self.total_flops / seconds / 1e15
    }

    /// Busy time of the slowest device — the Fig. 16(a) metric.
    #[must_use]
    pub fn slowest_device_busy(&self) -> u64 {
        self.device_busy.iter().copied().max().unwrap_or(0)
    }

    /// Wait-time occupation of `device`: the fraction of the iteration the
    /// device spends neither computing nor in blocking communication — the
    /// Fig. 16(b) metric.
    #[must_use]
    pub fn wait_fraction(&self, device: usize) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let used = self.device_busy[device] + self.device_comm[device];
        1.0 - used.min(self.makespan) as f64 / self.makespan as f64
    }

    /// The largest wait fraction across devices.
    #[must_use]
    pub fn max_wait_fraction(&self) -> f64 {
        (0..self.device_busy.len())
            .map(|d| self.wait_fraction(d))
            .fold(0.0, f64::max)
    }

    /// Requests served per second for inference workloads (micro-batches per
    /// second).
    #[must_use]
    pub fn requests_per_second(&self, cluster: &ClusterSpec) -> f64 {
        let seconds = self.iteration_seconds(cluster);
        if seconds <= 0.0 {
            return 0.0;
        }
        self.num_micro_batches as f64 / seconds
    }

    /// Condenses this report into the machine-readable per-device
    /// [`UtilizationSummary`] served by the schedule-search daemon's inspect
    /// endpoint.
    #[must_use]
    pub fn utilization_summary(&self) -> UtilizationSummary {
        let makespan = self.makespan;
        let fraction = |units: u64| {
            if makespan == 0 {
                0.0
            } else {
                units.min(makespan) as f64 / makespan as f64
            }
        };
        let devices: Vec<DeviceUtilization> = (0..self.device_busy.len())
            .map(|d| {
                let busy = self.device_busy[d];
                let comm = self.device_comm[d];
                let wait = makespan.saturating_sub(busy + comm);
                DeviceUtilization {
                    device: d,
                    busy,
                    comm,
                    wait,
                    busy_fraction: fraction(busy),
                    comm_fraction: fraction(comm),
                    wait_fraction: self.wait_fraction(d),
                    peak_memory: self.peak_memory.get(d).copied().unwrap_or(0),
                }
            })
            .collect();
        let mean_busy_fraction = if devices.is_empty() {
            0.0
        } else {
            devices.iter().map(|d| d.busy_fraction).sum::<f64>() / devices.len() as f64
        };
        UtilizationSummary {
            makespan,
            num_micro_batches: self.num_micro_batches,
            mean_busy_fraction,
            max_wait_fraction: self.max_wait_fraction(),
            devices,
        }
    }
}

/// Per-device utilization of one simulated iteration, in both absolute time
/// units and fractions of the makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceUtilization {
    /// Device index.
    pub device: usize,
    /// Time units spent executing compute blocks.
    pub busy: u64,
    /// Time units spent in blocking communication on the compute stream.
    pub comm: u64,
    /// Idle time units (`makespan - busy - comm`).
    pub wait: u64,
    /// `busy / makespan`.
    pub busy_fraction: f64,
    /// `comm / makespan`.
    pub comm_fraction: f64,
    /// `1 - (busy + comm) / makespan` (the Fig. 16(b) metric).
    pub wait_fraction: f64,
    /// Peak memory reached on the device, in memory units.
    pub peak_memory: i64,
}

/// Machine-readable utilization summary of one simulated iteration: the
/// JSON-friendly digest of an [`ExecutionReport`] returned alongside cached
/// schedules by the `tessel-service` inspect endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// End-to-end completion time of the iteration, in time units.
    pub makespan: u64,
    /// Number of micro-batches executed.
    pub num_micro_batches: usize,
    /// Average busy fraction across devices.
    pub mean_busy_fraction: f64,
    /// Largest wait fraction across devices.
    pub max_wait_fraction: f64,
    /// Per-device breakdown, in device order.
    pub devices: Vec<DeviceUtilization>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            makespan: 100,
            device_busy: vec![90, 50],
            device_comm: vec![5, 10],
            peak_memory: vec![4, 3],
            total_flops: 2e15,
            num_micro_batches: 8,
        }
    }

    #[test]
    fn wait_fraction_accounts_for_busy_and_comm_time() {
        let r = report();
        assert!((r.wait_fraction(0) - 0.05).abs() < 1e-9);
        assert!((r.wait_fraction(1) - 0.40).abs() < 1e-9);
        assert!((r.max_wait_fraction() - 0.40).abs() < 1e-9);
        assert_eq!(r.slowest_device_busy(), 90);
    }

    #[test]
    fn throughput_metrics_follow_the_time_unit() {
        let cluster = ClusterSpec::v100_cluster(2);
        let r = report();
        assert!((r.iteration_seconds(&cluster) - 0.1).abs() < 1e-12);
        assert!((r.pflops(&cluster) - 20.0).abs() < 1e-9);
        assert!((r.requests_per_second(&cluster) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_summary_digests_the_report() {
        let r = report();
        let summary = r.utilization_summary();
        assert_eq!(summary.makespan, 100);
        assert_eq!(summary.num_micro_batches, 8);
        assert_eq!(summary.devices.len(), 2);
        let d0 = &summary.devices[0];
        assert_eq!((d0.busy, d0.comm, d0.wait), (90, 5, 5));
        assert!((d0.busy_fraction - 0.9).abs() < 1e-9);
        assert!((d0.wait_fraction - 0.05).abs() < 1e-9);
        assert_eq!(d0.peak_memory, 4);
        assert!((summary.mean_busy_fraction - 0.7).abs() < 1e-9);
        assert!((summary.max_wait_fraction - 0.4).abs() < 1e-9);
        // The summary is machine-readable: it round-trips through JSON.
        let json = serde_json::to_string(&summary).unwrap();
        let back: UtilizationSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let r = ExecutionReport {
            makespan: 0,
            device_busy: vec![0],
            device_comm: vec![0],
            peak_memory: vec![0],
            total_flops: 0.0,
            num_micro_batches: 0,
        };
        let cluster = ClusterSpec::v100_cluster(1);
        assert_eq!(r.pflops(&cluster), 0.0);
        assert_eq!(r.wait_fraction(0), 0.0);
        assert_eq!(r.requests_per_second(&cluster), 0.0);
    }
}
