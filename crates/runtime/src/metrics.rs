//! Execution metrics reported by the simulator.

use crate::network::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The outcome of simulating one iteration of a schedule on the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// End-to-end completion time of the iteration, in time units.
    pub makespan: u64,
    /// Per-device time spent executing compute blocks.
    pub device_busy: Vec<u64>,
    /// Per-device time spent in blocking communication on the compute stream.
    pub device_comm: Vec<u64>,
    /// Peak memory per device in memory units.
    pub peak_memory: Vec<i64>,
    /// Total FLOPs executed across devices.
    pub total_flops: f64,
    /// Number of micro-batches executed.
    pub num_micro_batches: usize,
}

impl ExecutionReport {
    /// Iteration time in seconds under the cluster's time-unit scale.
    #[must_use]
    pub fn iteration_seconds(&self, cluster: &ClusterSpec) -> f64 {
        self.makespan as f64 * cluster.time_unit_seconds
    }

    /// Aggregate throughput in PFLOPS (the Fig. 13/14 metric).
    #[must_use]
    pub fn pflops(&self, cluster: &ClusterSpec) -> f64 {
        let seconds = self.iteration_seconds(cluster);
        if seconds <= 0.0 {
            return 0.0;
        }
        self.total_flops / seconds / 1e15
    }

    /// Busy time of the slowest device — the Fig. 16(a) metric.
    #[must_use]
    pub fn slowest_device_busy(&self) -> u64 {
        self.device_busy.iter().copied().max().unwrap_or(0)
    }

    /// Wait-time occupation of `device`: the fraction of the iteration the
    /// device spends neither computing nor in blocking communication — the
    /// Fig. 16(b) metric.
    #[must_use]
    pub fn wait_fraction(&self, device: usize) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let used = self.device_busy[device] + self.device_comm[device];
        1.0 - used.min(self.makespan) as f64 / self.makespan as f64
    }

    /// The largest wait fraction across devices.
    #[must_use]
    pub fn max_wait_fraction(&self) -> f64 {
        (0..self.device_busy.len())
            .map(|d| self.wait_fraction(d))
            .fold(0.0, f64::max)
    }

    /// Requests served per second for inference workloads (micro-batches per
    /// second).
    #[must_use]
    pub fn requests_per_second(&self, cluster: &ClusterSpec) -> f64 {
        let seconds = self.iteration_seconds(cluster);
        if seconds <= 0.0 {
            return 0.0;
        }
        self.num_micro_batches as f64 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ExecutionReport {
        ExecutionReport {
            makespan: 100,
            device_busy: vec![90, 50],
            device_comm: vec![5, 10],
            peak_memory: vec![4, 3],
            total_flops: 2e15,
            num_micro_batches: 8,
        }
    }

    #[test]
    fn wait_fraction_accounts_for_busy_and_comm_time() {
        let r = report();
        assert!((r.wait_fraction(0) - 0.05).abs() < 1e-9);
        assert!((r.wait_fraction(1) - 0.40).abs() < 1e-9);
        assert!((r.max_wait_fraction() - 0.40).abs() < 1e-9);
        assert_eq!(r.slowest_device_busy(), 90);
    }

    #[test]
    fn throughput_metrics_follow_the_time_unit() {
        let cluster = ClusterSpec::v100_cluster(2);
        let r = report();
        assert!((r.iteration_seconds(&cluster) - 0.1).abs() < 1e-12);
        assert!((r.pflops(&cluster) - 20.0).abs() < 1e-9);
        assert!((r.requests_per_second(&cluster) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let r = ExecutionReport {
            makespan: 0,
            device_busy: vec![0],
            device_comm: vec![0],
            peak_memory: vec![0],
            total_flops: 0.0,
            num_micro_batches: 0,
        };
        let cluster = ClusterSpec::v100_cluster(1);
        assert_eq!(r.pflops(&cluster), 0.0);
        assert_eq!(r.wait_fraction(0), 0.0);
        assert_eq!(r.requests_per_second(&cluster), 0.0);
    }
}
