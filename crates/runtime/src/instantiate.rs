//! Runtime instantiation: turning a schedule into per-device programs with
//! communication primitives (§IV-D of the paper).
//!
//! The schedule only fixes the per-device execution order of blocks; data
//! still has to move between devices. Following the paper, the blocks are
//! topologically ordered (by start time), and each send/receive pair is
//! placed immediately after the block that produces the tensor — on every
//! device involved — which guarantees a consistent global ordering of
//! communication calls and therefore deadlock freedom.

use crate::program::{CommTag, DeviceProgram, Instr, Program};
use crate::Result;
use tessel_core::ir::PlacementSpec;
use tessel_core::schedule::Schedule;

/// Whether communication blocks the compute stream or runs on a separate
/// stream (Fig. 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommMode {
    /// Send/recv occupy the compute stream of both devices (Fig. 7a).
    Blocking,
    /// Send/recv run on a dedicated communication stream and overlap with
    /// compute; blocks wait only for the tensors they consume (Fig. 7b).
    NonBlocking,
}

use serde::{Deserialize, Serialize};

/// Instantiates `schedule` into per-device instruction programs.
///
/// Cross-device dependencies become send/receive pairs (the payload size is
/// the producing block's `output_bytes`); dependencies between blocks sharing
/// a device need no communication.
///
/// # Errors
///
/// Returns an error if the schedule does not validate against the placement.
pub fn instantiate(
    placement: &PlacementSpec,
    schedule: &Schedule,
    _mode: CommMode,
) -> Result<Program> {
    schedule.validate(placement)?;
    let num_devices = placement.num_devices();
    let mut programs: Vec<DeviceProgram> = (0..num_devices)
        .map(|device| DeviceProgram {
            device,
            instrs: Vec::new(),
        })
        .collect();

    // Blocks in global (topological) order: the schedule keeps them sorted by
    // start time, and ties preserve stage order, which respects dependencies.
    for block in schedule.blocks() {
        let spec = placement.block(block.stage);
        // Receives for the tensors this block consumes were already emitted
        // right after their producers; nothing to do before the compute.
        for &device in &block.devices {
            programs[device].instrs.push(Instr::Compute {
                stage: block.stage,
                micro_batch: block.micro_batch,
                duration: spec.time,
                flops: spec.flops,
                memory: spec.memory,
            });
        }
        // Emit send/recv pairs for every dependent block that lives on a
        // different primary device, right after the producing block.
        let producer_device = block.devices[0];
        for (consumer_stage, consumer_spec) in placement.blocks().iter().enumerate() {
            if !consumer_spec.deps.contains(&block.stage) {
                continue;
            }
            let consumer_device = consumer_spec.devices[0];
            if consumer_device == producer_device {
                continue;
            }
            let tag = CommTag {
                producer_stage: block.stage,
                consumer_stage,
                micro_batch: block.micro_batch,
            };
            programs[producer_device].instrs.push(Instr::Send {
                to: consumer_device,
                bytes: spec.output_bytes,
                tag,
            });
            programs[consumer_device].instrs.push(Instr::Recv {
                from: producer_device,
                bytes: spec.output_bytes,
                tag,
            });
        }
    }

    Ok(Program {
        devices: programs,
        num_micro_batches: schedule.num_micro_batches(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tessel_core::ir::{BlockKind, BlockSpec, PlacementSpec};
    use tessel_core::schedule::scheduled_block;

    fn two_stage_placement(bytes: u64) -> PlacementSpec {
        let mut b = PlacementSpec::builder("two", 2);
        b.push_block(BlockSpec::new("f0", BlockKind::Forward, [0], 1, 1).with_output_bytes(bytes))
            .unwrap();
        b.push_block(
            BlockSpec::new("f1", BlockKind::Forward, [1], 1, 1)
                .with_deps([0])
                .with_output_bytes(bytes),
        )
        .unwrap();
        b.push_block(
            BlockSpec::new("b1", BlockKind::Backward, [1], 2, -1)
                .with_deps([1])
                .with_output_bytes(bytes),
        )
        .unwrap();
        b.push_block(
            BlockSpec::new("b0", BlockKind::Backward, [0], 2, -1)
                .with_deps([2])
                .with_output_bytes(bytes),
        )
        .unwrap();
        b.build().unwrap()
    }

    fn single_mb_schedule(p: &PlacementSpec) -> Schedule {
        Schedule::new(
            2,
            1,
            vec![
                scheduled_block(p, 0, 0, 0),
                scheduled_block(p, 1, 0, 1),
                scheduled_block(p, 2, 0, 2),
                scheduled_block(p, 3, 0, 4),
            ],
        )
    }

    #[test]
    fn cross_device_dependencies_get_send_recv_pairs() {
        let p = two_stage_placement(1 << 20);
        let schedule = single_mb_schedule(&p);
        let program = instantiate(&p, &schedule, CommMode::NonBlocking).unwrap();
        // Three cross-device edges: f0->f1, f1->b1 is same device, b1->b0.
        assert_eq!(program.total_transfers(), 2);
        assert_eq!(program.total_compute(), 4);
        // Send appears on the producer device, recv on the consumer device.
        let sends_dev0 = program.devices[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Send { .. }))
            .count();
        assert_eq!(sends_dev0, 1);
        let recvs_dev0 = program.devices[0]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Recv { .. }))
            .count();
        assert_eq!(recvs_dev0, 1);
    }

    #[test]
    fn same_device_dependencies_need_no_communication() {
        // The f1 -> b1 edge stays on device 1, so only the two cross-device
        // edges become transfers; zero-byte payloads still carry the
        // dependency so the simulator can order the blocks correctly.
        let p = two_stage_placement(0);
        let schedule = single_mb_schedule(&p);
        let program = instantiate(&p, &schedule, CommMode::Blocking).unwrap();
        assert_eq!(program.total_transfers(), 2);
    }

    #[test]
    fn send_recv_pairs_share_a_consistent_global_order() {
        // Two micro-batches: the send/recv pairs must appear in the same
        // relative order on both devices (deadlock freedom).
        let p = two_stage_placement(1024);
        let blocks = vec![
            scheduled_block(&p, 0, 0, 0),
            scheduled_block(&p, 0, 1, 1),
            scheduled_block(&p, 1, 0, 1),
            scheduled_block(&p, 1, 1, 2),
            scheduled_block(&p, 2, 0, 3),
            scheduled_block(&p, 2, 1, 5),
            scheduled_block(&p, 3, 0, 7),
            scheduled_block(&p, 3, 1, 9),
        ];
        let schedule = Schedule::new(2, 2, blocks);
        let program = instantiate(&p, &schedule, CommMode::Blocking).unwrap();
        let order_on = |device: usize, outgoing: bool| -> Vec<CommTag> {
            program.devices[device]
                .instrs
                .iter()
                .filter_map(|i| match i {
                    Instr::Send { tag, .. } if outgoing => Some(*tag),
                    Instr::Recv { tag, .. } if !outgoing => Some(*tag),
                    _ => None,
                })
                .collect()
        };
        // Tags sent by device 0 must be received by device 1 in the same order.
        let sent: Vec<CommTag> = order_on(0, true);
        let received: Vec<CommTag> = order_on(1, false)
            .into_iter()
            .filter(|t| sent.contains(t))
            .collect();
        assert_eq!(sent, received);
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let p = two_stage_placement(8);
        let schedule = Schedule::new(2, 1, vec![scheduled_block(&p, 0, 0, 0)]);
        assert!(instantiate(&p, &schedule, CommMode::Blocking).is_err());
    }
}
