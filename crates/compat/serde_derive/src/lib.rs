//! Derive macros for the vendored `serde` substitute.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the input item is
//! parsed with a small hand-rolled cursor over [`proc_macro::TokenTree`]s and
//! the generated impl is assembled as a source string. Supported shapes are
//! exactly the ones this workspace uses:
//!
//! * structs with named fields (optionally generic, bounds copied verbatim),
//! * tuple structs (single-field ones serialize transparently, like serde
//!   newtypes),
//! * enums with unit and/or struct variants (externally tagged),
//! * the `#[serde(skip)]`, `#[serde(default)]` and `#[serde(with = "module")]`
//!   field attributes (`default` fills a missing map key from
//!   `Default::default()` instead of erroring, so persisted documents written
//!   before a field existed keep deserializing).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Mode {
    Serialize,
    Deserialize,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
    with: Option<String>,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Generic parameter list as written, without the angle brackets
    /// (e.g. `T: Serialize`); empty for non-generic items.
    generics_decl: String,
    /// Bare parameter names for the `for Name<...>` position.
    generics_use: String,
    data: Data,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = parse_input(input);
    let code = match mode {
        Mode::Serialize => gen_serialize(&parsed),
        Mode::Deserialize => gen_deserialize(&parsed),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Skips `#[...]` attributes, recording `skip` / `default` /
    /// `with = "..."` from any `#[serde(...)]` attribute encountered.
    fn skip_attrs(&mut self) -> (bool, bool, Option<String>) {
        let mut skip = false;
        let mut default = false;
        let mut with = None;
        while self.is_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde_derive: malformed attribute, found {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let args: Vec<TokenTree> = args.stream().into_iter().collect();
                    let mut i = 0;
                    while i < args.len() {
                        match &args[i] {
                            TokenTree::Ident(id) if id.to_string() == "skip" => skip = true,
                            TokenTree::Ident(id) if id.to_string() == "default" => default = true,
                            TokenTree::Ident(id) if id.to_string() == "with" => {
                                if let Some(TokenTree::Literal(lit)) = args.get(i + 2) {
                                    let raw = lit.to_string();
                                    with = Some(raw.trim_matches('"').to_string());
                                    i += 2;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
        }
        (skip, default, with)
    }

    /// Skips `pub` / `pub(...)` visibility modifiers.
    fn skip_vis(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consumes a `<...>` generic parameter list (cursor sits on `<`).
    fn read_generics(&mut self) -> String {
        let mut depth = 0usize;
        let mut out = String::new();
        loop {
            let t = self.next().expect("serde_derive: unbalanced generics");
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => {
                        depth += 1;
                        if depth == 1 {
                            continue;
                        }
                    }
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            return out;
                        }
                    }
                    _ => {}
                }
            }
            out.push_str(&t.to_string());
            out.push(' ');
        }
    }

    /// Consumes tokens of a type until a top-level `,` (not consumed) or the
    /// end of the stream.
    fn skip_type(&mut self) {
        let mut angle = 0isize;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle == 0 => return,
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    _ => {}
                }
            }
            self.next();
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kind = c.expect_ident();
    let name = c.expect_ident();
    let (generics_decl, generics_use) = if c.is_punct('<') {
        let raw = c.read_generics();
        let params = raw
            .split(',')
            .filter_map(|chunk| {
                chunk
                    .split(':')
                    .next()
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
            })
            .collect::<Vec<_>>()
            .join(", ");
        (raw, params)
    } else {
        (String::new(), String::new())
    };

    let data = match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde_derive: unsupported struct shape: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Input {
        name,
        generics_decl,
        generics_use,
        data,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let (skip, default, with) = c.skip_attrs();
        c.skip_vis();
        let name = c.expect_ident();
        assert!(
            c.is_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        c.next();
        c.skip_type();
        if c.is_punct(',') {
            c.next();
        }
        fields.push(Field {
            name,
            skip,
            default,
            with,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    while !c.at_end() {
        c.skip_attrs();
        c.skip_vis();
        c.skip_type();
        count += 1;
        if c.is_punct(',') {
            c.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs();
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantFields::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                c.next();
                VariantFields::Tuple(count)
            }
            _ => VariantFields::Unit,
        };
        if c.is_punct(',') {
            c.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(input: &Input, trait_name: &str) -> String {
    let Input {
        name,
        generics_decl,
        generics_use,
        ..
    } = input;
    if generics_decl.is_empty() {
        format!("impl ::serde::{trait_name} for {name}")
    } else {
        format!("impl<{generics_decl}> ::serde::{trait_name} for {name}<{generics_use}>")
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let header = impl_header(input, "Serialize");
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.skip {
                    continue;
                }
                let fname = &f.name;
                let value = match &f.with {
                    Some(path) => format!("{path}::serialize(&self.{fname})"),
                    None => format!("::serde::Serialize::to_value(&self.{fname})"),
                };
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{fname}\"), {value}));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(__fields)"
            )
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let pattern: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let mut pushes = String::new();
                        for f in fields {
                            if f.skip {
                                continue;
                            }
                            let fname = &f.name;
                            let value = match &f.with {
                                Some(path) => format!("{path}::serialize({fname})"),
                                None => format!("::serde::Serialize::to_value({fname})"),
                            };
                            pushes.push_str(&format!(
                                "__fields.push((::std::string::String::from(\"{fname}\"), {value}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n{pushes}\
                             ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Map(__fields))])\n}}\n",
                            pattern.join(", ")
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let inner = if *n == 1 {
                            values[0].clone()
                        } else {
                            format!("::serde::Value::Seq(::std::vec![{}])", values.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\n\
         {header} {{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_field_builders(fields: &[Field], map_var: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        let from_value = |value: &str| match &f.with {
            Some(path) => format!("{path}::deserialize({value})?"),
            None => format!("::serde::Deserialize::from_value({value})?"),
        };
        let expr = if f.skip {
            "::std::default::Default::default()".to_string()
        } else if f.default {
            format!(
                "match ::serde::field({map_var}, \"{fname}\") {{\n\
                 ::std::result::Result::Ok(__v) => {},\n\
                 ::std::result::Result::Err(_) => ::std::default::Default::default(),\n}}",
                from_value("__v")
            )
        } else {
            from_value(&format!("::serde::field({map_var}, \"{fname}\")?"))
        };
        out.push_str(&format!("{fname}: {expr},\n"));
    }
    out
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let header = impl_header(input, "Deserialize");
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let builders = named_field_builders(fields, "__map");
            format!(
                "let __map = __value.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected map for `{name}`\"))?;\n\
                 ::std::result::Result::Ok(Self {{\n{builders}}})"
            )
        }
        Data::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(__value)?))"
                .to_string()
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __value.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for `{name}`\"))?;\n\
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple length for `{name}`\")); }}\n\
                 ::std::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let builders = named_field_builders(fields, "__map");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __map = __inner.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map for variant `{vname}`\"))?;\n\
                             ::std::result::Result::Ok({name}::{vname} {{\n{builders}}})\n}}\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        if *n == 1 {
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__inner)?)),\n"
                            ));
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let __seq = __inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for variant `{vname}`\"))?;\n\
                                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong arity for variant `{vname}`\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                                items.join(", ")
                            ));
                        }
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n}},\n\
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))),\n}}\n}}\n\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"invalid value for enum `{name}`\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n#[allow(unused_variables, clippy::all)]\n\
         {header} {{\nfn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
