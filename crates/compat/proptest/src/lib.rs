//! Minimal substitute for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate vendors the
//! slice of proptest the test-suite uses: [`Strategy`] with `prop_map`,
//! integer range strategies, tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and
//! `prop_assert!`/`prop_assert_eq!`. Values are generated from a
//! deterministic splitmix64 stream seeded by the test name; failing cases are
//! reported with their case index but are **not** shrunk.

use std::ops::{Range, RangeInclusive};

/// Deterministic random number generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Error carried out of a failing property (created by `prop_assert!`).
pub type TestCaseError = String;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// A `Just`-style strategy yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Element-count specification accepted by [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Stable 64-bit FNV-1a hash of a test name, used to seed its RNG.
#[must_use]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)` block
/// runs `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_seed($crate::seed_from_name(stringify!($name)));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
    )*};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current property case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                left,
                right,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let u = (2u64..=4).generate(&mut rng);
            assert!((2..=4).contains(&u));
            let i = (-2i64..=2).generate(&mut rng);
            assert!((-2..=2).contains(&i));
            let x = (0usize..12).generate(&mut rng);
            assert!(x < 12);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..100 {
            let v = collection::vec(1u64..=4, 2..=4).generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..=4).contains(&x)));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = TestRng::from_seed(11);
        let strat = (1u64..=3).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(seed_from_name("abc"), seed_from_name("abc"));
        assert_ne!(seed_from_name("abc"), seed_from_name("abd"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_generates_and_asserts(x in 1u64..=9, v in crate::collection::vec(0u64..5, 1..=3)) {
            prop_assert!(x >= 1);
            prop_assert!(v.len() <= 3, "len {} too large", v.len());
            prop_assert_eq!(x, x);
        }
    }
}
