//! Minimal substitute for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple wall-clock loop: one warmup iteration, then up to
//! `sample_size` timed iterations bounded by `measurement_time`. Results are
//! printed as `group/bench  mean ± stddev` lines and recorded in a process-
//! wide list that [`take_measurements`] drains (the bench binaries use it to
//! emit machine-readable JSON).

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/bench` identifier.
    pub id: String,
    /// Number of timed iterations.
    pub iterations: u64,
    /// Mean wall-clock time per iteration in nanoseconds.
    pub mean_ns: f64,
    /// Standard deviation across iterations in nanoseconds.
    pub stddev_ns: f64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process.
#[must_use]
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().unwrap())
}

/// Opaque benchmark identifier, printable with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id labelled only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_bench(name.to_string(), self.sample_size, self.measurement_time, f);
    }
}

/// A group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; warmup is always one iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Bounds the total time spent measuring one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `name` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl fmt::Display, f: F) {
        run_bench(
            format!("{}/{}", self.name, name),
            self.sample_size,
            self.measurement_time,
            f,
        );
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_bench(
            format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`: one warmup call, then up to `sample_size` timed calls
    /// bounded by the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: String,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    let samples = &bencher.samples_ns;
    if samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    let stddev = var.sqrt();
    println!(
        "{id}  time: {} ± {}  ({} samples)",
        format_ns(mean),
        format_ns(stddev),
        samples.len()
    );
    MEASUREMENTS.lock().unwrap().push(Measurement {
        id,
        iterations: samples.len() as u64,
        mean_ns: mean,
        stddev_ns: stddev,
    });
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Identity function that defeats constant propagation, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_measurements() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        let measurements = take_measurements();
        assert!(measurements.iter().any(|m| m.id == "g/noop"));
        assert!(measurements.iter().any(|m| m.id == "g/7"));
        assert!(measurements.iter().all(|m| m.iterations >= 1));
    }

    #[test]
    fn format_scales_units() {
        assert!(format_ns(5.0).contains("ns"));
        assert!(format_ns(5e3).contains("µs"));
        assert!(format_ns(5e6).contains("ms"));
        assert!(format_ns(5e9).contains("s"));
    }
}
