//! Minimal substitute for the `serde_json` crate: JSON text to and from the
//! vendored [`serde::Value`] data model.
//!
//! Supports exactly what this workspace needs — [`to_string`],
//! [`to_string_pretty`] and [`from_str`] — with standard JSON escaping and a
//! recursive-descent parser. Non-finite floats serialize as `null`, matching
//! real `serde_json`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises `value` as compact JSON.
///
/// # Errors
///
/// Never fails for values produced by the vendored serde derives; the
/// `Result` mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as pretty-printed JSON (two-space indentation).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an error if the text is not valid JSON or does not match the
/// shape `T` expects.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 is shortest-round-trip in Rust; integral floats
                // keep a trailing `.0` so they read back as floats.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at offset {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at offset {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Int(-(u as i64)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let n: u64 = from_str("42").unwrap();
        assert_eq!(n, 42);
        let f: f64 = from_str("1.5").unwrap();
        assert!((f - 1.5).abs() < 1e-12);
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![vec![1u64], vec![2]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  ["));
    }

    #[test]
    fn parses_nested_objects() {
        let value = parse_value(r#"{"a": [1, -2, 3.5], "b": {"c": null}}"#).unwrap();
        let entries = value.as_map().unwrap();
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn unicode_survives() {
        let s = "héllo \u{1f600}";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
