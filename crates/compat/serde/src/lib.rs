//! Minimal, self-contained substitute for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the narrow slice of serde it actually uses: a JSON-
//! shaped [`Value`] data model, [`Serialize`] / [`Deserialize`] traits that
//! convert to and from it, and derive macros (re-exported from the sibling
//! `serde_derive` crate) covering named-field structs, tuple structs and
//! enums with unit or struct variants, plus the `#[serde(skip)]` and
//! `#[serde(with = "module")]` field attributes.
//!
//! The API is intentionally *not* the full serde data model: there are no
//! `Serializer`/`Deserializer` visitors. `with`-style modules implement
//! `fn serialize(&T) -> Value` and `fn deserialize(&Value) -> Result<T, Error>`
//! instead. Swapping this crate for the real serde only requires restoring
//! those two signatures.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree value, structurally equivalent to JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, or `None` for any other variant.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value, or `None` for any other variant.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Error produced while converting a [`Value`] back into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error carrying `message`.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up a required field in a struct map.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Looks up an optional field in a struct map; absent fields read as `Null`.
pub fn field_or_null<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serde data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the serde data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::custom(format!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::custom(format!(
                        "expected integer, found {other:?}"
                    ))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!("expected number, found {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char, found {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: std::str::FromStr + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::custom("expected object for map"))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse()
                    .map_err(|_| Error::custom(format!("invalid map key `{k}`")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl<K: fmt::Display + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Map(entries)
    }
}

impl<K: std::str::FromStr + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::custom("expected object for map"))?;
        entries
            .iter()
            .map(|(k, v)| {
                let key = k
                    .parse()
                    .map_err(|_| Error::custom(format!("invalid map key `{k}`")))?;
                Ok((key, V::from_value(v)?))
            })
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::custom("expected object for Duration"))?;
        let secs = u64::from_value(field(entries, "secs")?)?;
        let nanos = u32::from_value(field(entries, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u64> = Vec::from_value(&vec![1u64, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (u64, i64) = Deserialize::from_value(&(3u64, -4i64).to_value()).unwrap();
        assert_eq!(t, (3, -4));
    }

    #[test]
    fn option_maps_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::UInt(5)).unwrap(), Some(5));
        assert_eq!(None::<u64>.to_value(), Value::Null);
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(3, 250_000_000);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn missing_field_is_reported() {
        let entries = vec![("a".to_string(), Value::UInt(1))];
        assert!(field(&entries, "a").is_ok());
        let err = field(&entries, "b").unwrap_err();
        assert!(err.to_string().contains("missing field `b`"));
    }
}
