//! Operator placement strategies for the Tessel reproduction.
//!
//! Tessel takes a placement as input; this crate produces them:
//!
//! * [`shapes`] — the synthetic, unit-cost V/X/M/K/NN shapes of Fig. 1 used
//!   by the search-space studies (Figs. 3, 11 and 12, Table II), and the
//!   model-driven placements of Fig. 8 built from the analytical cost models
//!   of `tessel-models` (M-shape GPT, NN-shape mT5, K-shape Flava, plus the
//!   V-shape baseline placement used by 1F1B).
//! * [`piper`] — a Piper-style dynamic-programming partitioner that groups a
//!   linear layer sequence into pipeline stages under a memory budget,
//!   balancing per-stage compute time.
//! * [`groups`] — device-group helpers: the paper scales to 8/16/32 GPUs by
//!   combining pipeline stages with tensor/data parallelism inside each
//!   block, so a "device" of the schedule search becomes a group of GPUs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod groups;
pub mod piper;
pub mod shapes;

pub use groups::DeviceGroups;
pub use piper::{partition_layers, PiperPartition};
pub use shapes::{
    flava_k_shape, gpt_m_shape, gpt_v_shape_baseline, mt5_nn_shape, mt5_v_shape_baseline,
    synthetic_placement, ShapeKind,
};

/// Result alias re-using the core error type.
pub type Result<T> = std::result::Result<T, tessel_core::CoreError>;
