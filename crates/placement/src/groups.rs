//! Device groups: mapping schedule-level "devices" onto physical GPUs.
//!
//! The paper keeps the pipeline depth small (the Fig. 8 schedules use four
//! pipeline stages) and absorbs additional GPUs with tensor/data parallelism
//! *inside* each execution block, following Piper. A [`DeviceGroups`] value
//! records that mapping: `stages` schedule devices, each backed by
//! `gpus_per_group` physical GPUs. Block times shrink with the group size
//! (with an efficiency discount) and per-GPU parameter memory shrinks
//! linearly.

use serde::{Deserialize, Serialize};

/// Mapping of schedule devices to physical GPU groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceGroups {
    /// Number of schedule-level devices (pipeline stages).
    pub stages: usize,
    /// Physical GPUs backing each schedule device.
    pub gpus_per_group: usize,
    /// Parallel efficiency of splitting one block across the group
    /// (`0 < efficiency <= 1`); tensor parallelism is never perfectly linear.
    pub efficiency: f64,
}

impl DeviceGroups {
    /// Groups `total_gpus` GPUs into at most `max_stages` pipeline stages.
    ///
    /// With fewer GPUs than `max_stages`, every GPU becomes its own stage.
    #[must_use]
    pub fn for_gpus(total_gpus: usize, max_stages: usize) -> Self {
        let stages = total_gpus.min(max_stages).max(1);
        let gpus_per_group = (total_gpus / stages).max(1);
        DeviceGroups {
            stages,
            gpus_per_group,
            efficiency: 0.9,
        }
    }

    /// Total physical GPUs covered by the groups.
    #[must_use]
    pub fn total_gpus(&self) -> usize {
        self.stages * self.gpus_per_group
    }

    /// Scales a single-GPU block time to the group: dividing by the group
    /// size, discounted by the parallel efficiency, and never below 1.
    #[must_use]
    pub fn scale_time(&self, single_gpu_time: u64) -> u64 {
        if single_gpu_time == 0 {
            return 0;
        }
        let scaled = (single_gpu_time as f64 / (self.gpus_per_group as f64 * self.efficiency))
            .round() as u64;
        scaled.max(1)
    }

    /// Scales a per-model memory amount to a per-GPU share of the group.
    #[must_use]
    pub fn scale_memory(&self, memory_units: i64) -> i64 {
        if memory_units == 0 {
            return 0;
        }
        let share = (memory_units as f64 / self.gpus_per_group as f64).ceil() as i64;
        if memory_units > 0 {
            share.max(1)
        } else {
            share.min(-1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_keep_pipeline_depth_bounded() {
        let g = DeviceGroups::for_gpus(32, 4);
        assert_eq!(g.stages, 4);
        assert_eq!(g.gpus_per_group, 8);
        assert_eq!(g.total_gpus(), 32);
        let small = DeviceGroups::for_gpus(2, 4);
        assert_eq!(small.stages, 2);
        assert_eq!(small.gpus_per_group, 1);
    }

    #[test]
    fn time_scaling_accounts_for_efficiency() {
        let g = DeviceGroups {
            stages: 4,
            gpus_per_group: 4,
            efficiency: 1.0,
        };
        assert_eq!(g.scale_time(40), 10);
        assert_eq!(g.scale_time(0), 0);
        assert_eq!(g.scale_time(1), 1, "times never round to zero");
        let lossy = DeviceGroups {
            efficiency: 0.5,
            ..g
        };
        assert_eq!(lossy.scale_time(40), 20);
    }

    #[test]
    fn memory_scaling_preserves_sign() {
        let g = DeviceGroups {
            stages: 4,
            gpus_per_group: 8,
            efficiency: 0.9,
        };
        assert_eq!(g.scale_memory(16), 2);
        assert_eq!(g.scale_memory(-16), -2);
        assert_eq!(g.scale_memory(1), 1);
        assert_eq!(g.scale_memory(-1), -1);
        assert_eq!(g.scale_memory(0), 0);
    }
}
