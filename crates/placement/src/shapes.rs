//! Placement shapes: the synthetic unit-cost shapes of Fig. 1 and the
//! model-driven placements of Fig. 8.

use crate::groups::DeviceGroups;
use crate::piper::{partition_layers, PartitionItem};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::fmt;
use tessel_core::ir::{BlockKind, BlockSpec, PlacementSpec};
use tessel_core::CoreError;
use tessel_models::config::{FlavaConfig, ModelConfig};
use tessel_models::cost::CostModel;

/// The placement shapes studied in the paper (Fig. 1 and Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShapeKind {
    /// Sequential stages, one per device (1F1B's placement).
    V,
    /// Bidirectional pipelines (Chimera's placement).
    X,
    /// Memory-heavy operators distributed across all devices, compute stages
    /// in a V between them (GPT with a large embedding).
    M,
    /// Two independent branches on disjoint devices joining in an all-device
    /// cross stage (Flava).
    K,
    /// Shared embedding across all devices feeding separate encoder and
    /// decoder pipelines (mT5).
    NN,
}

impl ShapeKind {
    /// All shapes, in the order the paper's figures list them.
    #[must_use]
    pub fn all() -> [ShapeKind; 5] {
        [
            ShapeKind::V,
            ShapeKind::X,
            ShapeKind::M,
            ShapeKind::K,
            ShapeKind::NN,
        ]
    }
}

impl fmt::Display for ShapeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ShapeKind::V => "V-Shape",
            ShapeKind::X => "X-Shape",
            ShapeKind::M => "M-Shape",
            ShapeKind::K => "K-Shape",
            ShapeKind::NN => "NN-Shape",
        };
        write!(f, "{name}")
    }
}

/// Builds a synthetic, unit-cost placement of the given shape over `devices`
/// devices: forward blocks cost 1 time unit and +1 memory unit, backward
/// blocks cost 2 time units and -1 memory unit (the convention of §III-B and
/// the Fig. 11/12 ablations). Memory is left unconstrained; use
/// [`PlacementSpec::with_memory_capacity`] for the Fig. 12 study.
///
/// # Errors
///
/// Returns an error for fewer than two devices (the K/X/NN shapes need at
/// least two).
pub fn synthetic_placement(kind: ShapeKind, devices: usize) -> Result<PlacementSpec> {
    if devices < 2 {
        return Err(CoreError::EmptyPlacement);
    }
    let mut b = PlacementSpec::builder(format!("{kind}-{devices}dev"), devices);
    match kind {
        ShapeKind::V => {
            let mut prev: Option<usize> = None;
            let forwards: Vec<usize> = (0..devices)
                .map(|d| {
                    let deps: Vec<usize> = prev.into_iter().collect();
                    let id = b
                        .add_block(format!("f{d}"), BlockKind::Forward, [d], 1, 1, deps)
                        .expect("valid block");
                    prev = Some(id);
                    id
                })
                .collect();
            let _ = forwards;
            for d in (0..devices).rev() {
                let deps: Vec<usize> = prev.into_iter().collect();
                prev = Some(
                    b.add_block(format!("b{d}"), BlockKind::Backward, [d], 2, -1, deps)
                        .expect("valid block"),
                );
            }
        }
        ShapeKind::X => {
            // Two pipelines in opposite directions, as in Chimera.
            for (branch, down) in [("d", true), ("u", false)] {
                let mut prev: Option<usize> = None;
                let order: Vec<usize> = if down {
                    (0..devices).collect()
                } else {
                    (0..devices).rev().collect()
                };
                for &d in &order {
                    let deps: Vec<usize> = prev.into_iter().collect();
                    prev = Some(
                        b.add_block(
                            format!("{branch}-f{d}"),
                            BlockKind::Forward,
                            [d],
                            1,
                            1,
                            deps,
                        )
                        .expect("valid block"),
                    );
                }
                for &d in order.iter().rev() {
                    let deps: Vec<usize> = prev.into_iter().collect();
                    prev = Some(
                        b.add_block(
                            format!("{branch}-b{d}"),
                            BlockKind::Backward,
                            [d],
                            2,
                            -1,
                            deps,
                        )
                        .expect("valid block"),
                    );
                }
            }
        }
        ShapeKind::M => {
            let all: Vec<usize> = (0..devices).collect();
            let embed_f = b
                .add_block("embed-f", BlockKind::Forward, all.clone(), 1, 1, [])
                .expect("valid block");
            let mut prev = embed_f;
            for d in 0..devices {
                prev = b
                    .add_block(format!("f{d}"), BlockKind::Forward, [d], 1, 1, [prev])
                    .expect("valid block");
            }
            for d in (0..devices).rev() {
                prev = b
                    .add_block(format!("b{d}"), BlockKind::Backward, [d], 2, -1, [prev])
                    .expect("valid block");
            }
            b.add_block("embed-b", BlockKind::Backward, all, 2, -1, [prev])
                .expect("valid block");
        }
        ShapeKind::K => {
            let half = devices / 2;
            let mut branch_ends = Vec::new();
            for (branch, range) in [("text", 0..half), ("vision", half..devices)] {
                let mut prev: Option<usize> = None;
                for d in range {
                    let deps: Vec<usize> = prev.into_iter().collect();
                    prev = Some(
                        b.add_block(
                            format!("{branch}-f{d}"),
                            BlockKind::Forward,
                            [d],
                            1,
                            1,
                            deps,
                        )
                        .expect("valid block"),
                    );
                }
                branch_ends.push(prev.expect("branch has at least one stage"));
            }
            let all: Vec<usize> = (0..devices).collect();
            let cross_f = b
                .add_block(
                    "cross-f",
                    BlockKind::Forward,
                    all.clone(),
                    1,
                    1,
                    branch_ends.clone(),
                )
                .expect("valid block");
            let cross_b = b
                .add_block("cross-b", BlockKind::Backward, all, 2, -1, [cross_f])
                .expect("valid block");
            for (branch, range) in [("text", 0..half), ("vision", half..devices)] {
                let mut prev = cross_b;
                for d in range.rev() {
                    prev = b
                        .add_block(
                            format!("{branch}-b{d}"),
                            BlockKind::Backward,
                            [d],
                            2,
                            -1,
                            [prev],
                        )
                        .expect("valid block");
                }
            }
        }
        ShapeKind::NN => {
            let half = devices / 2;
            let all: Vec<usize> = (0..devices).collect();
            let embed_f = b
                .add_block("embed-f", BlockKind::Forward, all.clone(), 1, 1, [])
                .expect("valid block");
            let mut enc_prev = embed_f;
            for d in 0..half {
                enc_prev = b
                    .add_block(
                        format!("enc-f{d}"),
                        BlockKind::Forward,
                        [d],
                        1,
                        1,
                        [enc_prev],
                    )
                    .expect("valid block");
            }
            let mut dec_prev = enc_prev;
            let mut first_dec = None;
            for d in half..devices {
                let deps = if first_dec.is_none() {
                    vec![embed_f, enc_prev]
                } else {
                    vec![dec_prev]
                };
                dec_prev = b
                    .add_block(format!("dec-f{d}"), BlockKind::Forward, [d], 1, 1, deps)
                    .expect("valid block");
                first_dec.get_or_insert(dec_prev);
            }
            let mut prev = dec_prev;
            for d in (half..devices).rev() {
                prev = b
                    .add_block(format!("dec-b{d}"), BlockKind::Backward, [d], 2, -1, [prev])
                    .expect("valid block");
            }
            for d in (0..half).rev() {
                prev = b
                    .add_block(format!("enc-b{d}"), BlockKind::Backward, [d], 2, -1, [prev])
                    .expect("valid block");
            }
            b.add_block("embed-b", BlockKind::Backward, all, 2, -1, [prev])
                .expect("valid block");
        }
    }
    b.build()
}

/// Memory multiplier covering parameters, gradients and (distributed)
/// optimizer state relative to half-precision parameter bytes.
const STATE_FACTOR: u64 = 4;

/// Internal description of one pipeline stage of a model-driven placement.
struct StagePlan {
    name: String,
    devices: Vec<usize>,
    forward_time: u64,
    backward_time: u64,
    forward_flops: f64,
    backward_flops: f64,
    activation_mem: i64,
    static_mem: i64,
    output_bytes: u64,
    deps: Vec<usize>,
}

/// Assembles a training (or inference) placement out of stage plans.
fn assemble(
    name: String,
    num_devices: usize,
    capacity_units: i64,
    stages: Vec<StagePlan>,
    inference: bool,
) -> Result<PlacementSpec> {
    // Static memory check: every schedule device must hold the parameter and
    // optimizer state of the stages mapped onto it.
    let mut static_per_device = vec![0i64; num_devices];
    for stage in &stages {
        for &d in &stage.devices {
            static_per_device[d] += stage.static_mem;
        }
    }
    let mut available = capacity_units;
    for (device, &static_mem) in static_per_device.iter().enumerate() {
        if static_mem >= capacity_units {
            return Err(CoreError::PlacementOutOfMemory {
                device,
                required: static_mem,
                capacity: capacity_units,
            });
        }
        available = available.min(capacity_units - static_mem);
    }

    let mut builder = PlacementSpec::builder(name, num_devices);
    builder.set_memory_capacity(Some(available));
    // Forward blocks in stage order. Training forwards keep their activations
    // alive until the matching backward releases them; inference activations
    // are transient (consumed by the next stage), so they do not accumulate
    // against the budget.
    let mut forward_ids = Vec::with_capacity(stages.len());
    for stage in &stages {
        let deps: Vec<usize> = stage.deps.iter().map(|&s| forward_ids[s]).collect();
        let forward_memory = if inference { 0 } else { stage.activation_mem };
        let block = BlockSpec::new(
            format!("{}-f", stage.name),
            BlockKind::Forward,
            stage.devices.iter().copied(),
            stage.forward_time,
            forward_memory,
        )
        .with_deps(deps)
        .with_flops(stage.forward_flops)
        .with_output_bytes(stage.output_bytes);
        forward_ids.push(builder.push_block(block)?);
    }
    if !inference {
        // Backward blocks in reverse stage order; the backward of a stage
        // depends on its forward and on the backward of every stage that
        // consumed its output.
        let mut backward_ids: Vec<Option<usize>> = vec![None; stages.len()];
        for (idx, stage) in stages.iter().enumerate().rev() {
            let mut deps = vec![forward_ids[idx]];
            for (succ_idx, succ) in stages.iter().enumerate() {
                if succ.deps.contains(&idx) {
                    if let Some(bid) = backward_ids[succ_idx] {
                        deps.push(bid);
                    }
                }
            }
            let block = BlockSpec::new(
                format!("{}-b", stage.name),
                BlockKind::Backward,
                stage.devices.iter().copied(),
                stage.backward_time,
                -stage.activation_mem,
            )
            .with_deps(deps)
            .with_flops(stage.backward_flops)
            .with_output_bytes(stage.output_bytes);
            backward_ids[idx] = Some(builder.push_block(block)?);
        }
    }
    builder.build()
}

/// Scales a block running across `width` GPUs.
fn scale_over(time: u64, width: usize, efficiency: f64) -> u64 {
    if time == 0 {
        return 0;
    }
    ((time as f64 / (width as f64 * efficiency)).round() as u64).max(1)
}

/// The M-shape GPT placement of Fig. 8(a): the large embedding is
/// tensor-parallel across every GPU while the transformer layers form a
/// pipeline over the schedule devices (GPU groups).
///
/// # Errors
///
/// Returns [`CoreError::PlacementOutOfMemory`] when the static state does not
/// fit (which does not happen for the Table III configurations).
pub fn gpt_m_shape(
    config: &ModelConfig,
    cost: &CostModel,
    total_gpus: usize,
) -> Result<PlacementSpec> {
    let groups = DeviceGroups::for_gpus(total_gpus, 4);
    let s = groups.stages;
    let capacity = cost.device.memory_capacity_units();
    let layer = cost.transformer_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
    let embed = cost.embedding_layer(
        config.hidden_size,
        config.vocab_size,
        config.seq_len,
        config.micro_batch_size,
    );

    let total = groups.total_gpus();
    let mut stages = Vec::new();
    // Stage 0: the embedding, spread across every GPU.
    stages.push(StagePlan {
        name: "embed".into(),
        devices: (0..s).collect(),
        forward_time: scale_over(cost.forward_time(&embed), total, groups.efficiency),
        backward_time: scale_over(cost.backward_time(&embed), total, groups.efficiency),
        forward_flops: embed.forward_flops,
        backward_flops: embed.backward_flops * cost.recompute_factor,
        activation_mem: cost.memory_units(embed.activation_bytes),
        static_mem: cost.memory_units(embed.param_bytes * STATE_FACTOR / total as u64),
        output_bytes: embed.output_bytes,
        deps: vec![],
    });
    // Transformer layers balanced across the schedule devices.
    let per_layer_fwd = scale_over(
        cost.forward_time(&layer),
        groups.gpus_per_group,
        groups.efficiency,
    );
    let per_layer_bwd = scale_over(
        cost.backward_time(&layer),
        groups.gpus_per_group,
        groups.efficiency,
    );
    let items: Vec<PartitionItem> = (0..config.num_layers)
        .map(|_| PartitionItem {
            time: per_layer_fwd + per_layer_bwd,
            memory: cost
                .memory_units(layer.param_bytes * STATE_FACTOR / groups.gpus_per_group as u64),
        })
        .collect();
    let partition = partition_layers(&items, s, None).ok_or(CoreError::EmptyPlacement)?;
    for (stage_idx, &(lo, hi)) in partition.stages.iter().enumerate() {
        let layers = (hi - lo) as u64;
        stages.push(StagePlan {
            name: format!("layers{stage_idx}"),
            devices: vec![stage_idx],
            forward_time: (per_layer_fwd * layers).max(1),
            backward_time: (per_layer_bwd * layers).max(1),
            forward_flops: layer.forward_flops * layers as f64,
            backward_flops: layer.backward_flops * cost.recompute_factor * layers as f64,
            activation_mem: cost
                .memory_units(layer.activation_bytes * layers / groups.gpus_per_group as u64)
                .max(1),
            static_mem: cost.memory_units(
                layer.param_bytes * STATE_FACTOR * layers / groups.gpus_per_group as u64,
            ),
            output_bytes: layer.output_bytes,
            deps: vec![stage_idx], // previous stage (embed is 0, layers start at 1)
        });
    }
    assemble(
        format!("gpt-m-shape-{total_gpus}gpu"),
        s,
        capacity,
        stages,
        false,
    )
}

/// The baseline V-shape GPT placement used by 1F1B (Piper policy): the
/// embedding takes as many leading GPU groups as its state needs, the
/// transformer layers share whatever is left — which is exactly the
/// imbalance Fig. 2 of the paper demonstrates.
///
/// # Errors
///
/// Returns [`CoreError::PlacementOutOfMemory`] if even dedicating all but one
/// group to the embedding is not enough.
pub fn gpt_v_shape_baseline(
    config: &ModelConfig,
    cost: &CostModel,
    total_gpus: usize,
) -> Result<PlacementSpec> {
    let groups = DeviceGroups::for_gpus(total_gpus, 4);
    let s = groups.stages;
    let capacity = cost.device.memory_capacity_units();
    let layer = cost.transformer_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
    let embed = cost.embedding_layer(
        config.hidden_size,
        config.vocab_size,
        config.seq_len,
        config.micro_batch_size,
    );

    // How many schedule devices must the embedding span so its static state
    // fits, leaving a small activation margin?
    let embed_state = cost.memory_units(embed.param_bytes * STATE_FACTOR);
    let usable_per_group = ((capacity - 4).max(1)) * groups.gpus_per_group as i64;
    let embed_groups = ((embed_state + usable_per_group - 1) / usable_per_group).max(1) as usize;
    if embed_groups >= s {
        return Err(CoreError::PlacementOutOfMemory {
            device: 0,
            required: embed_state,
            capacity: usable_per_group * (s as i64 - 1),
        });
    }
    let layer_groups = s - embed_groups;

    let embed_width = embed_groups * groups.gpus_per_group;
    let mut stages = Vec::new();
    stages.push(StagePlan {
        name: "embed".into(),
        devices: (0..embed_groups).collect(),
        forward_time: scale_over(cost.forward_time(&embed), embed_width, groups.efficiency),
        backward_time: scale_over(cost.backward_time(&embed), embed_width, groups.efficiency),
        forward_flops: embed.forward_flops,
        backward_flops: embed.backward_flops * cost.recompute_factor,
        activation_mem: cost.memory_units(embed.activation_bytes),
        static_mem: cost.memory_units(embed.param_bytes * STATE_FACTOR / embed_width as u64),
        output_bytes: embed.output_bytes,
        deps: vec![],
    });
    let per_layer_fwd = scale_over(
        cost.forward_time(&layer),
        groups.gpus_per_group,
        groups.efficiency,
    );
    let per_layer_bwd = scale_over(
        cost.backward_time(&layer),
        groups.gpus_per_group,
        groups.efficiency,
    );
    let items: Vec<PartitionItem> = (0..config.num_layers)
        .map(|_| PartitionItem {
            time: per_layer_fwd + per_layer_bwd,
            memory: cost
                .memory_units(layer.param_bytes * STATE_FACTOR / groups.gpus_per_group as u64),
        })
        .collect();
    let partition =
        partition_layers(&items, layer_groups, None).ok_or(CoreError::EmptyPlacement)?;
    for (stage_idx, &(lo, hi)) in partition.stages.iter().enumerate() {
        let layers = (hi - lo) as u64;
        let device = embed_groups + stage_idx;
        stages.push(StagePlan {
            name: format!("layers{stage_idx}"),
            devices: vec![device],
            forward_time: (per_layer_fwd * layers).max(1),
            backward_time: (per_layer_bwd * layers).max(1),
            forward_flops: layer.forward_flops * layers as f64,
            backward_flops: layer.backward_flops * cost.recompute_factor * layers as f64,
            activation_mem: cost
                .memory_units(layer.activation_bytes * layers / groups.gpus_per_group as u64)
                .max(1),
            static_mem: cost.memory_units(
                layer.param_bytes * STATE_FACTOR * layers / groups.gpus_per_group as u64,
            ),
            output_bytes: layer.output_bytes,
            deps: vec![stages.len() - 1],
        });
    }
    assemble(
        format!("gpt-v-shape-{total_gpus}gpu"),
        s,
        capacity,
        stages,
        false,
    )
}

/// The NN-shape mT5 placement of Fig. 8(d): the shared embedding is spread
/// across every GPU, the encoder pipeline runs on the first half of the
/// schedule devices and the decoder pipeline on the second half.
///
/// # Errors
///
/// Returns [`CoreError::PlacementOutOfMemory`] when the static state does not
/// fit.
pub fn mt5_nn_shape(
    config: &ModelConfig,
    cost: &CostModel,
    total_gpus: usize,
) -> Result<PlacementSpec> {
    let groups = DeviceGroups::for_gpus(total_gpus, 4);
    let s = groups.stages;
    let half = (s / 2).max(1);
    let capacity = cost.device.memory_capacity_units();
    let enc = cost.transformer_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
    let dec = cost.decoder_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
    let embed = cost.embedding_layer(
        config.hidden_size,
        config.vocab_size,
        config.seq_len,
        config.micro_batch_size,
    );
    let total = groups.total_gpus();

    let mut stages = Vec::new();
    stages.push(StagePlan {
        name: "embed".into(),
        devices: (0..s).collect(),
        forward_time: scale_over(cost.forward_time(&embed), total, groups.efficiency),
        backward_time: scale_over(cost.backward_time(&embed), total, groups.efficiency),
        forward_flops: embed.forward_flops,
        backward_flops: embed.backward_flops * cost.recompute_factor,
        activation_mem: cost.memory_units(embed.activation_bytes),
        static_mem: cost.memory_units(embed.param_bytes * STATE_FACTOR / total as u64),
        output_bytes: embed.output_bytes,
        deps: vec![],
    });

    let encoder_layers = config.num_layers / 2;
    let decoder_layers = config.num_layers - encoder_layers;
    let add_stack = |stages: &mut Vec<StagePlan>,
                     name: &str,
                     layer_cost: &tessel_models::cost::LayerCost,
                     num_layers: usize,
                     device_range: std::ops::Range<usize>,
                     extra_dep: Option<usize>| {
        let num_stages = device_range.len();
        let per_fwd = scale_over(
            cost.forward_time(layer_cost),
            groups.gpus_per_group,
            groups.efficiency,
        );
        let per_bwd = scale_over(
            cost.backward_time(layer_cost),
            groups.gpus_per_group,
            groups.efficiency,
        );
        let per_stage = (num_layers / num_stages).max(1) as u64;
        let mut prev: Option<usize> = None;
        for (i, device) in device_range.enumerate() {
            let mut deps = vec![0usize]; // the shared embedding
            if let Some(p) = prev {
                deps.push(p);
            } else if let Some(extra) = extra_dep {
                deps.push(extra);
            }
            let idx = stages.len();
            stages.push(StagePlan {
                name: format!("{name}{i}"),
                devices: vec![device],
                forward_time: (per_fwd * per_stage).max(1),
                backward_time: (per_bwd * per_stage).max(1),
                forward_flops: layer_cost.forward_flops * per_stage as f64,
                backward_flops: layer_cost.backward_flops
                    * cost.recompute_factor
                    * per_stage as f64,
                activation_mem: cost
                    .memory_units(
                        layer_cost.activation_bytes * per_stage / groups.gpus_per_group as u64,
                    )
                    .max(1),
                static_mem: cost.memory_units(
                    layer_cost.param_bytes * STATE_FACTOR * per_stage
                        / groups.gpus_per_group as u64,
                ),
                output_bytes: layer_cost.output_bytes,
                deps,
            });
            prev = Some(idx);
        }
        prev
    };
    let last_enc = add_stack(&mut stages, "enc", &enc, encoder_layers, 0..half, None);
    add_stack(&mut stages, "dec", &dec, decoder_layers, half..s, last_enc);

    assemble(
        format!("mt5-nn-shape-{total_gpus}gpu"),
        s,
        capacity,
        stages,
        false,
    )
}

/// Baseline V-shape mT5 placement (Piper policy, for 1F1B): the shared
/// embedding gets its own leading stage(s), encoder and decoder layers are
/// laid out sequentially over the remaining groups.
///
/// # Errors
///
/// Returns [`CoreError::PlacementOutOfMemory`] if the embedding cannot fit on
/// the available groups.
pub fn mt5_v_shape_baseline(
    config: &ModelConfig,
    cost: &CostModel,
    total_gpus: usize,
) -> Result<PlacementSpec> {
    // Reuse the GPT baseline construction with a mixed layer cost: encoder
    // layers followed by (heavier) decoder layers, laid out sequentially.
    let groups = DeviceGroups::for_gpus(total_gpus, 4);
    let s = groups.stages;
    let capacity = cost.device.memory_capacity_units();
    let enc = cost.transformer_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
    let dec = cost.decoder_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
    let embed = cost.embedding_layer(
        config.hidden_size,
        config.vocab_size,
        config.seq_len,
        config.micro_batch_size,
    );

    let embed_state = cost.memory_units(embed.param_bytes * STATE_FACTOR);
    let usable_per_group = ((capacity - 4).max(1)) * groups.gpus_per_group as i64;
    let embed_groups = ((embed_state + usable_per_group - 1) / usable_per_group).max(1) as usize;
    if embed_groups >= s {
        return Err(CoreError::PlacementOutOfMemory {
            device: 0,
            required: embed_state,
            capacity: usable_per_group * (s as i64 - 1),
        });
    }
    let layer_groups = s - embed_groups;
    let embed_width = embed_groups * groups.gpus_per_group;

    let mut stages = Vec::new();
    stages.push(StagePlan {
        name: "embed".into(),
        devices: (0..embed_groups).collect(),
        forward_time: scale_over(cost.forward_time(&embed), embed_width, groups.efficiency),
        backward_time: scale_over(cost.backward_time(&embed), embed_width, groups.efficiency),
        forward_flops: embed.forward_flops,
        backward_flops: embed.backward_flops * cost.recompute_factor,
        activation_mem: cost.memory_units(embed.activation_bytes),
        static_mem: cost.memory_units(embed.param_bytes * STATE_FACTOR / embed_width as u64),
        output_bytes: embed.output_bytes,
        deps: vec![],
    });
    let encoder_layers = config.num_layers / 2;
    let decoder_layers = config.num_layers - encoder_layers;
    let mut items: Vec<PartitionItem> = Vec::new();
    for _ in 0..encoder_layers {
        items.push(PartitionItem {
            time: scale_over(
                cost.forward_time(&enc),
                groups.gpus_per_group,
                groups.efficiency,
            ) + scale_over(
                cost.backward_time(&enc),
                groups.gpus_per_group,
                groups.efficiency,
            ),
            memory: cost
                .memory_units(enc.param_bytes * STATE_FACTOR / groups.gpus_per_group as u64),
        });
    }
    for _ in 0..decoder_layers {
        items.push(PartitionItem {
            time: scale_over(
                cost.forward_time(&dec),
                groups.gpus_per_group,
                groups.efficiency,
            ) + scale_over(
                cost.backward_time(&dec),
                groups.gpus_per_group,
                groups.efficiency,
            ),
            memory: cost
                .memory_units(dec.param_bytes * STATE_FACTOR / groups.gpus_per_group as u64),
        });
    }
    let partition =
        partition_layers(&items, layer_groups, None).ok_or(CoreError::EmptyPlacement)?;
    for (stage_idx, &(lo, hi)) in partition.stages.iter().enumerate() {
        let device = embed_groups + stage_idx;
        let fwd: u64 = items[lo..hi].iter().map(|i| i.time / 4).sum::<u64>().max(1);
        let bwd: u64 = items[lo..hi]
            .iter()
            .map(|i| i.time - i.time / 4)
            .sum::<u64>()
            .max(1);
        let static_mem: i64 = items[lo..hi].iter().map(|i| i.memory).sum();
        stages.push(StagePlan {
            name: format!("stack{stage_idx}"),
            devices: vec![device],
            forward_time: fwd,
            backward_time: bwd,
            forward_flops: enc.forward_flops * (hi - lo) as f64,
            backward_flops: enc.backward_flops * cost.recompute_factor * (hi - lo) as f64,
            activation_mem: cost
                .memory_units(
                    enc.activation_bytes * (hi - lo) as u64 / groups.gpus_per_group as u64,
                )
                .max(1),
            static_mem,
            output_bytes: enc.output_bytes,
            deps: vec![stages.len() - 1],
        });
    }
    assemble(
        format!("mt5-v-shape-{total_gpus}gpu"),
        s,
        capacity,
        stages,
        false,
    )
}

/// The K-shape Flava placement of Fig. 8(g): the text branch runs on the
/// first half of the schedule devices, the vision branch on the second half,
/// and the cross encoder is tensor-parallel across all of them. With
/// `inference = true` only forward blocks are emitted (the Fig. 15 setup).
///
/// # Errors
///
/// Returns [`CoreError::PlacementOutOfMemory`] when the static state does not
/// fit.
pub fn flava_k_shape(
    config: &FlavaConfig,
    cost: &CostModel,
    total_gpus: usize,
    inference: bool,
) -> Result<PlacementSpec> {
    let groups = DeviceGroups::for_gpus(total_gpus, 4);
    let s = groups.stages.max(2);
    let half = (s / 2).max(1);
    let capacity = cost.device.memory_capacity_units();
    let text = cost.transformer_layer(
        config.hidden_size,
        config.text_seq_len,
        config.micro_batch_size,
    );
    let vision = cost.transformer_layer(
        config.hidden_size,
        config.vision_seq_len,
        config.micro_batch_size,
    );
    let cross = cost.transformer_layer(
        config.hidden_size,
        config.text_seq_len + config.vision_seq_len,
        config.micro_batch_size,
    );
    let total = groups.total_gpus();

    let mut stages = Vec::new();
    let add_branch = |stages: &mut Vec<StagePlan>,
                      name: &str,
                      layer_cost: &tessel_models::cost::LayerCost,
                      num_layers: usize,
                      device_range: std::ops::Range<usize>| {
        let num_stages = device_range.len();
        let per_fwd = scale_over(
            cost.forward_time(layer_cost),
            groups.gpus_per_group,
            groups.efficiency,
        );
        let per_bwd = scale_over(
            cost.backward_time(layer_cost),
            groups.gpus_per_group,
            groups.efficiency,
        );
        let per_stage = (num_layers / num_stages).max(1) as u64;
        let mut prev: Option<usize> = None;
        for (i, device) in device_range.enumerate() {
            let deps: Vec<usize> = prev.into_iter().collect();
            let idx = stages.len();
            stages.push(StagePlan {
                name: format!("{name}{i}"),
                devices: vec![device],
                forward_time: (per_fwd * per_stage).max(1),
                backward_time: (per_bwd * per_stage).max(1),
                forward_flops: layer_cost.forward_flops * per_stage as f64,
                backward_flops: layer_cost.backward_flops
                    * cost.recompute_factor
                    * per_stage as f64,
                activation_mem: cost
                    .memory_units(
                        layer_cost.activation_bytes * per_stage / groups.gpus_per_group as u64,
                    )
                    .max(1),
                static_mem: cost.memory_units(
                    layer_cost.param_bytes * STATE_FACTOR * per_stage
                        / groups.gpus_per_group as u64,
                ),
                output_bytes: layer_cost.output_bytes,
                deps,
            });
            prev = Some(idx);
        }
        prev.expect("branch has at least one stage")
    };
    let text_end = add_branch(&mut stages, "text", &text, config.text_layers, 0..half);
    let vision_end = add_branch(
        &mut stages,
        "vision",
        &vision,
        config.vision_layers,
        half..s,
    );
    let cross_layers = config.cross_layers as u64;
    stages.push(StagePlan {
        name: "cross".into(),
        devices: (0..s).collect(),
        forward_time: (scale_over(cost.forward_time(&cross), total, groups.efficiency)
            * cross_layers)
            .max(1),
        backward_time: (scale_over(cost.backward_time(&cross), total, groups.efficiency)
            * cross_layers)
            .max(1),
        forward_flops: cross.forward_flops * cross_layers as f64,
        backward_flops: cross.backward_flops * cost.recompute_factor * cross_layers as f64,
        activation_mem: cost
            .memory_units(cross.activation_bytes * cross_layers / total as u64)
            .max(1),
        static_mem: cost
            .memory_units(cross.param_bytes * STATE_FACTOR * cross_layers / total as u64),
        output_bytes: cross.output_bytes,
        deps: vec![text_end, vision_end],
    });

    assemble(
        format!(
            "flava-k-shape-{total_gpus}gpu-{}",
            if inference { "inference" } else { "training" }
        ),
        s,
        capacity,
        stages,
        inference,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tessel_models::config::{gpt_config_for_gpus, mt5_config_for_gpus};

    #[test]
    fn synthetic_shapes_are_valid_for_various_device_counts() {
        for kind in ShapeKind::all() {
            for devices in [2usize, 4, 8] {
                let p = synthetic_placement(kind, devices).unwrap();
                assert!(p.validate().is_ok(), "{kind} on {devices} devices");
                assert!(p.num_blocks() >= 2 * devices, "{kind}");
                // Every training shape is memory neutral per micro-batch.
                for d in 0..devices {
                    assert_eq!(p.net_memory(d), 0, "{kind} device {d}");
                }
            }
        }
        assert!(synthetic_placement(ShapeKind::V, 1).is_err());
    }

    #[test]
    fn synthetic_shape_block_counts_match_their_structure() {
        let d = 4;
        assert_eq!(
            synthetic_placement(ShapeKind::V, d).unwrap().num_blocks(),
            2 * d
        );
        assert_eq!(
            synthetic_placement(ShapeKind::X, d).unwrap().num_blocks(),
            4 * d
        );
        assert_eq!(
            synthetic_placement(ShapeKind::M, d).unwrap().num_blocks(),
            2 * d + 2
        );
        assert_eq!(
            synthetic_placement(ShapeKind::K, d).unwrap().num_blocks(),
            2 * d + 2
        );
        assert_eq!(
            synthetic_placement(ShapeKind::NN, d).unwrap().num_blocks(),
            2 * d + 2
        );
    }

    #[test]
    fn m_and_nn_shapes_have_all_device_embedding_blocks() {
        for kind in [ShapeKind::M, ShapeKind::NN] {
            let p = synthetic_placement(kind, 4).unwrap();
            let all_device_blocks = p.blocks().iter().filter(|b| b.devices.len() == 4).count();
            assert_eq!(
                all_device_blocks, 2,
                "{kind} has embed fwd+bwd on all devices"
            );
        }
    }

    #[test]
    fn gpt_m_shape_balances_stage_loads() {
        let config = gpt_config_for_gpus(4).unwrap();
        let p = gpt_m_shape(&config, &CostModel::paper_default(), 4).unwrap();
        p.validate().unwrap();
        let loads: Vec<u64> = (0..p.num_devices()).map(|d| p.device_load(d)).collect();
        let max = *loads.iter().max().unwrap() as f64;
        let min = *loads.iter().min().unwrap() as f64;
        assert!(
            max / min < 1.6,
            "M-shape should balance device loads, got {loads:?}"
        );
    }

    #[test]
    fn gpt_v_baseline_is_imbalanced_compared_to_m_shape() {
        // The Fig. 2 motivation: with the embedding pinned to its own stage,
        // the compute-heavy stages are much slower than the embedding stage.
        let config = gpt_config_for_gpus(4).unwrap();
        let cm = CostModel::paper_default();
        let v = gpt_v_shape_baseline(&config, &cm, 4).unwrap();
        let m = gpt_m_shape(&config, &cm, 4).unwrap();
        let imbalance = |p: &PlacementSpec| {
            let loads: Vec<u64> = (0..p.num_devices())
                .map(|d| p.device_load(d))
                .filter(|&l| l > 0)
                .collect();
            *loads.iter().max().unwrap() as f64 / *loads.iter().min().unwrap() as f64
        };
        assert!(
            imbalance(&v) > 1.1 * imbalance(&m),
            "V-shape imbalance {} should exceed M-shape imbalance {}",
            imbalance(&v),
            imbalance(&m)
        );
        // The M-shape bottleneck stage is faster than the V-shape one.
        let bottleneck = |p: &PlacementSpec| {
            (0..p.num_devices())
                .map(|d| p.device_load(d))
                .max()
                .unwrap()
        };
        assert!(bottleneck(&m) < bottleneck(&v));
    }

    #[test]
    fn model_placements_scale_to_larger_gpu_counts() {
        let cm = CostModel::paper_default();
        for gpus in [4usize, 8, 16, 32] {
            let gpt = gpt_config_for_gpus(gpus).unwrap();
            let p = gpt_m_shape(&gpt, &cm, gpus).unwrap();
            assert!(p.num_devices() <= 4);
            p.validate().unwrap();
            let mt5 = mt5_config_for_gpus(gpus).unwrap();
            let p = mt5_nn_shape(&mt5, &cm, gpus).unwrap();
            p.validate().unwrap();
        }
    }

    #[test]
    fn flava_k_shape_has_parallel_branches_and_cross_stage() {
        let config = FlavaConfig::default();
        let cm = CostModel::paper_default();
        let train = flava_k_shape(&config, &cm, 4, false).unwrap();
        train.validate().unwrap();
        let inference = flava_k_shape(&config, &cm, 4, true).unwrap();
        inference.validate().unwrap();
        // Inference has only forward blocks; training doubles them.
        assert_eq!(train.num_blocks(), 2 * inference.num_blocks());
        // The first text and vision stages are independent (can run in
        // parallel on different devices).
        let first_text = inference.block(0);
        assert!(first_text.deps.is_empty());
        let cross = inference
            .blocks()
            .iter()
            .find(|b| b.name.starts_with("cross"))
            .unwrap();
        assert_eq!(cross.devices.len(), inference.num_devices());
    }

    #[test]
    fn mt5_nn_shape_keeps_encoder_and_decoder_on_disjoint_devices() {
        let config = mt5_config_for_gpus(4).unwrap();
        let p = mt5_nn_shape(&config, &CostModel::paper_default(), 4).unwrap();
        let enc_devices: Vec<usize> = p
            .blocks()
            .iter()
            .filter(|b| b.name.starts_with("enc"))
            .flat_map(|b| b.devices.clone())
            .collect();
        let dec_devices: Vec<usize> = p
            .blocks()
            .iter()
            .filter(|b| b.name.starts_with("dec"))
            .flat_map(|b| b.devices.clone())
            .collect();
        assert!(enc_devices.iter().all(|d| !dec_devices.contains(d)));
    }

    #[test]
    fn baseline_reports_oom_when_embedding_cannot_fit() {
        // An absurdly large vocabulary on 2 GPUs: the embedding alone
        // overflows every stage the baseline could give it.
        let mut config = gpt_config_for_gpus(4).unwrap();
        config.vocab_size = 10_000_000;
        let err = gpt_v_shape_baseline(&config, &CostModel::paper_default(), 2).unwrap_err();
        assert!(matches!(err, CoreError::PlacementOutOfMemory { .. }));
    }

    #[test]
    fn shape_kind_display_names() {
        assert_eq!(ShapeKind::V.to_string(), "V-Shape");
        assert_eq!(ShapeKind::NN.to_string(), "NN-Shape");
        assert_eq!(ShapeKind::all().len(), 5);
    }
}
