//! Piper-style dynamic-programming stage partitioner.
//!
//! Piper (Tarnawski et al., NeurIPS 2021) assigns layers to pipeline stages
//! combining data/tensor parallelism; the paper uses it to derive the
//! per-block device assignment underlying both the baselines and Tessel's
//! advanced placements. This module implements the part Tessel needs: split a
//! *linear* sequence of layers into `stages` contiguous groups minimising the
//! maximum per-stage time, subject to a per-stage memory budget.

use serde::{Deserialize, Serialize};

/// A layer as seen by the partitioner: its compute time and resident memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionItem {
    /// Compute time of the layer (forward + backward), in time units.
    pub time: u64,
    /// Resident memory of the layer (parameters and state), in memory units.
    pub memory: i64,
}

/// The result of partitioning: stage boundaries and the bottleneck time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PiperPartition {
    /// Half-open layer ranges, one per stage, covering the sequence in order.
    pub stages: Vec<(usize, usize)>,
    /// The maximum per-stage time — the pipeline bottleneck.
    pub bottleneck_time: u64,
}

impl PiperPartition {
    /// Per-stage total times.
    #[must_use]
    pub fn stage_times(&self, items: &[PartitionItem]) -> Vec<u64> {
        self.stages
            .iter()
            .map(|&(lo, hi)| items[lo..hi].iter().map(|i| i.time).sum())
            .collect()
    }

    /// Per-stage total memory.
    #[must_use]
    pub fn stage_memory(&self, items: &[PartitionItem]) -> Vec<i64> {
        self.stages
            .iter()
            .map(|&(lo, hi)| items[lo..hi].iter().map(|i| i.memory).sum())
            .collect()
    }

    /// Ratio between the slowest and the fastest stage — the imbalance metric
    /// behind Fig. 2 of the paper.
    #[must_use]
    pub fn imbalance(&self, items: &[PartitionItem]) -> f64 {
        let times = self.stage_times(items);
        let max = times.iter().copied().max().unwrap_or(0) as f64;
        let min = times.iter().copied().min().unwrap_or(0).max(1) as f64;
        max / min
    }
}

/// Splits `items` into `stages` contiguous groups minimising the maximum
/// per-stage time, subject to every stage's memory fitting in
/// `memory_budget` (when given).
///
/// Returns `None` when no partition satisfies the memory budget (e.g. a
/// single layer that does not fit anywhere) or when there are fewer layers
/// than stages.
#[must_use]
pub fn partition_layers(
    items: &[PartitionItem],
    stages: usize,
    memory_budget: Option<i64>,
) -> Option<PiperPartition> {
    let n = items.len();
    if stages == 0 || n < stages {
        return None;
    }
    let fits = |lo: usize, hi: usize| -> bool {
        match memory_budget {
            None => true,
            Some(budget) => items[lo..hi].iter().map(|i| i.memory).sum::<i64>() <= budget,
        }
    };
    let time = |lo: usize, hi: usize| -> u64 { items[lo..hi].iter().map(|i| i.time).sum() };

    // dp[s][i]: minimal bottleneck using s stages to cover the first i layers.
    const INF: u64 = u64::MAX;
    let mut dp = vec![vec![INF; n + 1]; stages + 1];
    let mut cut = vec![vec![0usize; n + 1]; stages + 1];
    dp[0][0] = 0;
    for s in 1..=stages {
        for i in 1..=n {
            for j in (s - 1)..i {
                if dp[s - 1][j] == INF || !fits(j, i) {
                    continue;
                }
                let candidate = dp[s - 1][j].max(time(j, i));
                if candidate < dp[s][i] {
                    dp[s][i] = candidate;
                    cut[s][i] = j;
                }
            }
        }
    }
    if dp[stages][n] == INF {
        return None;
    }
    let mut bounds = Vec::with_capacity(stages);
    let mut end = n;
    for s in (1..=stages).rev() {
        let start = cut[s][end];
        bounds.push((start, end));
        end = start;
    }
    bounds.reverse();
    Some(PiperPartition {
        stages: bounds,
        bottleneck_time: dp[stages][n],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(times: &[u64]) -> Vec<PartitionItem> {
        times
            .iter()
            .map(|&t| PartitionItem { time: t, memory: 1 })
            .collect()
    }

    #[test]
    fn balanced_partition_of_uniform_layers() {
        let layers = items(&[1; 8]);
        let partition = partition_layers(&layers, 4, None).unwrap();
        assert_eq!(partition.stages.len(), 4);
        assert_eq!(partition.bottleneck_time, 2);
        assert_eq!(partition.stage_times(&layers), vec![2, 2, 2, 2]);
        assert!((partition.imbalance(&layers) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_layer_forces_imbalance() {
        let layers = items(&[10, 1, 1, 1]);
        let partition = partition_layers(&layers, 2, None).unwrap();
        assert_eq!(partition.bottleneck_time, 10);
        assert!(partition.imbalance(&layers) > 3.0);
    }

    #[test]
    fn memory_budget_shifts_the_cut() {
        // Unconstrained, the best split keeps the two light layers together;
        // the memory budget forces the heavier cut instead.
        let layers = vec![
            PartitionItem { time: 1, memory: 2 },
            PartitionItem { time: 1, memory: 2 },
            PartitionItem { time: 5, memory: 1 },
        ];
        let unconstrained = partition_layers(&layers, 2, None).unwrap();
        assert_eq!(unconstrained.bottleneck_time, 5);
        let constrained = partition_layers(&layers, 2, Some(3)).unwrap();
        assert!(constrained.stage_memory(&layers).iter().all(|&m| m <= 3));
        assert_eq!(constrained.bottleneck_time, 6);
    }

    #[test]
    fn infeasible_budgets_return_none() {
        let layers = vec![PartitionItem { time: 1, memory: 5 }];
        assert!(partition_layers(&layers, 1, Some(4)).is_none());
        assert!(partition_layers(&layers, 2, None).is_none());
        assert!(partition_layers(&layers, 0, None).is_none());
    }

    #[test]
    fn stage_ranges_cover_the_sequence_exactly() {
        let layers = items(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let partition = partition_layers(&layers, 3, None).unwrap();
        let mut covered = 0;
        for &(lo, hi) in &partition.stages {
            assert_eq!(lo, covered);
            assert!(hi > lo);
            covered = hi;
        }
        assert_eq!(covered, layers.len());
    }
}
