//! Multi-daemon end-to-end test of the cluster tier, over real sockets:
//! with daemons A and B peered, a placement solved on A is returned by B as
//! a **remote cache hit** (identical schedule, translated into B's request
//! labeling, `tessel_cluster_remote_hits_total` incremented); a placement
//! solved on the non-owner is **replicated** to its owner; a restarted owner
//! **warms** its shard from the surviving peer; and killing a daemon
//! mid-fleet **degrades** the survivor to local solving with no failed
//! requests.
//!
//! Both listeners are bound (ephemeral ports) *before* either service is
//! constructed, so each daemon's `--peer` address is real from the start —
//! no port-guessing races.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tessel_core::ir::{BlockKind, PlacementSpec};
use tessel_service::cache::CacheParams;
use tessel_service::http::http_call;
use tessel_service::wire::{
    CacheExchange, ReplicationAck, SearchRequest, SearchResponse, WireSearchEntry,
};
use tessel_service::{
    ClusterConfig, HashRing, HttpServer, PeerConfig, ScheduleService, ServerConfig, ServiceConfig,
};

const VNODES: usize = 32;

fn v_shape(devices: usize) -> PlacementSpec {
    let mut b = PlacementSpec::builder(format!("v{devices}"), devices);
    b.set_memory_capacity(Some(devices as i64 + 1));
    let mut prev: Option<usize> = None;
    for d in 0..devices {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("f{d}"), BlockKind::Forward, [d], 1, 1, deps)
                .unwrap(),
        );
    }
    for d in (0..devices).rev() {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("b{d}"), BlockKind::Backward, [d], 2, -1, deps)
                .unwrap(),
        );
    }
    b.build().unwrap()
}

/// A cheap-to-solve two-device pipeline whose durations are scaled by `tag`,
/// so different tags give different canonical fingerprints — used to mint
/// placements owned by a chosen ring member.
fn chain_shape(tag: u64) -> PlacementSpec {
    let mut b = PlacementSpec::builder(format!("chain{tag}"), 2);
    b.set_memory_capacity(Some(3));
    let f0 = b
        .add_block("f0", BlockKind::Forward, [0], tag, 1, [])
        .unwrap();
    let f1 = b
        .add_block("f1", BlockKind::Forward, [1], tag, 1, [f0])
        .unwrap();
    let b1 = b
        .add_block("b1", BlockKind::Backward, [1], 2 * tag, -1, [f1])
        .unwrap();
    b.add_block("b0", BlockKind::Backward, [0], 2 * tag, -1, [b1])
        .unwrap();
    b.build().unwrap()
}

/// The first `chain_shape` tag (from `start`) whose fingerprint the ring
/// assigns to `owner`.
fn chain_owned_by(ring: &HashRing, owner: &str, start: u64) -> (u64, PlacementSpec) {
    for tag in start..start + 64 {
        let placement = chain_shape(tag);
        if ring.owner_of(placement.canonicalize().fingerprint) == owner {
            return (tag, placement);
        }
    }
    panic!(
        "no chain shape in {start}..{} is owned by {owner}",
        start + 64
    );
}

fn cluster_config(node_id: &str, peers: Vec<PeerConfig>) -> ClusterConfig {
    let mut cluster = ClusterConfig::new(node_id, peers);
    cluster.vnodes = VNODES;
    cluster.probe_interval = Duration::from_millis(200);
    cluster.connect_timeout = Duration::from_millis(300);
    cluster.peer_timeout = Duration::from_secs(5);
    cluster.circuit_failure_threshold = 2;
    cluster.circuit_cooldown = Duration::from_secs(5);
    cluster
}

fn start_node(
    node_id: &str,
    listener: TcpListener,
    peers: Vec<PeerConfig>,
) -> (HttpServer, Arc<ScheduleService>) {
    start_node_with(node_id, listener, peers, false)
}

fn start_node_with(
    node_id: &str,
    listener: TcpListener,
    peers: Vec<PeerConfig>,
    paranoid_fingerprints: bool,
) -> (HttpServer, Arc<ScheduleService>) {
    let service = Arc::new(
        ScheduleService::new(ServiceConfig {
            default_micro_batches: 4,
            default_max_repetend: 3,
            cluster: Some(cluster_config(node_id, peers)),
            paranoid_fingerprints,
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let server = HttpServer::serve_listener(
        service.clone(),
        listener,
        &ServerConfig {
            workers: 2,
            queue_depth: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, service)
}

fn post_search(addr: &str, placement: &PlacementSpec) -> (u16, SearchResponse) {
    let body = serde_json::to_string(&SearchRequest::for_placement(placement.clone())).unwrap();
    let (status, response) = http_call(addr, "POST", "/v1/search", Some(&body)).unwrap();
    assert_eq!(status, 200, "{response}");
    (status, serde_json::from_str(&response).unwrap())
}

fn metrics_text(addr: &str) -> String {
    let (status, body) = http_call(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    body
}

/// The value of a plain `name value` metric line.
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| line.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

fn wait_until(timeout: Duration, mut ready: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if ready() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn fleet_shares_one_logical_cache_and_degrades_without_failures() {
    // Bind both listeners first so each node can name the other's real
    // address in its peer config.
    let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
    let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr_a = listener_a.local_addr().unwrap().to_string();
    let addr_b = listener_b.local_addr().unwrap().to_string();

    // Choose node ids so the acceptance placement's OWNER runs on listener
    // A: "a placement solved on A is returned by B as a remote cache hit"
    // requires B's ring lookup to point at A.
    let placement = v_shape(3);
    let fingerprint = placement.canonicalize().fingerprint;
    let ring = HashRing::new(["alpha", "beta"], VNODES);
    let (id_a, id_b) = if ring.owner_of(fingerprint) == "alpha" {
        ("alpha", "beta")
    } else {
        ("beta", "alpha")
    };

    let (server_a, service_a) = start_node(
        id_a,
        listener_a,
        vec![PeerConfig {
            node_id: id_b.into(),
            addr: addr_b.clone(),
        }],
    );
    let (server_b, service_b) = start_node(
        id_b,
        listener_b,
        vec![PeerConfig {
            node_id: id_a.into(),
            addr: addr_a.clone(),
        }],
    );
    assert!(service_a.cluster().unwrap().owns(fingerprint));
    assert!(!service_b.cluster().unwrap().owns(fingerprint));

    // --- Remote cache hit -------------------------------------------------
    // Solve on A (the owner)...
    let (_, first) = post_search(&addr_a, &placement);
    assert!(!first.cached, "first solve is a miss");
    // ...then ask B for a device-relabeled variant of the same placement. B
    // misses locally, fetches from A, and must return the identical schedule
    // translated into the request's (permuted) labeling.
    let order: Vec<usize> = (0..placement.num_blocks()).collect();
    let permuted = placement.permuted(&[2, 0, 1], &order).unwrap();
    let (_, second) = post_search(&addr_b, &permuted);
    assert!(second.cached, "remote hit must report cached");
    assert_eq!(second.fingerprint, first.fingerprint);
    assert_eq!(second.period, first.period);
    assert_eq!(second.bubble_rate, first.bubble_rate);
    assert_eq!(
        second.schedule.num_micro_batches(),
        first.schedule.num_micro_batches()
    );
    // Correctly translated: the schedule is valid in the REQUEST's labeling.
    second.schedule.validate(&permuted).unwrap();
    first.schedule.validate(&placement).unwrap();

    // The wire payload is SLIM: the owner's `GET /v1/cache/{fp}` body — the
    // exact bytes the remote hit consumed — carries no canonical placement
    // (no key, no block lists), only the canonical-labeled schedule.
    let (status, raw) =
        http_call(&addr_a, "GET", &format!("/v1/cache/{fingerprint}"), None).unwrap();
    assert_eq!(status, 200);
    assert!(
        !raw.contains("canonical_placement"),
        "remote hits must not ship the canonical placement: {raw}"
    );
    assert!(
        !raw.contains("\"deps\""),
        "remote hits must not ship placement blocks: {raw}"
    );

    let metrics_b = metrics_text(&addr_b);
    assert_eq!(
        metric_value(&metrics_b, "tessel_cluster_remote_hits_total"),
        1
    );
    assert_eq!(metric_value(&metrics_b, "tessel_cache_misses_total"), 0);
    let metrics_a = metrics_text(&addr_a);
    assert_eq!(
        metric_value(&metrics_a, "tessel_cluster_remote_hits_total"),
        0
    );

    // B adopted the entry: the next identical request is a LOCAL hit.
    let (_, third) = post_search(&addr_b, &permuted);
    assert!(third.cached);
    assert_eq!(
        metric_value(&metrics_text(&addr_b), "tessel_cluster_remote_hits_total"),
        1,
        "local hit must not consult the owner again"
    );

    // --- Replication to the owner ----------------------------------------
    // Solve a placement OWNED BY A on B: B solves it locally (A has nothing
    // cached for it) and replicates the entry to A asynchronously.
    let ring_b = HashRing::new([id_a, id_b], VNODES);
    let (_, chain_a) = chain_owned_by(&ring_b, id_a, 1);
    let chain_a_fp = chain_a.canonicalize().fingerprint;
    let (_, solved) = post_search(&addr_b, &chain_a);
    assert!(!solved.cached);
    assert!(
        wait_until(Duration::from_secs(10), || {
            let (status, _) =
                http_call(&addr_a, "GET", &format!("/v1/cache/{chain_a_fp}"), None).unwrap();
            status == 200
        }),
        "the owner never received the replicated entry"
    );
    let metrics_a = metrics_text(&addr_a);
    assert_eq!(
        metric_value(&metrics_a, "tessel_cluster_replications_received_total"),
        1
    );
    let metrics_b = metrics_text(&addr_b);
    assert_eq!(
        metric_value(&metrics_b, "tessel_cluster_replications_sent_total"),
        1
    );
    assert!(metric_value(&metrics_b, "tessel_cluster_remote_misses_total") >= 1);

    // The cluster status endpoint sees a healthy fleet and resolves owners.
    let (status, cluster_doc) = http_call(
        &addr_b,
        "GET",
        &format!("/v1/cluster?fp={chain_a_fp}"),
        None,
    )
    .unwrap();
    assert_eq!(status, 200);
    assert!(
        cluster_doc.contains(&format!("\"node\":\"{id_a}\"")),
        "{cluster_doc}"
    );
    assert!(cluster_doc.contains("\"is_local\":false"), "{cluster_doc}");

    // --- Warm-up after an owner restart -----------------------------------
    // Kill A, restart it empty on the same address, and warm it from B. B
    // holds two entries owned by A (the v-shape it adopted on the remote
    // hit, and the replicated chain), so the fresh A recovers both without
    // solving anything.
    server_a.shutdown();
    drop(service_a);
    let listener_a2 = TcpListener::bind(&addr_a).expect("rebind the owner's address");
    let (server_a2, service_a2) = start_node(
        id_a,
        listener_a2,
        vec![PeerConfig {
            node_id: id_b.into(),
            addr: addr_b.clone(),
        }],
    );
    let warmed = service_a2.warm_cache_from_peers();
    assert_eq!(warmed, 2, "restarted owner warms its shard from the peer");
    assert_eq!(service_a2.cache_entries().len(), 2);
    let metrics_a2 = metrics_text(&addr_a);
    assert_eq!(
        metric_value(&metrics_a2, "tessel_cluster_warmup_entries_total"),
        2
    );
    // The warmed entry serves a cache hit without a solve.
    let (_, warmed_hit) = post_search(&addr_a, &placement);
    assert!(warmed_hit.cached);
    assert_eq!(warmed_hit.period, first.period);

    // --- Degrade when a peer dies mid-fleet --------------------------------
    // Kill A for good. B must keep answering placements A owns by solving
    // locally: slower, never a failed request.
    server_a2.shutdown();
    drop(service_a2);
    let (_, chain_dead) = chain_owned_by(&ring_b, id_a, 100);
    let (_, degraded) = post_search(&addr_b, &chain_dead);
    assert!(!degraded.cached, "degraded request solves locally");
    let metrics_b = metrics_text(&addr_b);
    assert!(metric_value(&metrics_b, "tessel_cluster_remote_errors_total") >= 1);
    // Another A-owned placement also succeeds (by now the breaker may be
    // open, which must look exactly the same to the client).
    let (_, degraded_again) = post_search(&addr_b, &chain_owned_by(&ring_b, id_a, 200).1);
    assert!(!degraded_again.cached);
    // The health prober notices the dead peer and opens its circuit.
    assert!(
        wait_until(Duration::from_secs(10), || {
            let (_, doc) = http_call(&addr_b, "GET", "/v1/cluster", None).unwrap();
            doc.contains("\"circuit_open\":true")
        }),
        "the dead peer's circuit never opened"
    );

    server_b.shutdown();
}

/// PUTs one exchange to `addr` and returns the owner's ack (the route
/// answers 200 when anything was accepted, 400 with the same ack body when
/// every entry was rejected).
fn put_replication(addr: &str, exchange: &CacheExchange) -> ReplicationAck {
    let body = serde_json::to_string(exchange).unwrap();
    let path = format!("/v1/cache/{}", exchange.fingerprint);
    let (status, response) = http_call(addr, "PUT", &path, Some(&body)).unwrap();
    assert!(status == 200 || status == 400, "{status}: {response}");
    serde_json::from_str(&response).unwrap()
}

/// A full wire entry built from a search of `canon_placement` ITSELF — the
/// request labeling then *is* canonical labeling, so the schedule slots
/// straight into a replication payload.
fn full_entry_from_search(
    fingerprint: tessel_core::fingerprint::Fingerprint,
    canon_placement: &PlacementSpec,
    response: &SearchResponse,
) -> WireSearchEntry {
    WireSearchEntry {
        fingerprint,
        params: CacheParams {
            num_micro_batches: response.num_micro_batches,
            max_repetend_micro_batches: 3,
        },
        canonical_placement: Some(canon_placement.clone()),
        schedule: response.schedule.clone(),
        period: response.period,
        repetend_micro_batches: response.repetend_micro_batches,
        bubble_rate: response.bubble_rate,
        utilization: response.utilization.clone(),
        solver: tessel_solver::SolverTotals::default(),
        search_millis: response.search_millis,
    }
}

/// With `--paranoid-fingerprints` on every node the fleet still round-trips:
/// remote hits, replication and warm-up all succeed, and the paranoia
/// counter (lookup re-comparison) stays at zero — the exact labeling gives
/// it nothing to catch. A poisoned replication payload (a *consistent*
/// entry whose placement simply is not the claimed fingerprint's placement)
/// passes every structural check and is caught by the unconditional wire
/// re-canonicalization, which runs in every mode.
#[test]
fn paranoid_mode_round_trips_and_catches_mislabeled_replication() {
    let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
    let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr_a = listener_a.local_addr().unwrap().to_string();
    let addr_b = listener_b.local_addr().unwrap().to_string();
    let placement = v_shape(3);
    let fingerprint = placement.canonicalize().fingerprint;
    let ring = HashRing::new(["alpha", "beta"], VNODES);
    let (id_a, id_b) = if ring.owner_of(fingerprint) == "alpha" {
        ("alpha", "beta")
    } else {
        ("beta", "alpha")
    };
    let (server_a, service_a) = start_node_with(
        id_a,
        listener_a,
        vec![PeerConfig {
            node_id: id_b.into(),
            addr: addr_b.clone(),
        }],
        true,
    );
    let (server_b, _service_b) = start_node_with(
        id_b,
        listener_b,
        vec![PeerConfig {
            node_id: id_a.into(),
            addr: addr_a.clone(),
        }],
        true,
    );
    assert!(service_a.cluster().unwrap().owns(fingerprint));

    // Remote hit: solve on the owner, fetch a relabeled variant via the peer.
    let (_, first) = post_search(&addr_a, &placement);
    assert!(!first.cached);
    let order: Vec<usize> = (0..placement.num_blocks()).collect();
    let permuted = placement.permuted(&[2, 0, 1], &order).unwrap();
    let (_, second) = post_search(&addr_b, &permuted);
    assert!(second.cached, "paranoid remote hit must still hit");
    assert_eq!(second.period, first.period);
    second.schedule.validate(&permuted).unwrap();

    // Replication: solve an A-owned placement on B, owner adopts it.
    let (_, chain_a) = chain_owned_by(&HashRing::new([id_a, id_b], VNODES), id_a, 1);
    let chain_a_fp = chain_a.canonicalize().fingerprint;
    post_search(&addr_b, &chain_a);
    assert!(
        wait_until(Duration::from_secs(10), || {
            let (status, _) =
                http_call(&addr_a, "GET", &format!("/v1/cache/{chain_a_fp}"), None).unwrap();
            status == 200
        }),
        "paranoid owner never accepted the replicated entry"
    );

    // A local re-request of the adopted entries exercises the paranoid
    // lookup path (canonical-form re-comparison) — still a hit.
    let (_, again) = post_search(&addr_b, &permuted);
    assert!(again.cached);

    for addr in [&addr_a, &addr_b] {
        let text = metrics_text(addr);
        assert_eq!(
            metric_value(&text, "tessel_fingerprint_paranoia_mismatches_total"),
            0,
            "honest traffic must not trip the paranoia counter"
        );
        assert_eq!(
            metric_value(&text, "tessel_fingerprint_wire_mismatches_total"),
            0,
            "honest traffic must not trip the wire-mismatch counter"
        );
    }

    // Poison: claim fingerprint F (owned by A) for an entry whose placement
    // and schedule really belong to a DIFFERENT chain G. Every structural
    // check passes — only re-canonicalization exposes the lie.
    let ring_ab = HashRing::new([id_a, id_b], VNODES);
    let (tag_f, chain_f) = chain_owned_by(&ring_ab, id_a, 50);
    let fp_f = chain_f.canonicalize().fingerprint;
    let canon_g = chain_owned_by(&ring_ab, id_a, tag_f + 1).1.canonicalize();
    let (_, solved_g) = post_search(&addr_b, &canon_g.placement);
    let poisoned = full_entry_from_search(fp_f, &canon_g.placement, &solved_g);
    let ack = put_replication(
        &addr_a,
        &CacheExchange {
            fingerprint: fp_f,
            entries: vec![poisoned],
        },
    );
    assert_eq!(
        (ack.accepted, ack.rejected),
        (0, 1),
        "poisoned entry adopted"
    );
    assert_eq!(
        metric_value(
            &metrics_text(&addr_a),
            "tessel_fingerprint_wire_mismatches_total"
        ),
        1,
        "the catch must be visible in the wire-mismatch metric"
    );

    server_a.shutdown();
    server_b.shutdown();
}

/// Corrupted replication payloads are rejected by structural validation in
/// DEFAULT mode (no paranoia needed): a slim entry with no placement, an
/// entry whose inner fingerprint contradicts the exchange, and a tampered
/// schedule that does not validate against the shipped placement.
#[test]
fn corrupted_replication_payloads_are_rejected() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // A single-member ring owns every fingerprint, so ownership never gets
    // in the way of the corruption checks.
    let (server, _service) = start_node("solo", listener, Vec::new());

    let canon = chain_shape(7).canonicalize();
    let fp = canon.fingerprint;
    let (_, solved) = post_search(&addr, &canon.placement);
    let valid = full_entry_from_search(fp, &canon.placement, &solved);

    // Sanity: the hand-built full entry passes the same validation gate.
    let ack = put_replication(
        &addr,
        &CacheExchange {
            fingerprint: fp,
            entries: vec![valid.clone()],
        },
    );
    assert_eq!((ack.accepted, ack.rejected), (1, 0), "valid entry rejected");

    // Corruption 1: a slim entry (placement stripped) on the PUT path — the
    // owner has nothing to validate the schedule against, so it must reject.
    let mut slim = valid.clone();
    slim.canonical_placement = None;
    // Corruption 2: the inner fingerprint contradicts the exchange header.
    let mut mislabeled = valid.clone();
    mislabeled.fingerprint = tessel_core::fingerprint::Fingerprint(fp.0 ^ 1);
    // Corruption 3: a tampered schedule — durations from a different chain —
    // that no longer validates against the shipped placement.
    let other = chain_shape(8).canonicalize();
    let (_, other_solved) = post_search(&addr, &other.placement);
    let mut tampered = valid.clone();
    tampered.schedule = other_solved.schedule.clone();

    for (what, entry) in [
        ("slim entry", slim),
        ("mislabeled fingerprint", mislabeled),
        ("tampered schedule", tampered),
    ] {
        let ack = put_replication(
            &addr,
            &CacheExchange {
                fingerprint: fp,
                entries: vec![entry],
            },
        );
        assert_eq!(
            (ack.accepted, ack.rejected),
            (0, 1),
            "{what} must be rejected"
        );
    }
    // Structural rejections trip neither re-canonicalization counter: the
    // three payloads above never reach the fingerprint re-verification.
    let text = metrics_text(&addr);
    assert_eq!(
        metric_value(&text, "tessel_fingerprint_paranoia_mismatches_total"),
        0
    );
    assert_eq!(
        metric_value(&text, "tessel_fingerprint_wire_mismatches_total"),
        0
    );

    // Corruption 4 — the cache-poisoning regression: a fully *consistent*
    // entry (chain-8's placement with chain-8's valid schedule) claiming
    // chain-7's fingerprint. Every structural check passes; in DEFAULT mode
    // the unconditional re-canonicalization must still reject it, or a later
    // request for chain-7 would be served chain-8's schedule.
    let poisoned = full_entry_from_search(fp, &other.placement, &other_solved);
    let ack = put_replication(
        &addr,
        &CacheExchange {
            fingerprint: fp,
            entries: vec![poisoned],
        },
    );
    assert_eq!(
        (ack.accepted, ack.rejected),
        (0, 1),
        "consistent-but-mislabeled entry must be rejected in default mode"
    );
    let text = metrics_text(&addr);
    assert_eq!(
        metric_value(&text, "tessel_fingerprint_wire_mismatches_total"),
        1,
        "the catch must be visible in the wire-mismatch metric"
    );
    assert_eq!(
        metric_value(&text, "tessel_fingerprint_paranoia_mismatches_total"),
        0,
        "the lookup paranoia counter is not involved on the wire path"
    );
    // The poison left no trace in the cache: chain-7's fingerprint still
    // serves chain-7's own schedule.
    let (_, again) = post_search(&addr, &canon.placement);
    assert!(again.cached, "the real entry must still be served");
    again.schedule.validate(&canon.placement).unwrap();

    server.shutdown();
}
