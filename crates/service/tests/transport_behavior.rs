//! Socket-level tests of the readiness-based transport: keep-alive reuse
//! (two sequential search requests over one persisted TCP connection),
//! pipelined requests, idle-timeout closes, slow-loris isolation,
//! deadline-aware admission control (shedding, per-client fairness) and
//! anytime incumbent streaming.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tessel_core::ir::{BlockKind, PlacementSpec};
use tessel_placement::shapes::{synthetic_placement, ShapeKind};
use tessel_service::http::{http_call, http_call_streaming};
use tessel_service::wire::{SearchRequest, StreamEvent};
use tessel_service::{HttpClient, HttpServer, ScheduleService, ServerConfig, ServiceConfig};

fn v_shape(devices: usize) -> PlacementSpec {
    let mut b = PlacementSpec::builder(format!("v{devices}"), devices);
    b.set_memory_capacity(Some(devices as i64 + 1));
    let mut prev: Option<usize> = None;
    for d in 0..devices {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("f{d}"), BlockKind::Forward, [d], 1, 1, deps)
                .unwrap(),
        );
    }
    for d in (0..devices).rev() {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("b{d}"), BlockKind::Backward, [d], 2, -1, deps)
                .unwrap(),
        );
    }
    b.build().unwrap()
}

fn start_server(server_config: ServerConfig) -> (HttpServer, String) {
    let service = ScheduleService::new(ServiceConfig {
        default_micro_batches: 4,
        default_max_repetend: 3,
        ..ServiceConfig::default()
    })
    .unwrap();
    let server = HttpServer::serve(Arc::new(service), &server_config).unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn ephemeral_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_depth: 16,
        ..ServerConfig::default()
    }
}

/// Reads exactly one HTTP response (head + `Content-Length` body) without
/// touching bytes of any later response on the same connection.
fn read_one_response(stream: &mut TcpStream) -> (u16, String) {
    let (status, _head, body) = read_one_response_with_head(stream);
    (status, body)
}

/// [`read_one_response`], also returning the raw response head for tests
/// that assert on headers.
fn read_one_response_with_head(stream: &mut TcpStream) -> (u16, String, String) {
    let mut buffer: Vec<u8> = Vec::new();
    let mut byte = [0u8; 1];
    while !buffer.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("read response head");
        assert!(n > 0, "connection closed mid-head: {buffer:?}");
        buffer.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&buffer).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("Content-Length header");
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("read response body");
    (status, head, String::from_utf8(body).expect("UTF-8 body"))
}

fn search_body() -> String {
    serde_json::to_string(&SearchRequest::for_placement(v_shape(2))).unwrap()
}

fn post_search_bytes(body: &str) -> Vec<u8> {
    format!(
        "POST /v1/search HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Acceptance scenario: two sequential search requests are served over a
/// single persisted TCP connection, with the second hitting the cache and
/// the keep-alive reuse counter incrementing.
#[test]
fn keep_alive_serves_two_searches_on_one_connection() {
    let (server, addr) = start_server(ephemeral_config());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = search_body();

    stream.write_all(&post_search_bytes(&body)).unwrap();
    let (status, first) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{first}");
    assert!(first.contains("\"cached\":false"), "{first}");

    // Same socket, second request: the server must still be listening on it.
    stream.write_all(&post_search_bytes(&body)).unwrap();
    let (status, second) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{second}");
    assert!(second.contains("\"cached\":true"), "{second}");

    let transport = server.transport_snapshot();
    assert_eq!(transport.connections_accepted, 1, "{transport:?}");
    assert!(transport.keepalive_reuses >= 1, "{transport:?}");

    // The reuse is also visible on the Prometheus endpoint.
    let (status, metrics) = http_call(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tessel_http_keepalive_reuses_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("tessel_http_connections_open"),
        "{metrics}"
    );

    drop(stream);
    server.shutdown();
}

/// Two requests written back-to-back before any response is read must both
/// be answered, in request order.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let (server, addr) = start_server(ephemeral_config());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let pipelined = b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n\
                      GET /v1/cache HTTP/1.1\r\nHost: test\r\n\r\n";
    stream.write_all(pipelined).unwrap();

    let (status, first) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert!(first.contains("ok"), "healthz must answer first: {first}");
    let (status, second) = read_one_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(second, "[]", "empty cache listing must answer second");

    drop(stream);
    server.shutdown();
}

/// A connection with no request in flight is closed once the idle timeout
/// passes.
#[test]
fn idle_connections_are_closed_by_the_timeout_sweep() {
    let (server, addr) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        ..ephemeral_config()
    });

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Send nothing. The sweep must close the connection: read observes EOF.
    let started = Instant::now();
    let mut sink = [0u8; 16];
    let n = stream.read(&mut sink).expect("read until server closes");
    assert_eq!(n, 0, "expected EOF from the idle-timeout close");
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "idle close took {:?}",
        started.elapsed()
    );
    assert!(server.transport_snapshot().idle_closed >= 1);

    server.shutdown();
}

/// A slow-loris peer that trickles a partial request forever must not block
/// other clients: the event loop keeps serving while the partial connection
/// just sits in its read buffer.
#[test]
fn slow_loris_does_not_block_other_clients() {
    let (server, addr) = start_server(ServerConfig {
        workers: 1, // even a single worker must stay reachable
        ..ephemeral_config()
    });

    let mut loris = TcpStream::connect(&addr).unwrap();
    loris.write_all(b"POST /v1/search HTT").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    loris.write_all(b"P/1.1\r\nContent-").unwrap(); // still no full head

    // A well-behaved client gets served while the loris holds its socket.
    let mut client = HttpClient::new(&addr).unwrap();
    let started = Instant::now();
    let (status, body) = client
        .call("POST", "/v1/search", Some(&search_body()))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "search blocked behind the loris for {:?}",
        started.elapsed()
    );

    // The loris never completed a request, so nothing was dispatched for it.
    let transport = server.transport_snapshot();
    assert!(transport.connections_accepted >= 2, "{transport:?}");

    drop(loris);
    server.shutdown();
}

/// A peer that half-closes (FIN) right after sending its request must still
/// receive the response, after which the server closes the connection —
/// without the event loop busy-spinning on the persistent half-close
/// readiness while the search runs.
#[test]
fn half_closed_peer_still_receives_its_response() {
    let (server, addr) = start_server(ephemeral_config());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(&post_search_bytes(&search_body()))
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    let (status, body) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"period\""), "{body}");

    // With the peer half closed there is nothing more to serve: EOF.
    let mut sink = [0u8; 8];
    let n = stream.read(&mut sink).expect("read after response");
    assert_eq!(n, 0, "server should close after responding to a FIN'd peer");

    server.shutdown();
}

/// A burst pipelined past `max_pipelined` must still be served completely:
/// once completions free capacity, the requests already buffered in user
/// space are parsed even though no new socket data arrives.
#[test]
fn bursts_beyond_the_pipelining_cap_are_fully_served() {
    let (server, addr) = start_server(ServerConfig {
        max_pipelined: 2,
        ..ephemeral_config()
    });

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut burst = Vec::new();
    for _ in 0..5 {
        burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n");
    }
    stream.write_all(&burst).unwrap();
    // Then silence: every response beyond the cap must still arrive.
    for i in 0..5 {
        let (status, body) = read_one_response(&mut stream);
        assert_eq!(status, 200, "response {i}: {body}");
        assert!(body.contains("ok"), "response {i}: {body}");
    }

    drop(stream);
    server.shutdown();
}

/// A slow-loris peer that keeps *trickling* bytes of an incomplete request
/// is still reaped: only completed requests and response writes count as
/// activity for the idle sweep.
#[test]
fn trickling_slow_loris_is_reaped_by_the_idle_sweep() {
    let (server, addr) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(300),
        ..ephemeral_config()
    });

    let mut writer = TcpStream::connect(&addr).unwrap();
    let mut reader = writer.try_clone().unwrap();
    reader
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let trickler = std::thread::spawn(move || {
        // One header byte every 100 ms, forever under the old accounting —
        // writes start failing once the server closes the connection.
        for chunk in b"GET /healthz HTT".iter().cycle().take(60) {
            if writer.write_all(std::slice::from_ref(chunk)).is_err() {
                return true; // server hung up on us: expected
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        false
    });

    let started = Instant::now();
    let mut sink = [0u8; 16];
    let n = reader.read(&mut sink).expect("read until server closes");
    assert_eq!(n, 0, "expected EOF from the idle sweep");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "trickling loris survived {:?}",
        started.elapsed()
    );
    assert!(
        trickler.join().unwrap(),
        "the trickler should observe the close"
    );
    assert!(server.transport_snapshot().idle_closed >= 1);

    server.shutdown();
}

/// A `Transfer-Encoding: chunked` search request — split across several
/// writes, with a chunk extension and a trailer — is decoded by the
/// connection state machine and served exactly like a `Content-Length`
/// request, on a connection that stays keep-alive.
#[test]
fn chunked_request_bodies_are_decoded() {
    let (server, addr) = start_server(ephemeral_config());

    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = search_body();
    let (head, tail) = body.split_at(body.len() / 2);
    stream
        .write_all(b"POST /v1/search HTTP/1.1\r\nHost: test\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    // First chunk (with an extension the server must ignore), trickled.
    stream
        .write_all(format!("{:x};note=head\r\n{head}\r\n", head.len()).as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    stream
        .write_all(format!("{:x}\r\n{tail}\r\n", tail.len()).as_bytes())
        .unwrap();
    // Last chunk plus a trailer field.
    stream
        .write_all(b"0\r\nX-Checksum: ignored\r\n\r\n")
        .unwrap();

    let (status, response) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"period\""), "{response}");

    // The connection survived (chunked framing consumed exactly its bytes):
    // a second, Content-Length request on the same socket still works.
    stream.write_all(&post_search_bytes(&body)).unwrap();
    let (status, second) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{second}");
    assert!(second.contains("\"cached\":true"), "{second}");

    drop(stream);
    server.shutdown();
}

/// Connections over the per-IP cap are rejected at accept and counted in
/// `tessel_http_rejected_per_ip_total`; closing one readmits the IP.
#[test]
fn per_ip_accept_cap_rejects_and_readmits() {
    let (server, addr) = start_server(ServerConfig {
        max_conns_per_ip: 2,
        ..ephemeral_config()
    });

    // Two connections from 127.0.0.1 are fine and stay usable.
    let mut first = TcpStream::connect(&addr).unwrap();
    let mut second = TcpStream::connect(&addr).unwrap();
    for stream in [&mut first, &mut second] {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .unwrap();
        let (status, _) = read_one_response(stream);
        assert_eq!(status, 200);
    }

    // The third is over the cap: accepted by the kernel, then immediately
    // closed by the event loop — the client observes EOF (or a reset), never
    // a response.
    let mut third = TcpStream::connect(&addr).unwrap();
    third
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    third
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
        .unwrap();
    let mut sink = [0u8; 16];
    // An Err here (ECONNRESET) is an equally valid rejection.
    if let Ok(n) = third.read(&mut sink) {
        assert_eq!(n, 0, "over-cap connection must not be served");
    }
    assert!(
        wait_until_rejected(&server, 1),
        "rejection counter never moved: {:?}",
        server.transport_snapshot()
    );

    // Closing one admitted connection frees a slot for the same IP.
    drop(first);
    let fourth_ok = (0..100).any(|_| {
        std::thread::sleep(Duration::from_millis(20));
        let Ok(mut fourth) = TcpStream::connect(&addr) else {
            return false;
        };
        fourth
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        if fourth
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .is_err()
        {
            return false;
        }
        let mut probe = [0u8; 1];
        matches!(fourth.read(&mut probe), Ok(1))
    });
    assert!(fourth_ok, "the IP was never readmitted after a close");

    // The counter renders on /metrics (over one of the admitted slots).
    drop(second);
    std::thread::sleep(Duration::from_millis(50));
    let (status, metrics) = http_call(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tessel_http_rejected_per_ip_total"),
        "{metrics}"
    );

    server.shutdown();
}

fn wait_until_rejected(server: &HttpServer, at_least: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if server.transport_snapshot().rejected_per_ip >= at_least {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// An admission-test daemon: one worker, a small queue, and a
/// single-threaded solver so one hard request occupies the worker for a
/// predictable window while followers pile up in the admission queue.
fn start_admission_server(queue_depth: usize) -> (HttpServer, String) {
    let service = ScheduleService::new(ServiceConfig {
        default_micro_batches: 4,
        default_max_repetend: 3,
        portfolio_threads: 1,
        solver_threads: 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let server = HttpServer::serve(
        Arc::new(service),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// A search the single worker chews on for ~2.5 s: the 8-device X-shape
/// portfolio explores for tens of seconds single-threaded, so the request
/// deadline is what ends it — a worker that is busy for a predictable
/// window, then frees up.
fn occupier_body() -> String {
    let placement = synthetic_placement(ShapeKind::X, 8).expect("placement");
    let mut request = SearchRequest::for_placement(placement);
    request.num_micro_batches = Some(8);
    request.max_repetend_micro_batches = Some(4);
    request.solver_threads = Some(1);
    request.deadline_ms = Some(2500);
    serde_json::to_string(&request).unwrap()
}

/// A fast 2-device search carrying the given admission hints.
fn hinted_search_body(deadline_ms: Option<u64>, priority: Option<i64>) -> String {
    let mut request = SearchRequest::for_placement(v_shape(2));
    request.deadline_ms = deadline_ms;
    request.priority = priority;
    serde_json::to_string(&request).unwrap()
}

/// Connects to the server with the client socket bound to a chosen loopback
/// source address (any 127.0.0.0/8 address is local on Linux), so the
/// per-client admission fairness — keyed on the peer IP — sees two distinct
/// clients from one test process. `std::net` cannot bind before connecting,
/// so this declares the C-library calls it needs, mirroring the transport's
/// own `sys` shim.
mod src_bind {
    use std::io;
    use std::net::TcpStream;
    use std::os::fd::FromRawFd;
    use std::os::raw::c_int;

    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn bind(fd: c_int, addr: *const SockaddrIn, len: u32) -> c_int;
        fn connect(fd: c_int, addr: *const SockaddrIn, len: u32) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    const AF_INET: u16 = 2;
    const SOCK_STREAM: c_int = 1;

    fn sockaddr(ip: [u8; 4], port: u16) -> SockaddrIn {
        SockaddrIn {
            sin_family: AF_INET,
            sin_port: port.to_be(),
            sin_addr: u32::from_be_bytes(ip).to_be(),
            sin_zero: [0; 8],
        }
    }

    pub fn connect_from(src: [u8; 4], dst: [u8; 4], port: u16) -> io::Result<TcpStream> {
        let len = u32::try_from(std::mem::size_of::<SockaddrIn>()).unwrap();
        // SAFETY: plain C socket calls on a fd this function owns until the
        // TcpStream takes it over; the sockaddr pointers outlive each call.
        unsafe {
            let fd = socket(c_int::from(AF_INET), SOCK_STREAM, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let src = sockaddr(src, 0);
            if bind(fd, &src, len) < 0 {
                let err = io::Error::last_os_error();
                close(fd);
                return Err(err);
            }
            let dst = sockaddr(dst, port);
            if connect(fd, &dst, len) < 0 {
                let err = io::Error::last_os_error();
                close(fd);
                return Err(err);
            }
            Ok(TcpStream::from_raw_fd(fd))
        }
    }
}

/// Under overload the admission queue sheds the least valuable *waiting*
/// request — here the latest-deadline one — with `429` + `Retry-After`,
/// while the earlier-deadline requests already queued complete normally.
#[test]
fn saturated_queue_sheds_the_latest_deadline_request() {
    let (server, addr) = start_admission_server(2);

    // Occupy the single worker for ~2.5 s.
    let mut occupier = TcpStream::connect(&addr).unwrap();
    occupier
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    occupier
        .write_all(&post_search_bytes(&occupier_body()))
        .unwrap();
    // Let the worker pop it, leaving the queue empty.
    std::thread::sleep(Duration::from_millis(300));

    // Two earlier-deadline requests fill the queue.
    let mut earlier = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(&post_search_bytes(&hinted_search_body(Some(15_000), None)))
            .unwrap();
        earlier.push(stream);
    }
    std::thread::sleep(Duration::from_millis(100));

    // The queue is full: a latest-deadline newcomer is the least valuable
    // waiting request, so it is the one shed — immediately, with a hint to
    // come back.
    let mut victim = TcpStream::connect(&addr).unwrap();
    victim
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    victim
        .write_all(&post_search_bytes(&hinted_search_body(Some(60_000), None)))
        .unwrap();
    let (status, head, body) = read_one_response_with_head(&mut victim);
    assert_eq!(status, 429, "{body}");
    assert!(head.to_ascii_lowercase().contains("retry-after"), "{head}");
    assert!(body.contains("shed"), "{body}");

    // The earlier-deadline requests were untouched and complete.
    for stream in &mut earlier {
        let (status, body) = read_one_response(stream);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"period\""), "{body}");
    }
    // The occupier comes back too (a deadline timeout, not a shed).
    let (status, body) = read_one_response(&mut occupier);
    assert_ne!(status, 429, "{body}");

    let (status, metrics) = http_call(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tessel_admission_shed_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("tessel_admission_wait_seconds"),
        "{metrics}"
    );

    server.shutdown();
}

/// A greedy client cannot squeeze a polite one out of a saturated queue: the
/// shed victim comes from the client holding the most queue slots, even
/// though the polite client's no-deadline request would be the least
/// valuable by deadline alone.
#[test]
fn greedy_client_is_shed_before_a_polite_one() {
    let (server, addr) = start_admission_server(4);
    let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();

    let mut occupier = TcpStream::connect(&addr).unwrap();
    occupier
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    occupier
        .write_all(&post_search_bytes(&occupier_body()))
        .unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Three greedy requests (from 127.0.0.1) wait with tight deadlines …
    let mut greedy = Vec::new();
    for _ in 0..3 {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(&post_search_bytes(&hinted_search_body(Some(30_000), None)))
            .unwrap();
        greedy.push(stream);
    }
    // … and one polite request (from 127.0.0.2) waits with no deadline.
    let mut polite = src_bind::connect_from([127, 0, 0, 2], [127, 0, 0, 1], port).unwrap();
    polite
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    polite
        .write_all(&post_search_bytes(&hinted_search_body(None, None)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // A fourth greedy request overflows the queue. The victim must come out
    // of the greedy client's allocation, not the polite client's.
    let mut newcomer = TcpStream::connect(&addr).unwrap();
    newcomer
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    newcomer
        .write_all(&post_search_bytes(&hinted_search_body(Some(30_000), None)))
        .unwrap();
    greedy.push(newcomer);

    let (status, body) = read_one_response(&mut polite);
    assert_eq!(
        status, 200,
        "the polite client's request must survive: {body}"
    );

    let mut outcomes = Vec::new();
    for stream in &mut greedy {
        let (status, _body) = read_one_response(stream);
        outcomes.push(status);
    }
    assert_eq!(
        outcomes.iter().filter(|&&s| s == 429).count(),
        1,
        "exactly one greedy request is shed: {outcomes:?}"
    );
    assert_eq!(
        outcomes.iter().filter(|&&s| s == 200).count(),
        3,
        "{outcomes:?}"
    );
    let (_status, body) = read_one_response(&mut occupier);
    assert!(!body.is_empty());

    let (status, metrics) = http_call(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tessel_admission_shed_total 1"),
        "{metrics}"
    );

    server.shutdown();
}

/// `POST /v1/search?stream=1` delivers at least one incumbent event before
/// the terminal result event, over chunked SSE framing.
#[test]
fn streamed_search_delivers_incumbents_then_the_result() {
    let (server, addr) = start_server(ephemeral_config());

    let mut events: Vec<String> = Vec::new();
    let (status, last) =
        http_call_streaming(&addr, "/v1/search?stream=1", &search_body(), |event| {
            events.push(event.to_string());
        })
        .unwrap();
    assert_eq!(status, 200);
    assert!(
        events.len() >= 2,
        "expected at least one incumbent before the terminal event: {events:?}"
    );
    assert_eq!(events.last().unwrap(), &last);

    let terminal: StreamEvent = serde_json::from_str(&last).unwrap();
    match terminal {
        StreamEvent::Result(response) => {
            assert!(response.period > 0);
            assert!(!response.cached);
        }
        other => panic!("expected a terminal result event, got {other:?}"),
    }
    for event in &events[..events.len() - 1] {
        let parsed: StreamEvent = serde_json::from_str(event).unwrap();
        assert!(
            matches!(parsed, StreamEvent::Incumbent { .. }),
            "non-terminal events must be incumbents: {event}"
        );
    }

    server.shutdown();
}

/// The keep-alive client reuses its connection across calls and survives the
/// server idling it out in between.
#[test]
fn http_client_reuses_and_recovers_connections() {
    let (server, addr) = start_server(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ephemeral_config()
    });

    let mut client = HttpClient::new(&addr).unwrap();
    let (status, _) = client.call("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(client.is_connected());
    let (status, _) = client.call("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(server.transport_snapshot().keepalive_reuses >= 1);

    // Let the server idle the connection out, then call again: the client
    // must transparently reconnect rather than surface an error.
    std::thread::sleep(Duration::from_millis(600));
    let (status, _) = client.call("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);

    server.shutdown();
}
