//! End-to-end test of the daemon over real sockets, covering the acceptance
//! scenario: identical requests return byte-identical schedules with the
//! second served from the cache, a device-permuted variant hits via the
//! canonical fingerprint, and a zero-deadline request times out without
//! poisoning the cache.

use std::sync::Arc;
use tessel_core::ir::{BlockKind, PlacementSpec};
use tessel_service::http::http_call;
use tessel_service::wire::SearchRequest;
use tessel_service::{HttpServer, ScheduleService, ServerConfig, ServiceConfig};

fn v_shape(devices: usize) -> PlacementSpec {
    let mut b = PlacementSpec::builder(format!("v{devices}"), devices);
    b.set_memory_capacity(Some(devices as i64 + 1));
    let mut prev: Option<usize> = None;
    for d in 0..devices {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("f{d}"), BlockKind::Forward, [d], 1, 1, deps)
                .unwrap(),
        );
    }
    for d in (0..devices).rev() {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("b{d}"), BlockKind::Backward, [d], 2, -1, deps)
                .unwrap(),
        );
    }
    b.build().unwrap()
}

fn start_server() -> (HttpServer, String) {
    let service = ScheduleService::new(ServiceConfig {
        default_micro_batches: 4,
        default_max_repetend: 3,
        ..ServiceConfig::default()
    })
    .unwrap();
    let server = HttpServer::serve(
        Arc::new(service),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn post_search(addr: &str, request: &SearchRequest) -> (u16, String) {
    let body = serde_json::to_string(request).unwrap();
    http_call(addr, "POST", "/v1/search", Some(&body)).unwrap()
}

/// Extracts a scalar field rendered by the deterministic JSON writer.
fn json_field<'a>(body: &'a str, field: &str) -> &'a str {
    let tag = format!("\"{field}\":");
    let start = body.find(&tag).map(|p| p + tag.len()).unwrap_or_else(|| {
        panic!("field {field} missing in {body}");
    });
    let rest = &body[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated field {field}"));
    &rest[..end]
}

#[test]
fn daemon_serves_cache_hits_permutations_and_deadlines() {
    let (server, addr) = start_server();

    // Liveness.
    let (status, body) = http_call(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("ok"));

    // First search: a miss that populates the cache.
    let placement = v_shape(3);
    let request = SearchRequest::for_placement(placement.clone());
    let (status, first) = post_search(&addr, &request);
    assert_eq!(status, 200, "{first}");
    assert_eq!(json_field(&first, "cached"), "false");

    // Second, identical search: a cache hit with a byte-identical schedule.
    let (status, second) = post_search(&addr, &request);
    assert_eq!(status, 200);
    assert_eq!(json_field(&second, "cached"), "true");
    let schedule_of = |body: &str| {
        let start = body.find("\"schedule\":").expect("schedule field");
        let end = body.find("\"utilization\":").expect("utilization field");
        body[start..end].to_string()
    };
    assert_eq!(schedule_of(&first), schedule_of(&second));
    assert_eq!(json_field(&first, "period"), json_field(&second, "period"));

    // The hit is visible in /metrics.
    let (status, metrics) = http_call(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("tessel_cache_hits_total 1"), "{metrics}");
    assert!(metrics.contains("tessel_cache_misses_total 1"), "{metrics}");

    // A device-permuted variant of the same placement hits via the canonical
    // fingerprint.
    let order: Vec<usize> = (0..placement.num_blocks()).collect();
    let permuted = placement.permuted(&[2, 0, 1], &order).unwrap();
    let (status, third) = post_search(&addr, &SearchRequest::for_placement(permuted));
    assert_eq!(status, 200);
    assert_eq!(json_field(&third, "cached"), "true");
    assert_eq!(
        json_field(&first, "fingerprint"),
        json_field(&third, "fingerprint")
    );
    assert_eq!(json_field(&first, "period"), json_field(&third, "period"));

    // The cache listing shows exactly one canonical entry, with hits.
    let (status, listing) = http_call(&addr, "GET", "/v1/cache", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(listing.matches("\"fingerprint\"").count(), 1, "{listing}");

    // Inspecting the fingerprint returns the canonical entry with the
    // per-device utilization summary.
    let fingerprint = json_field(&first, "fingerprint")
        .trim_matches('"')
        .to_string();
    let (status, inspect) =
        http_call(&addr, "GET", &format!("/v1/cache/{fingerprint}"), None).unwrap();
    assert_eq!(status, 200);
    assert!(inspect.contains("\"busy_fraction\""), "{inspect}");
    let (status, _) = http_call(&addr, "GET", "/v1/cache/0000000000000000", None).unwrap();
    assert_eq!(status, 404);

    // A zero-deadline request for an uncached placement times out (408) and
    // does not poison the cache.
    let uncached = v_shape(2);
    let mut timed = SearchRequest::for_placement(uncached.clone());
    timed.deadline_ms = Some(0);
    let (status, timeout_body) = post_search(&addr, &timed);
    assert_eq!(status, 408, "{timeout_body}");
    assert!(timeout_body.contains("timeout"), "{timeout_body}");
    let (_, listing) = http_call(&addr, "GET", "/v1/cache", None).unwrap();
    assert_eq!(listing.matches("\"fingerprint\"").count(), 1, "{listing}");
    // Without the deadline the same placement now searches fine.
    let (status, ok) = post_search(&addr, &SearchRequest::for_placement(uncached));
    assert_eq!(status, 200);
    assert_eq!(json_field(&ok, "cached"), "false");

    // Unknown routes 404; malformed bodies 400.
    let (status, _) = http_call(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_call(&addr, "POST", "/v1/search", Some("not json")).unwrap();
    assert_eq!(status, 400);

    server.shutdown();
}
