//! End-to-end tests of the tracing tentpole, over real sockets:
//!
//! * a search POSTed to daemon B that remote-hits its owner A produces
//!   flight-recorder entries on BOTH daemons sharing one trace ID, with B's
//!   entry showing a non-zero `remote_fetch` stage and B's `/metrics`
//!   exporting per-stage histogram buckets;
//! * malformed or oversized inbound `X-Tessel-Trace-Id` headers are
//!   rejected: a fresh ID is minted and the raw header value is never
//!   reflected anywhere in the response;
//! * the live plane: `/v1/debug/inflight` shows a solving request's
//!   monotonically increasing node count and live incumbent mid-flight,
//!   `/v1/debug/timeseries` serves the sampler's windowed rates,
//!   `/v1/debug/loglevel` changes the daemon's log level at runtime, and
//!   `/v1/debug/trace/{id}` assembles one merged span timeline from both
//!   members of a two-daemon fleet.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use tessel_core::ir::{BlockKind, PlacementSpec};
use tessel_placement::shapes::{synthetic_placement, ShapeKind};
use tessel_service::wire::{
    DebugRequestsResponse, InflightResponse, SearchRequest, TimeseriesResponse,
    TraceAssemblyResponse,
};
use tessel_service::{
    ClusterConfig, HashRing, HttpClient, HttpServer, PeerConfig, ScheduleService, ServerConfig,
    ServiceConfig,
};

const VNODES: usize = 32;

fn v_shape(devices: usize) -> PlacementSpec {
    let mut b = PlacementSpec::builder(format!("v{devices}"), devices);
    b.set_memory_capacity(Some(devices as i64 + 1));
    let mut prev: Option<usize> = None;
    for d in 0..devices {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("f{d}"), BlockKind::Forward, [d], 1, 1, deps)
                .unwrap(),
        );
    }
    for d in (0..devices).rev() {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("b{d}"), BlockKind::Backward, [d], 2, -1, deps)
                .unwrap(),
        );
    }
    b.build().unwrap()
}

fn start_node(
    node_id: &str,
    listener: TcpListener,
    peers: Vec<PeerConfig>,
) -> (HttpServer, Arc<ScheduleService>) {
    let mut cluster = ClusterConfig::new(node_id, peers);
    cluster.vnodes = VNODES;
    cluster.probe_interval = std::time::Duration::from_millis(200);
    let service = Arc::new(
        ScheduleService::new(ServiceConfig {
            default_micro_batches: 4,
            default_max_repetend: 3,
            cluster: Some(cluster),
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let server = HttpServer::serve_listener(
        service.clone(),
        listener,
        &ServerConfig {
            workers: 2,
            queue_depth: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, service)
}

fn debug_requests(client: &mut HttpClient) -> DebugRequestsResponse {
    let (status, body) = client.call("GET", "/v1/debug/requests", None).unwrap();
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).unwrap()
}

fn header<'a>(headers: &'a [(String, String)], wanted: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case(wanted))
        .map(|(_, value)| value.as_str())
}

#[test]
fn remote_fetch_joins_the_requesters_trace_across_daemons() {
    // Bind both listeners first so each node can name the other's real
    // address in its peer config, and pick ids so A owns the placement.
    let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
    let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr_a = listener_a.local_addr().unwrap().to_string();
    let addr_b = listener_b.local_addr().unwrap().to_string();
    let placement = v_shape(3);
    let fingerprint = placement.canonicalize().fingerprint;
    let ring = HashRing::new(["alpha", "beta"], VNODES);
    let (id_a, id_b) = if ring.owner_of(fingerprint) == "alpha" {
        ("alpha", "beta")
    } else {
        ("beta", "alpha")
    };
    let (server_a, service_a) = start_node(
        id_a,
        listener_a,
        vec![PeerConfig {
            node_id: id_b.into(),
            addr: addr_b.clone(),
        }],
    );
    let (server_b, service_b) = start_node(
        id_b,
        listener_b,
        vec![PeerConfig {
            node_id: id_a.into(),
            addr: addr_a.clone(),
        }],
    );
    assert!(service_a.cluster().unwrap().owns(fingerprint));
    assert!(!service_b.cluster().unwrap().owns(fingerprint));

    // Seed the owner, then ask B with a caller-chosen trace ID. B misses
    // locally and fetches from A; both daemons' records must join the trace.
    let mut client_a = HttpClient::new(&addr_a).unwrap();
    let mut client_b = HttpClient::new(&addr_b).unwrap();
    let body = serde_json::to_string(&SearchRequest::for_placement(placement.clone())).unwrap();
    let (status, _, _) = client_a
        .call_with_headers("POST", "/v1/search", Some(&body), &[])
        .unwrap();
    assert_eq!(status, 200);

    let trace = "0123456789abcdef0123456789abcdef";
    let order: Vec<usize> = (0..placement.num_blocks()).collect();
    let permuted = placement.permuted(&[2, 0, 1], &order).unwrap();
    let permuted_body =
        serde_json::to_string(&SearchRequest::for_placement(permuted.clone())).unwrap();
    let (status, headers, response) = client_b
        .call_with_headers(
            "POST",
            "/v1/search",
            Some(&permuted_body),
            &[("X-Tessel-Trace-Id", trace)],
        )
        .unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"cached\":true"), "{response}");

    // The response carries the caller's trace ID and a Server-Timing
    // breakdown that includes the remote_fetch stage.
    assert_eq!(header(&headers, "x-tessel-trace-id"), Some(trace));
    let timing = header(&headers, "server-timing").expect("Server-Timing header");
    assert!(timing.contains("remote_fetch;dur="), "{timing}");

    // B's flight recorder: the search entry, under the caller's trace ID,
    // with a non-zero remote_fetch stage.
    let debug_b = debug_requests(&mut client_b);
    let entry_b = debug_b
        .recent
        .iter()
        .find(|entry| entry.trace_id == trace && entry.path == "/v1/search")
        .expect("B's flight recorder holds the traced search");
    let remote_fetch = entry_b
        .stages
        .iter()
        .find(|stage| stage.name == "remote_fetch")
        .expect("the traced search crossed the cluster");
    assert!(remote_fetch.micros > 0, "remote fetch took real time");
    assert_eq!(entry_b.status, 200);

    // A's flight recorder: the owner-side cache GET, SAME trace ID.
    let debug_a = debug_requests(&mut client_a);
    let entry_a = debug_a
        .recent
        .iter()
        .find(|entry| entry.trace_id == trace)
        .expect("A's flight recorder joined the requester's trace");
    assert_eq!(entry_a.method, "GET");
    assert!(entry_a.path.starts_with("/v1/cache/"), "{}", entry_a.path);

    // B exports per-stage and per-endpoint histogram buckets.
    let (status, metrics) = client_b.call("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tessel_request_stage_duration_seconds_bucket{stage=\"remote_fetch\""),
        "per-stage buckets missing"
    );
    assert!(
        metrics.contains("tessel_http_request_duration_seconds_bucket{endpoint=\"/v1/search\""),
        "per-endpoint buckets missing"
    );

    server_a.shutdown();
    server_b.shutdown();
}

/// Reads everything the server sends on `stream` (the request asked for
/// `Connection: close`) and returns it as text.
fn raw_exchange(addr: &str, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    String::from_utf8_lossy(&response).into_owned()
}

/// The `X-Tessel-Trace-Id` response-header value in a raw response text.
fn response_trace_id(response: &str) -> &str {
    response
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("x-tessel-trace-id")
                .then(|| value.trim())
        })
        .expect("every response carries X-Tessel-Trace-Id")
}

#[test]
fn bad_inbound_trace_headers_mint_fresh_ids_and_are_never_reflected() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Arc::new(ScheduleService::new(ServiceConfig::default()).unwrap());
    let server = HttpServer::serve_listener(service, listener, &ServerConfig::default()).unwrap();

    // A valid inbound ID is adopted verbatim.
    let valid = "deadbeefdeadbeefdeadbeefdeadbeef";
    let response = raw_exchange(
        &addr,
        &format!(
            "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Tessel-Trace-Id: {valid}\r\nConnection: close\r\n\r\n"
        ),
    );
    assert_eq!(response_trace_id(&response), valid);

    // Malformed (wrong charset / length): fresh ID, no reflection.
    for bad in [
        "not-hex!",
        "UPPERCASEHEXISREJECTED0123456789",
        "deadbeef",
        "<script>alert(1)</script>",
    ] {
        let response = raw_exchange(
            &addr,
            &format!(
                "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Tessel-Trace-Id: {bad}\r\nConnection: close\r\n\r\n"
            ),
        );
        let minted = response_trace_id(&response);
        assert_ne!(minted, bad);
        assert_eq!(minted.len(), 32, "minted ID is a real trace ID");
        assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(
            !response.contains(bad),
            "raw header value must never be reflected: {response}"
        );
    }

    // Oversized: dropped before validation, fresh ID, no reflection.
    let oversized = "f".repeat(300);
    let response = raw_exchange(
        &addr,
        &format!(
            "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Tessel-Trace-Id: {oversized}\r\nConnection: close\r\n\r\n"
        ),
    );
    let minted = response_trace_id(&response);
    assert_eq!(minted.len(), 32);
    assert!(!response.contains(&oversized));

    // Distinct requests mint distinct IDs.
    let again = raw_exchange(
        &addr,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Tessel-Trace-Id: nope\r\nConnection: close\r\n\r\n",
    );
    assert_ne!(response_trace_id(&again), minted);

    server.shutdown();
}

/// A search the solver chews on for a predictable ~1.5 s window: the
/// 8-device X-shape portfolio explores far longer single-threaded, so the
/// request deadline is what ends it.
fn slow_search_body(deadline_ms: u64) -> String {
    let placement = synthetic_placement(ShapeKind::X, 8).expect("placement");
    let mut request = SearchRequest::for_placement(placement);
    request.num_micro_batches = Some(8);
    request.max_repetend_micro_batches = Some(4);
    request.solver_threads = Some(1);
    request.deadline_ms = Some(deadline_ms);
    serde_json::to_string(&request).unwrap()
}

#[test]
fn inflight_shows_monotone_solver_progress_and_a_live_incumbent() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Arc::new(
        ScheduleService::new(ServiceConfig {
            portfolio_threads: 1,
            solver_threads: 1,
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let server = HttpServer::serve_listener(
        service,
        listener,
        &ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // One thread runs the slow search; the main thread polls the in-flight
    // board through a second connection the whole time.
    let solve_addr = addr.clone();
    let solver = std::thread::spawn(move || {
        let (status, body) = tessel_service::http::http_call(
            &solve_addr,
            "POST",
            "/v1/search",
            Some(&slow_search_body(1500)),
        )
        .unwrap();
        (status, body)
    });

    let mut client = HttpClient::new(&addr).unwrap();
    let mut node_samples: Vec<u64> = Vec::new();
    let mut saw_solve_stage = false;
    let mut saw_incumbent = false;
    let mut saw_deadline = false;
    let begun = std::time::Instant::now();
    while begun.elapsed() < std::time::Duration::from_secs(10) && !solver.is_finished() {
        let (status, body) = client.call("GET", "/v1/debug/inflight", None).unwrap();
        assert_eq!(status, 200, "{body}");
        let inflight: InflightResponse = serde_json::from_str(&body).unwrap();
        if let Some(entry) = inflight
            .inflight
            .iter()
            .find(|entry| entry.path == "/v1/search")
        {
            node_samples.push(entry.nodes);
            saw_solve_stage |= entry.stage == "solve";
            saw_incumbent |= entry.incumbent.is_some();
            saw_deadline |= entry.deadline_remaining_ms.is_some();
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let (status, response) = solver.join().unwrap();
    assert!(status == 200 || status == 408, "{status}: {response}");

    assert!(
        node_samples.iter().any(|&nodes| nodes > 0),
        "the board never showed expanded nodes: {node_samples:?}"
    );
    assert!(
        node_samples.windows(2).all(|pair| pair[0] <= pair[1]),
        "node counts regressed mid-solve: {node_samples:?}"
    );
    assert!(saw_solve_stage, "never observed the solve stage in flight");
    assert!(saw_incumbent, "never observed a live incumbent in flight");
    assert!(saw_deadline, "deadline_remaining_ms never populated");

    // Once answered, the request leaves the board.
    let drained = std::time::Instant::now();
    loop {
        let (_, body) = client.call("GET", "/v1/debug/inflight", None).unwrap();
        let inflight: InflightResponse = serde_json::from_str(&body).unwrap();
        if !inflight
            .inflight
            .iter()
            .any(|entry| entry.path == "/v1/search")
        {
            break;
        }
        assert!(
            drained.elapsed() < std::time::Duration::from_secs(5),
            "completed request still on the in-flight board"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn timeseries_loglevel_and_healthz_serve_the_live_plane() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Arc::new(ScheduleService::new(ServiceConfig::default()).unwrap());
    let server = HttpServer::serve_listener(
        service,
        listener,
        &ServerConfig {
            sample_interval_ms: 25,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = HttpClient::new(&addr).unwrap();

    // Generate some traffic, then let the sampler tick over it.
    let body = serde_json::to_string(&SearchRequest::for_placement(v_shape(2))).unwrap();
    for _ in 0..3 {
        let (status, response) = client.call("POST", "/v1/search", Some(&body)).unwrap();
        assert_eq!(status, 200, "{response}");
    }
    std::thread::sleep(std::time::Duration::from_millis(150));

    let (status, body) = client
        .call("GET", "/v1/debug/timeseries?window=60", None)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let series: TimeseriesResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(series.interval_ms, 25);
    assert!(series.ticks >= 1, "sampler never ticked");
    assert!(series.latest_unix_ms > 0);
    let names: Vec<&str> = series.series.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "requests_per_s",
        "shed_per_s",
        "cache_hit_ratio",
        "solver_nodes_per_s",
        "queue_depth",
        "connections_open",
    ] {
        assert!(names.contains(&expected), "missing series {expected}");
    }
    let requests = series
        .series
        .iter()
        .find(|s| s.name == "requests_per_s")
        .unwrap();
    assert!(
        requests.max > 0.0,
        "three searches never showed up in the request rate"
    );
    // A bad window is a 400, not a panic or a silent default.
    let (status, _) = client
        .call("GET", "/v1/debug/timeseries?window=abc", None)
        .unwrap();
    assert_eq!(status, 400);

    // The sampler's gauges also ride the Prometheus page.
    let (status, metrics) = client.call("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tessel_timeseries_last{series=\"requests_per_s\"}"),
        "timeseries gauges missing from /metrics"
    );

    // The liveness probe carries the clock stamp peer offset estimation
    // reads.
    let (status, health) = client.call("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(health.contains("\"unix_ms\":"), "{health}");

    // Runtime log-level control: PUT flips it, GET reflects it, and the
    // response names the previous level so the caller can restore it.
    let (status, current) = client.call("GET", "/v1/debug/loglevel", None).unwrap();
    assert_eq!(status, 200, "{current}");
    let previous: tessel_service::wire::LogLevelBody = serde_json::from_str(&current).unwrap();
    let (status, changed) = client
        .call("PUT", "/v1/debug/loglevel", Some("{\"level\":\"trace\"}"))
        .unwrap();
    assert_eq!(status, 200, "{changed}");
    assert!(changed.contains("\"level\":\"trace\""), "{changed}");
    assert!(
        changed.contains(&format!("\"previous\":\"{}\"", previous.level)),
        "{changed}"
    );
    let (_, now_level) = client.call("GET", "/v1/debug/loglevel", None).unwrap();
    assert!(now_level.contains("\"level\":\"trace\""), "{now_level}");
    // Unknown levels are rejected without changing anything.
    let (status, _) = client
        .call("PUT", "/v1/debug/loglevel", Some("{\"level\":\"shouty\"}"))
        .unwrap();
    assert_eq!(status, 400);
    let restore = format!("{{\"level\":\"{}\"}}", previous.level);
    let (status, _) = client
        .call("PUT", "/v1/debug/loglevel", Some(&restore))
        .unwrap();
    assert_eq!(status, 200);

    server.shutdown();
}

#[test]
fn sampler_disabled_answers_404_without_a_sampler_thread() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Arc::new(ScheduleService::new(ServiceConfig::default()).unwrap());
    let server = HttpServer::serve_listener(
        service,
        listener,
        &ServerConfig {
            sample_interval_ms: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    assert!(server.timeseries().is_none());
    let mut client = HttpClient::new(&addr).unwrap();
    let (status, body) = client.call("GET", "/v1/debug/timeseries", None).unwrap();
    assert_eq!(status, 404, "{body}");
    // /metrics stays valid without the gauge family.
    let (status, metrics) = client.call("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(!metrics.contains("tessel_timeseries_last"));
    server.shutdown();
}

#[test]
fn assembled_trace_merges_spans_from_both_daemons() {
    let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
    let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr_a = listener_a.local_addr().unwrap().to_string();
    let addr_b = listener_b.local_addr().unwrap().to_string();
    let placement = v_shape(3);
    let fingerprint = placement.canonicalize().fingerprint;
    let ring = HashRing::new(["alpha", "beta"], VNODES);
    let (id_a, id_b) = if ring.owner_of(fingerprint) == "alpha" {
        ("alpha", "beta")
    } else {
        ("beta", "alpha")
    };
    let (server_a, service_a) = start_node(
        id_a,
        listener_a,
        vec![PeerConfig {
            node_id: id_b.into(),
            addr: addr_b.clone(),
        }],
    );
    let (server_b, _service_b) = start_node(
        id_b,
        listener_b,
        vec![PeerConfig {
            node_id: id_a.into(),
            addr: addr_a.clone(),
        }],
    );
    assert!(service_a.cluster().unwrap().owns(fingerprint));

    // Seed the owner under the SAME trace the requester will use, so the
    // owner's solve span belongs to the assembled trace, then hit the
    // non-owner: it cache-misses locally and remote-fetches from A.
    let trace = "feedfacefeedfacefeedfacefeedface";
    let mut client_a = HttpClient::new(&addr_a).unwrap();
    let mut client_b = HttpClient::new(&addr_b).unwrap();
    let body = serde_json::to_string(&SearchRequest::for_placement(placement.clone())).unwrap();
    let (status, _, response) = client_a
        .call_with_headers(
            "POST",
            "/v1/search",
            Some(&body),
            &[("X-Tessel-Trace-Id", trace)],
        )
        .unwrap();
    assert_eq!(status, 200, "{response}");
    let (status, _, response) = client_b
        .call_with_headers(
            "POST",
            "/v1/search",
            Some(&body),
            &[("X-Tessel-Trace-Id", trace)],
        )
        .unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"cached\":true"), "{response}");

    // Asking the requester assembles spans from BOTH daemons: B's own
    // cache_lookup + remote_fetch, and A's solve (plus A's owner-side cache
    // GET), all under one trace, sorted by adjusted start time.
    let (status, body) = client_b
        .call("GET", &format!("/v1/debug/trace/{trace}"), None)
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let assembly: TraceAssemblyResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(assembly.trace_id, trace);
    assert!(
        assembly.nodes.iter().any(|node| node == id_a)
            && assembly.nodes.iter().any(|node| node == id_b),
        "both daemons must contribute: {:?}",
        assembly.nodes
    );
    assert!(
        assembly.unreachable.is_empty(),
        "healthy peers must all answer: {:?}",
        assembly.unreachable
    );
    let has = |node: &str, name: &str| {
        assembly
            .spans
            .iter()
            .any(|span| span.node == node && span.name == name)
    };
    assert!(has(id_b, "cache_lookup"), "requester cache_lookup span");
    assert!(has(id_b, "remote_fetch"), "requester remote_fetch span");
    assert!(has(id_a, "solve"), "owner solve span");
    assert!(
        assembly
            .spans
            .windows(2)
            .all(|pair| pair[0].start_unix_ms <= pair[1].start_unix_ms),
        "spans must be start-sorted"
    );

    // An invalid trace id is a 400, and an unknown-but-valid one is an
    // empty assembly, not an error.
    let (status, _) = client_b
        .call("GET", "/v1/debug/trace/not-a-trace", None)
        .unwrap();
    assert_eq!(status, 400);
    let (status, body) = client_b
        .call(
            "GET",
            "/v1/debug/trace/00000000000000000000000000000000",
            None,
        )
        .unwrap();
    assert_eq!(status, 200);
    let empty: TraceAssemblyResponse = serde_json::from_str(&body).unwrap();
    assert!(empty.spans.is_empty());

    server_a.shutdown();
    server_b.shutdown();
}
