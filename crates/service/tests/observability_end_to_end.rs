//! End-to-end tests of the tracing tentpole, over real sockets:
//!
//! * a search POSTed to daemon B that remote-hits its owner A produces
//!   flight-recorder entries on BOTH daemons sharing one trace ID, with B's
//!   entry showing a non-zero `remote_fetch` stage and B's `/metrics`
//!   exporting per-stage histogram buckets;
//! * malformed or oversized inbound `X-Tessel-Trace-Id` headers are
//!   rejected: a fresh ID is minted and the raw header value is never
//!   reflected anywhere in the response.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use tessel_core::ir::{BlockKind, PlacementSpec};
use tessel_service::wire::{DebugRequestsResponse, SearchRequest};
use tessel_service::{
    ClusterConfig, HashRing, HttpClient, HttpServer, PeerConfig, ScheduleService, ServerConfig,
    ServiceConfig,
};

const VNODES: usize = 32;

fn v_shape(devices: usize) -> PlacementSpec {
    let mut b = PlacementSpec::builder(format!("v{devices}"), devices);
    b.set_memory_capacity(Some(devices as i64 + 1));
    let mut prev: Option<usize> = None;
    for d in 0..devices {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("f{d}"), BlockKind::Forward, [d], 1, 1, deps)
                .unwrap(),
        );
    }
    for d in (0..devices).rev() {
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(
            b.add_block(format!("b{d}"), BlockKind::Backward, [d], 2, -1, deps)
                .unwrap(),
        );
    }
    b.build().unwrap()
}

fn start_node(
    node_id: &str,
    listener: TcpListener,
    peers: Vec<PeerConfig>,
) -> (HttpServer, Arc<ScheduleService>) {
    let mut cluster = ClusterConfig::new(node_id, peers);
    cluster.vnodes = VNODES;
    cluster.probe_interval = std::time::Duration::from_millis(200);
    let service = Arc::new(
        ScheduleService::new(ServiceConfig {
            default_micro_batches: 4,
            default_max_repetend: 3,
            cluster: Some(cluster),
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let server = HttpServer::serve_listener(
        service.clone(),
        listener,
        &ServerConfig {
            workers: 2,
            queue_depth: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    (server, service)
}

fn debug_requests(client: &mut HttpClient) -> DebugRequestsResponse {
    let (status, body) = client.call("GET", "/v1/debug/requests", None).unwrap();
    assert_eq!(status, 200, "{body}");
    serde_json::from_str(&body).unwrap()
}

fn header<'a>(headers: &'a [(String, String)], wanted: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case(wanted))
        .map(|(_, value)| value.as_str())
}

#[test]
fn remote_fetch_joins_the_requesters_trace_across_daemons() {
    // Bind both listeners first so each node can name the other's real
    // address in its peer config, and pick ids so A owns the placement.
    let listener_a = TcpListener::bind("127.0.0.1:0").unwrap();
    let listener_b = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr_a = listener_a.local_addr().unwrap().to_string();
    let addr_b = listener_b.local_addr().unwrap().to_string();
    let placement = v_shape(3);
    let fingerprint = placement.canonicalize().fingerprint;
    let ring = HashRing::new(["alpha", "beta"], VNODES);
    let (id_a, id_b) = if ring.owner_of(fingerprint) == "alpha" {
        ("alpha", "beta")
    } else {
        ("beta", "alpha")
    };
    let (server_a, service_a) = start_node(
        id_a,
        listener_a,
        vec![PeerConfig {
            node_id: id_b.into(),
            addr: addr_b.clone(),
        }],
    );
    let (server_b, service_b) = start_node(
        id_b,
        listener_b,
        vec![PeerConfig {
            node_id: id_a.into(),
            addr: addr_a.clone(),
        }],
    );
    assert!(service_a.cluster().unwrap().owns(fingerprint));
    assert!(!service_b.cluster().unwrap().owns(fingerprint));

    // Seed the owner, then ask B with a caller-chosen trace ID. B misses
    // locally and fetches from A; both daemons' records must join the trace.
    let mut client_a = HttpClient::new(&addr_a).unwrap();
    let mut client_b = HttpClient::new(&addr_b).unwrap();
    let body = serde_json::to_string(&SearchRequest::for_placement(placement.clone())).unwrap();
    let (status, _, _) = client_a
        .call_with_headers("POST", "/v1/search", Some(&body), &[])
        .unwrap();
    assert_eq!(status, 200);

    let trace = "0123456789abcdef0123456789abcdef";
    let order: Vec<usize> = (0..placement.num_blocks()).collect();
    let permuted = placement.permuted(&[2, 0, 1], &order).unwrap();
    let permuted_body =
        serde_json::to_string(&SearchRequest::for_placement(permuted.clone())).unwrap();
    let (status, headers, response) = client_b
        .call_with_headers(
            "POST",
            "/v1/search",
            Some(&permuted_body),
            &[("X-Tessel-Trace-Id", trace)],
        )
        .unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"cached\":true"), "{response}");

    // The response carries the caller's trace ID and a Server-Timing
    // breakdown that includes the remote_fetch stage.
    assert_eq!(header(&headers, "x-tessel-trace-id"), Some(trace));
    let timing = header(&headers, "server-timing").expect("Server-Timing header");
    assert!(timing.contains("remote_fetch;dur="), "{timing}");

    // B's flight recorder: the search entry, under the caller's trace ID,
    // with a non-zero remote_fetch stage.
    let debug_b = debug_requests(&mut client_b);
    let entry_b = debug_b
        .recent
        .iter()
        .find(|entry| entry.trace_id == trace && entry.path == "/v1/search")
        .expect("B's flight recorder holds the traced search");
    let remote_fetch = entry_b
        .stages
        .iter()
        .find(|stage| stage.name == "remote_fetch")
        .expect("the traced search crossed the cluster");
    assert!(remote_fetch.micros > 0, "remote fetch took real time");
    assert_eq!(entry_b.status, 200);

    // A's flight recorder: the owner-side cache GET, SAME trace ID.
    let debug_a = debug_requests(&mut client_a);
    let entry_a = debug_a
        .recent
        .iter()
        .find(|entry| entry.trace_id == trace)
        .expect("A's flight recorder joined the requester's trace");
    assert_eq!(entry_a.method, "GET");
    assert!(entry_a.path.starts_with("/v1/cache/"), "{}", entry_a.path);

    // B exports per-stage and per-endpoint histogram buckets.
    let (status, metrics) = client_b.call("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("tessel_request_stage_duration_seconds_bucket{stage=\"remote_fetch\""),
        "per-stage buckets missing"
    );
    assert!(
        metrics.contains("tessel_http_request_duration_seconds_bucket{endpoint=\"/v1/search\""),
        "per-endpoint buckets missing"
    );

    server_a.shutdown();
    server_b.shutdown();
}

/// Reads everything the server sends on `stream` (the request asked for
/// `Connection: close`) and returns it as text.
fn raw_exchange(addr: &str, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    String::from_utf8_lossy(&response).into_owned()
}

/// The `X-Tessel-Trace-Id` response-header value in a raw response text.
fn response_trace_id(response: &str) -> &str {
    response
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("x-tessel-trace-id")
                .then(|| value.trim())
        })
        .expect("every response carries X-Tessel-Trace-Id")
}

#[test]
fn bad_inbound_trace_headers_mint_fresh_ids_and_are_never_reflected() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let service = Arc::new(ScheduleService::new(ServiceConfig::default()).unwrap());
    let server = HttpServer::serve_listener(service, listener, &ServerConfig::default()).unwrap();

    // A valid inbound ID is adopted verbatim.
    let valid = "deadbeefdeadbeefdeadbeefdeadbeef";
    let response = raw_exchange(
        &addr,
        &format!(
            "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Tessel-Trace-Id: {valid}\r\nConnection: close\r\n\r\n"
        ),
    );
    assert_eq!(response_trace_id(&response), valid);

    // Malformed (wrong charset / length): fresh ID, no reflection.
    for bad in [
        "not-hex!",
        "UPPERCASEHEXISREJECTED0123456789",
        "deadbeef",
        "<script>alert(1)</script>",
    ] {
        let response = raw_exchange(
            &addr,
            &format!(
                "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Tessel-Trace-Id: {bad}\r\nConnection: close\r\n\r\n"
            ),
        );
        let minted = response_trace_id(&response);
        assert_ne!(minted, bad);
        assert_eq!(minted.len(), 32, "minted ID is a real trace ID");
        assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(
            !response.contains(bad),
            "raw header value must never be reflected: {response}"
        );
    }

    // Oversized: dropped before validation, fresh ID, no reflection.
    let oversized = "f".repeat(300);
    let response = raw_exchange(
        &addr,
        &format!(
            "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Tessel-Trace-Id: {oversized}\r\nConnection: close\r\n\r\n"
        ),
    );
    let minted = response_trace_id(&response);
    assert_eq!(minted.len(), 32);
    assert!(!response.contains(&oversized));

    // Distinct requests mint distinct IDs.
    let again = raw_exchange(
        &addr,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Tessel-Trace-Id: nope\r\nConnection: close\r\n\r\n",
    );
    assert_ne!(response_trace_id(&again), minted);

    server.shutdown();
}
