//! Property tests for the cluster's consistent-hash ring: the virtual-node
//! spread must keep ownership balanced across members, and membership
//! changes must be *minimally disruptive* — adding a node only moves keys
//! onto the new node, removing one only moves its own keys, and every other
//! fingerprint keeps its owner.

use proptest::prelude::*;
use proptest::TestRng;
use tessel_service::HashRing;

/// Strategy: a fleet of 2..=8 distinct node ids with varied shapes (short,
/// long, numeric suffixes) so the per-node seeds are not artificially
/// uniform.
fn fleet_strategy() -> impl Strategy<Value = Vec<String>> {
    (2usize..=8, 0u64..u64::MAX).prop_map(|(count, salt)| {
        (0..count)
            .map(|i| match i % 3 {
                0 => format!("node-{salt:x}-{i}"),
                1 => format!("tessel{i}"),
                _ => format!("d{i}.rack{}.example", salt % 10),
            })
            .collect()
    })
}

/// Deterministic pseudo-random keys (the ring mixes them again internally,
/// so sequential seeds would be fine too; varied keys are closer to real
/// fingerprints).
fn keys(rng: &mut TestRng, count: usize) -> Vec<u64> {
    (0..count).map(|_| rng.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With 64 virtual nodes per member, no member owns less than a quarter
    /// or more than triple its fair share of a large key sample.
    #[test]
    fn ring_is_balanced(nodes in fleet_strategy()) {
        let ring = HashRing::new(nodes.iter().cloned(), 64);
        let mut rng = TestRng::from_seed(0x1ee7_0000 + nodes.len() as u64);
        let sample = keys(&mut rng, 8_000);
        let mut counts = vec![0usize; nodes.len()];
        for &key in &sample {
            let owner = ring.owner_of_key(key);
            let index = ring.nodes().iter().position(|n| n == owner).unwrap();
            counts[index] += 1;
        }
        let fair = sample.len() as f64 / nodes.len() as f64;
        for (node, &count) in ring.nodes().iter().zip(&counts) {
            prop_assert!(
                (count as f64) > fair / 4.0 && (count as f64) < fair * 3.0,
                "node {node} owns {count} of {} keys (fair share {fair:.0})",
                sample.len()
            );
        }
    }

    /// Adding a member is minimally disruptive: every key either keeps its
    /// owner or moves to the NEW member — never between surviving members —
    /// and the moved fraction stays near the new member's fair share.
    #[test]
    fn adding_a_node_only_moves_keys_onto_it(nodes in fleet_strategy()) {
        let before = HashRing::new(nodes.iter().cloned(), 64);
        let mut grown = nodes.clone();
        grown.push("late-joiner".to_string());
        let after = HashRing::new(grown, 64);
        let mut rng = TestRng::from_seed(0xadd_0000 + nodes.len() as u64);
        let sample = keys(&mut rng, 8_000);
        let mut moved = 0usize;
        for &key in &sample {
            let old_owner = before.owner_of_key(key);
            let new_owner = after.owner_of_key(key);
            if old_owner != new_owner {
                prop_assert!(
                    new_owner == "late-joiner",
                    "key {key} moved between surviving members ({old_owner} -> {new_owner})"
                );
                moved += 1;
            }
        }
        // The new member's fair share is 1/(n+1); allow generous slack for
        // virtual-node variance but reject wholesale remapping.
        let fair = sample.len() as f64 / (nodes.len() + 1) as f64;
        prop_assert!(
            (moved as f64) < fair * 3.0,
            "adding one node remapped {moved} of {} keys (fair share {fair:.0})",
            sample.len()
        );
    }

    /// Removing a member only remaps the keys it owned: every key owned by a
    /// survivor keeps its owner exactly.
    #[test]
    fn removing_a_node_keeps_survivors_keys(nodes in fleet_strategy()) {
        let before = HashRing::new(nodes.iter().cloned(), 64);
        let removed = nodes[0].clone();
        let after = HashRing::new(nodes[1..].iter().cloned(), 64);
        let mut rng = TestRng::from_seed(0xdead_0000 + nodes.len() as u64);
        for key in keys(&mut rng, 8_000) {
            let old_owner = before.owner_of_key(key);
            if old_owner != removed {
                let new_owner = after.owner_of_key(key);
                prop_assert!(
                    new_owner == old_owner,
                    "key {key} lost its surviving owner when {removed} left ({old_owner} -> {new_owner})"
                );
            } else {
                // Orphaned keys must land on some survivor.
                prop_assert!(after.nodes().iter().any(|n| n == after.owner_of_key(key)));
            }
        }
    }
}
