//! `tessel-client`: CLI client for the schedule-search daemon.
//!
//! ```bash
//! tessel-client --addr 127.0.0.1:7700 health
//! tessel-client search --shape v4 --micro-batches 8
//! tessel-client search --shape v4 --repeat 3
//! tessel-client search --shape v4 --timing
//! tessel-client search --shape v6 --stream
//! tessel-client search --batch-file requests.json
//! tessel-client search --placement-file my_placement.json --deadline-ms 500
//! tessel-client cache
//! tessel-client inspect 1a2b3c4d5e6f7081
//! tessel-client metrics
//! ```
//!
//! `search` accepts either `--placement-file` (a JSON `PlacementSpec`) or
//! `--shape KIND DEVICES` shorthand (`v4`, `x2`, `m8`, `k4`, `nn8`) built
//! from the paper's synthetic shapes. `--repeat N` issues the same request
//! `N` times over **one kept-alive TCP connection** (the daemon's
//! keep-alive transport serves them all on a single socket; repeats after
//! the first are expected to report `"cached":true`). Each response body is
//! printed on its own line; any non-2xx status exits non-zero.
//!
//! `search --stream` asks the daemon for anytime incumbent streaming
//! (`POST /v1/search?stream=1`): each improving incumbent prints to stderr
//! with its elapsed time the moment the daemon proves it, and the final
//! (proved or deadline-best) response JSON prints to stdout.
//!
//! `search --batch-file PATH` posts many searches in one request
//! (`POST /v1/search/batch`); the file holds either a JSON array of search
//! requests or a `{"requests": [...]}` object. Placements sharing a
//! canonical fingerprint are deduplicated daemon-side onto one solve.

use std::process::exit;
use tessel_placement::shapes::{synthetic_placement, ShapeKind};
use tessel_service::http::{http_call, http_call_streaming};
use tessel_service::wire::{SearchRequest, StreamEvent};
use tessel_service::HttpClient;

fn usage() -> ! {
    eprintln!(
        "usage: tessel-client [--addr HOST:PORT] COMMAND\n\
         commands:\n\
         \x20 health                              liveness probe\n\
         \x20 metrics                             Prometheus metrics\n\
         \x20 cache                               list cache entries\n\
         \x20 inspect FINGERPRINT                 inspect one fingerprint\n\
         \x20 cluster [--fp FINGERPRINT]          ring membership and peer health\n\
         \x20                                     (--fp also reports the owner)\n\
         \x20 top [--interval-ms MS] [--window N] [--cluster] [--once]\n\
         \x20                                     live terminal dashboard of the\n\
         \x20                                     daemon's sampled rates and\n\
         \x20                                     in-flight requests; --cluster\n\
         \x20                                     fans out to every ring member,\n\
         \x20                                     --once prints one frame and\n\
         \x20                                     exits (for scripts/CI)\n\
         \x20 fingerprint [--placement-file PATH | --shape KINDn]\n\
         \x20                                     print the canonical fingerprint\n\
         \x20                                     (computed locally, no daemon)\n\
         \x20 search [--placement-file PATH | --shape KINDn | --batch-file PATH]\n\
         \x20        [--rotate-devices N]\n\
         \x20        [--micro-batches N] [--max-repetend N] [--deadline-ms MS]\n\
         \x20        [--solver-threads N] [--priority N] [--repeat N]\n\
         \x20        [--timing] [--stream] [--dry-run]\n\
         \n\
         search --repeat N issues the request N times over one kept-alive\n\
         TCP connection (later repeats hit the daemon's result cache).\n\
         search --timing prints each response's Server-Timing per-stage\n\
         breakdown (and trace ID) to stderr, one line per request; stdout\n\
         stays pure response JSON.\n\
         search --rotate-devices N relabels the placement's devices by a\n\
         rotation of N before sending — the daemon still answers from the\n\
         canonical-fingerprint cache and translates the schedule back.\n\
         search --stream streams improving incumbents to stderr as the\n\
         daemon proves them (value + elapsed ms); the final response JSON\n\
         prints to stdout when the search completes.\n\
         search --batch-file PATH posts every request in the file (a JSON\n\
         array, or {{\"requests\": [...]}}) as one /v1/search/batch call;\n\
         duplicate placements are deduplicated onto a single solve.\n\
         search --priority N raises (or, negative, lowers) the request's\n\
         admission priority under daemon overload.\n\
         search --dry-run prints the request body JSON that would be sent\n\
         (single or batch) without contacting the daemon — handy for piping\n\
         to curl or building batch files."
    );
    exit(2)
}

/// Builds the placement shared by `search` and `fingerprint`:
/// `--placement-file PATH` or `--shape KINDn`.
fn placement_from_flags(
    path: Option<&str>,
    shape: Option<&str>,
) -> Option<tessel_core::ir::PlacementSpec> {
    if let Some(path) = path {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                exit(1)
            }
        };
        match serde_json::from_str(&text) {
            Ok(parsed) => return Some(parsed),
            Err(e) => {
                eprintln!("error: {path} is not a valid placement: {e}");
                exit(1)
            }
        }
    }
    if let Some(spec) = shape {
        match parse_shape(spec) {
            Some(built) => return Some(built),
            None => {
                eprintln!("error: unknown shape `{spec}` (try v4, x2, m8, k4, nn8)");
                exit(1)
            }
        }
    }
    None
}

fn parse_shape(spec: &str) -> Option<tessel_core::ir::PlacementSpec> {
    let spec = spec.to_lowercase();
    let (kind, devices) = if let Some(rest) = spec.strip_prefix("nn") {
        (ShapeKind::NN, rest)
    } else if let Some(rest) = spec.strip_prefix('v') {
        (ShapeKind::V, rest)
    } else if let Some(rest) = spec.strip_prefix('x') {
        (ShapeKind::X, rest)
    } else if let Some(rest) = spec.strip_prefix('m') {
        (ShapeKind::M, rest)
    } else if let Some(rest) = spec.strip_prefix('k') {
        (ShapeKind::K, rest)
    } else {
        return None;
    };
    let devices: usize = devices.parse().ok()?;
    synthetic_placement(kind, devices).ok()
}

/// Prints one `--timing` line to stderr: the request's trace ID and the
/// `Server-Timing` per-stage breakdown
/// (`timing[<trace>]: parse=0.012ms solve=3.400ms ...`).
fn print_timing(headers: &[(String, String)]) {
    let lookup = |wanted: &str| {
        headers
            .iter()
            .find(|(name, _)| name.eq_ignore_ascii_case(wanted))
            .map(|(_, value)| value.as_str())
    };
    let trace = lookup("x-tessel-trace-id").unwrap_or("-");
    match lookup("server-timing") {
        Some(value) => {
            let stages: Vec<String> = value
                .split(',')
                .map(|part| {
                    let part = part.trim();
                    match part.split_once(";dur=") {
                        Some((name, ms)) => format!("{name}={ms}ms"),
                        None => part.to_string(),
                    }
                })
                .collect();
            eprintln!("timing[{trace}]: {}", stages.join(" "));
        }
        None => eprintln!("timing[{trace}]: (no Server-Timing header in response)"),
    }
}

/// One dashboard frame for one daemon: its sampled rate/gauge window plus
/// the live in-flight table. Unreachable daemons render as a one-line note
/// so a dying fleet member never kills the dashboard.
fn render_top_frame(addr: &str, window: usize, out: &mut String) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "── {addr} ──");
    match http_call(
        addr,
        "GET",
        &format!("/v1/debug/timeseries?window={window}"),
        None,
    ) {
        Ok((200, body)) => {
            match serde_json::from_str::<tessel_service::wire::TimeseriesResponse>(&body) {
                Ok(series) => {
                    let _ = writeln!(
                        out,
                        "  {:<20} {:>10} {:>10} {:>10} {:>10}",
                        "series", "last", "avg", "p95", "max"
                    );
                    for s in &series.series {
                        let _ = writeln!(
                            out,
                            "  {:<20} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                            s.name, s.last, s.avg, s.p95, s.max
                        );
                    }
                    let _ = writeln!(
                        out,
                        "  ({} ticks @ {} ms)",
                        series.ticks, series.interval_ms
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "  (unparseable timeseries: {e})");
                }
            }
        }
        Ok((404, _)) => {
            let _ = writeln!(out, "  (sampler disabled on this daemon)");
        }
        Ok((status, _)) => {
            let _ = writeln!(out, "  (timeseries returned status {status})");
        }
        Err(e) => {
            let _ = writeln!(out, "  (unreachable: {e})");
            return;
        }
    }
    match http_call(addr, "GET", "/v1/debug/inflight", None) {
        Ok((200, body)) => {
            match serde_json::from_str::<tessel_service::wire::InflightResponse>(&body) {
                Ok(inflight) if inflight.inflight.is_empty() => {
                    let _ = writeln!(out, "  in-flight: none");
                }
                Ok(inflight) => {
                    let _ = writeln!(
                        out,
                        "  {:<12} {:<22} {:<17} {:>9} {:>9} {:>12} {:>10}",
                        "trace", "request", "stage", "elapsed", "deadline", "nodes", "incumbent"
                    );
                    for entry in &inflight.inflight {
                        let trace = entry.trace_id.get(..12).unwrap_or(&entry.trace_id);
                        let deadline = entry
                            .deadline_remaining_ms
                            .map_or_else(|| "-".to_string(), |ms| format!("{ms}ms"));
                        let incumbent = entry
                            .incumbent
                            .map_or_else(|| "-".to_string(), |value| value.to_string());
                        let _ = writeln!(
                            out,
                            "  {:<12} {:<22} {:<17} {:>8}ms {:>9} {:>12} {:>10}",
                            trace,
                            format!("{} {}", entry.method, entry.path),
                            entry.stage,
                            entry.elapsed_ms,
                            deadline,
                            entry.nodes,
                            incumbent
                        );
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "  (unparseable inflight: {e})");
                }
            }
        }
        Ok((status, _)) => {
            let _ = writeln!(out, "  (inflight returned status {status})");
        }
        Err(e) => {
            let _ = writeln!(out, "  (unreachable: {e})");
        }
    }
}

/// The daemon addresses the `top` dashboard polls: just `addr`, or — with
/// `--cluster` — `addr` plus every peer the daemon's `/v1/cluster` lists.
fn top_targets(addr: &str, cluster: bool) -> Vec<String> {
    let mut targets = vec![addr.to_string()];
    if !cluster {
        return targets;
    }
    match http_call(addr, "GET", "/v1/cluster", None) {
        Ok((200, body)) => {
            match serde_json::from_str::<tessel_service::wire::ClusterStatusResponse>(&body) {
                Ok(status) => {
                    for peer in status.peers {
                        if !targets.contains(&peer.addr) {
                            targets.push(peer.addr);
                        }
                    }
                }
                Err(e) => eprintln!("warning: unparseable /v1/cluster response: {e}"),
            }
        }
        Ok((404, _)) => eprintln!("warning: {addr} is not in cluster mode; watching it alone"),
        Ok((status, _)) => eprintln!("warning: /v1/cluster returned status {status}"),
        Err(e) => eprintln!("warning: cannot reach {addr} for membership: {e}"),
    }
    targets
}

fn call(addr: &str, method: &str, path: &str, body: Option<&str>) -> ! {
    match http_call(addr, method, path, body) {
        Ok((status, body)) => {
            println!("{body}");
            exit(if (200..300).contains(&status) { 0 } else { 1 })
        }
        Err(e) => {
            eprintln!("error: cannot reach {addr}: {e}");
            exit(1)
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7700".to_string();
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    // Global --addr may appear before the command.
    if args.len() >= 2 && args[0] == "--addr" {
        addr = args[1].clone();
        args.drain(0..2);
    }
    let Some(command) = args.first().cloned() else {
        usage()
    };
    let rest = &args[1..];

    match command.as_str() {
        "health" => call(&addr, "GET", "/healthz", None),
        "metrics" => call(&addr, "GET", "/metrics", None),
        "cache" => call(&addr, "GET", "/v1/cache", None),
        "inspect" => {
            let Some(fingerprint) = rest.first() else {
                eprintln!("error: inspect needs a fingerprint");
                usage()
            };
            call(&addr, "GET", &format!("/v1/cache/{fingerprint}"), None)
        }
        "cluster" => {
            let path = match rest {
                [] => "/v1/cluster".to_string(),
                [flag, fingerprint] if flag == "--fp" => format!("/v1/cluster?fp={fingerprint}"),
                _ => {
                    eprintln!("error: cluster takes an optional --fp FINGERPRINT");
                    usage()
                }
            };
            call(&addr, "GET", &path, None)
        }
        "top" => {
            let mut interval_ms = 1000u64;
            let mut window = 60usize;
            let mut cluster = false;
            let mut once = false;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--interval-ms" => {
                        interval_ms = match it.next().and_then(|v| v.parse().ok()) {
                            Some(ms) => ms,
                            None => {
                                eprintln!("error: --interval-ms needs a millisecond count");
                                usage()
                            }
                        };
                    }
                    "--window" => {
                        window = match it.next().and_then(|v| v.parse().ok()) {
                            Some(n) if n >= 1 => n,
                            _ => {
                                eprintln!("error: --window needs a tick count of at least 1");
                                usage()
                            }
                        };
                    }
                    "--cluster" => cluster = true,
                    "--once" => once = true,
                    other => {
                        eprintln!("error: unknown top flag `{other}`");
                        usage()
                    }
                }
            }
            let targets = top_targets(&addr, cluster);
            loop {
                let mut frame = String::new();
                for target in &targets {
                    render_top_frame(target, window, &mut frame);
                }
                if once {
                    print!("{frame}");
                    exit(0)
                }
                // One ANSI clear + home per refresh keeps the dashboard
                // in place instead of scrolling.
                print!("\x1b[2J\x1b[H{frame}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
            }
        }
        "fingerprint" => {
            let mut placement_file = None;
            let mut shape = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--placement-file" => placement_file = it.next().map(String::as_str),
                    "--shape" => shape = it.next().map(String::as_str),
                    other => {
                        eprintln!("error: unknown fingerprint flag `{other}`");
                        usage()
                    }
                }
            }
            let Some(placement) = placement_from_flags(placement_file, shape) else {
                eprintln!("error: fingerprint needs --placement-file or --shape");
                usage()
            };
            println!("{}", placement.canonicalize().fingerprint);
            exit(0)
        }
        "search" => {
            let mut placement_file = None;
            let mut shape = None;
            let mut rotate_devices = 0usize;
            let mut request_micro_batches = None;
            let mut request_max_repetend = None;
            let mut deadline_ms = None;
            let mut solver_threads = None;
            let mut priority = None;
            let mut repeat = 1usize;
            let mut timing = false;
            let mut stream = false;
            let mut dry_run = false;
            let mut batch_file: Option<String> = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--placement-file" => {
                        let Some(path) = it.next() else { usage() };
                        placement_file = Some(path.as_str());
                    }
                    "--batch-file" => {
                        let Some(path) = it.next() else { usage() };
                        batch_file = Some(path.clone());
                    }
                    "--shape" => {
                        let Some(spec) = it.next() else { usage() };
                        shape = Some(spec.as_str());
                    }
                    "--rotate-devices" => {
                        rotate_devices = match it.next().and_then(|v| v.parse().ok()) {
                            Some(n) => n,
                            None => {
                                eprintln!("error: --rotate-devices needs a count");
                                usage()
                            }
                        };
                    }
                    "--micro-batches" => {
                        request_micro_batches = it.next().and_then(|v| v.parse().ok());
                    }
                    "--max-repetend" => {
                        request_max_repetend = it.next().and_then(|v| v.parse().ok());
                    }
                    "--deadline-ms" => {
                        deadline_ms = it.next().and_then(|v| v.parse().ok());
                    }
                    "--solver-threads" => {
                        solver_threads = it.next().and_then(|v| v.parse().ok());
                    }
                    "--priority" => {
                        priority = it.next().and_then(|v| v.parse().ok());
                    }
                    "--timing" => timing = true,
                    "--stream" => stream = true,
                    "--dry-run" => dry_run = true,
                    "--repeat" => {
                        repeat = match it.next().and_then(|v| v.parse().ok()) {
                            Some(n) if n >= 1 => n,
                            _ => {
                                eprintln!("error: --repeat needs a count of at least 1");
                                usage()
                            }
                        };
                    }
                    other => {
                        eprintln!("error: unknown search flag `{other}`");
                        usage()
                    }
                }
            }
            if let Some(path) = batch_file {
                // Batch mode: the file carries the requests; every other
                // shaping flag is ignored.
                let text = match std::fs::read_to_string(&path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("error: cannot read {path}: {e}");
                        exit(1)
                    }
                };
                // Accept either a full batch body or a bare array of
                // requests (wrapped here).
                let body =
                    match serde_json::from_str::<tessel_service::wire::BatchSearchRequest>(&text) {
                        Ok(batch) => match serde_json::to_string(&batch) {
                            Ok(body) => body,
                            Err(e) => {
                                eprintln!("error: cannot serialize batch: {e}");
                                exit(1)
                            }
                        },
                        Err(_) => match serde_json::from_str::<Vec<SearchRequest>>(&text) {
                            Ok(requests) => {
                                let batch = tessel_service::wire::BatchSearchRequest { requests };
                                match serde_json::to_string(&batch) {
                                    Ok(body) => body,
                                    Err(e) => {
                                        eprintln!("error: cannot serialize batch: {e}");
                                        exit(1)
                                    }
                                }
                            }
                            Err(e) => {
                                eprintln!("error: {path} is not a batch of search requests: {e}");
                                exit(1)
                            }
                        },
                    };
                if dry_run {
                    println!("{body}");
                    exit(0)
                }
                call(&addr, "POST", "/v1/search/batch", Some(&body))
            }
            let Some(mut placement) = placement_from_flags(placement_file, shape) else {
                eprintln!("error: search needs --placement-file, --shape or --batch-file");
                usage()
            };
            if rotate_devices > 0 {
                // Relabel device d as (d + N) mod D, keeping block order.
                // The canonical fingerprint is invariant under this, so a
                // clustered daemon still serves the rotated request from the
                // shared logical cache.
                let d = placement.num_devices();
                let perm: Vec<usize> = (0..d).map(|dev| (dev + rotate_devices) % d).collect();
                let order: Vec<usize> = (0..placement.num_blocks()).collect();
                placement = match placement.permuted(&perm, &order) {
                    Ok(rotated) => rotated,
                    Err(e) => {
                        eprintln!("error: cannot rotate devices: {e}");
                        exit(1)
                    }
                };
            }
            let request = SearchRequest {
                placement,
                num_micro_batches: request_micro_batches,
                max_repetend_micro_batches: request_max_repetend,
                deadline_ms,
                solver_threads,
                priority,
            };
            let body = match serde_json::to_string(&request) {
                Ok(body) => body,
                Err(e) => {
                    eprintln!("error: cannot serialize request: {e}");
                    exit(1)
                }
            };
            if dry_run {
                println!("{body}");
                exit(0)
            }
            if stream {
                // Anytime mode: incumbents narrate on stderr as the daemon
                // proves them; stdout stays pure final-response JSON.
                let begun = std::time::Instant::now();
                let outcome = http_call_streaming(&addr, "/v1/search?stream=1", &body, |event| {
                    if let Ok(StreamEvent::Incumbent { value, elapsed_ms }) =
                        serde_json::from_str::<StreamEvent>(event)
                    {
                        eprintln!(
                            "incumbent: period<={value} server={elapsed_ms}ms client={}ms",
                            begun.elapsed().as_millis()
                        );
                    }
                });
                match outcome {
                    Ok((status, last)) => match serde_json::from_str::<StreamEvent>(&last) {
                        Ok(StreamEvent::Result(response)) => {
                            match serde_json::to_string(&response) {
                                Ok(rendered) => println!("{rendered}"),
                                Err(_) => println!("{last}"),
                            }
                            exit(0)
                        }
                        Ok(StreamEvent::Error { status, body }) => {
                            eprintln!("error: search failed with status {status}");
                            match serde_json::to_string(&body) {
                                Ok(rendered) => println!("{rendered}"),
                                Err(_) => println!("{last}"),
                            }
                            exit(1)
                        }
                        // A non-streamed transport error (shed, queue full):
                        // the payload is a plain error body.
                        _ => {
                            println!("{last}");
                            exit(i32::from(!(200..300).contains(&status)))
                        }
                    },
                    Err(e) => {
                        eprintln!("error: streaming request failed: {e}");
                        exit(1)
                    }
                }
            }
            // One kept-alive connection carries every repeat: the first
            // request warms the daemon's cache, later ones exercise the
            // keep-alive transport and report `"cached":true`.
            let mut client = match HttpClient::new(&addr) {
                Ok(client) => client,
                Err(e) => {
                    eprintln!("error: cannot reach {addr}: {e}");
                    exit(1)
                }
            };
            let mut all_ok = true;
            for _ in 0..repeat {
                match client.call_with_headers("POST", "/v1/search", Some(&body), &[]) {
                    Ok((status, headers, response)) => {
                        println!("{response}");
                        if timing {
                            print_timing(&headers);
                        }
                        all_ok &= (200..300).contains(&status);
                    }
                    Err(e) => {
                        eprintln!("error: request failed: {e}");
                        exit(1)
                    }
                }
            }
            exit(i32::from(!all_ok))
        }
        _ => usage(),
    }
}
