//! `tessel-server`: the schedule-search daemon.
//!
//! ```bash
//! tessel-server --addr 127.0.0.1:7700 --workers 4 --cache-file tessel-cache.json
//! ```
//!
//! Prints the bound address on startup (useful with `--addr 127.0.0.1:0`)
//! and serves until killed. See the crate docs for the HTTP routes.
//!
//! A fleet of daemons shares one logical cache when each member is started
//! with its own `--node-id` and a `--peer ID=HOST:PORT` flag per sibling:
//!
//! ```bash
//! tessel-server --addr 127.0.0.1:7700 --node-id a --peer b=127.0.0.1:7701
//! tessel-server --addr 127.0.0.1:7701 --node-id b --peer a=127.0.0.1:7700
//! ```

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;
use tessel_service::{
    ClusterConfig, HttpServer, PeerConfig, ScheduleService, ServerConfig, ServiceConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: tessel-server [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20                  [--shed-policy least-valuable|reject-newest]\n\
         \x20                  [--idle-timeout-ms MS] [--max-pipelined N]\n\
         \x20                  [--max-conns-per-ip N] [--sample-interval-ms MS]\n\
         \x20                  [--cache-file PATH] [--cache-capacity N] [--cache-shards N]\n\
         \x20                  [--journal-compact-every N]\n\
         \x20                  [--portfolio-threads N] [--micro-batches N] [--max-repetend N]\n\
         \x20                  [--solver-threads N] [--max-solver-threads N]\n\
         \x20                  [--solver-steal-depth N] [--solver-memo-shards N]\n\
         \x20                  [--default-deadline-ms MS]\n\
         \x20                  [--node-id ID] [--peer ID=HOST:PORT]...\n\
         \x20                  [--cluster-vnodes N] [--probe-interval-ms MS]\n\
         \x20                  [--peer-timeout-ms MS] [--circuit-cooldown-ms MS]\n\
         \x20                  [--paranoid-fingerprints] [--canon-node-budget N]\n\
         \x20                  [--log-level error|warn|info|debug|trace]\n\
         \x20                  [--log-format text|json]\n\
         \n\
         logging goes to stderr; --log-format json emits one JSON object\n\
         per line (each served request logs one line carrying its trace ID).\n\
         \n\
         cluster mode: give this daemon a --node-id and one --peer flag per\n\
         sibling; the fleet then shares one logical cache sharded by a\n\
         consistent-hash ring over the canonical placement fingerprint.\n\
         \n\
         --shed-policy picks what a full request queue does: least-valuable\n\
         (default) admits the newcomer and sheds the waiting request with\n\
         the lowest priority / largest queue share / latest deadline (429 +\n\
         Retry-After); reject-newest refuses the newcomer with 503.\n\
         \n\
         --sample-interval-ms sets the live-plane sampling cadence behind\n\
         GET /v1/debug/timeseries and `tessel-client top` (default 1000;\n\
         0 disables the sampler)."
    );
    exit(2)
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(parsed) => parsed,
        None => {
            eprintln!("error: {flag} needs a valid value");
            usage()
        }
    }
}

fn main() {
    let mut server_config = ServerConfig::default();
    let mut service_config = ServiceConfig::default();
    let mut log_level = tessel_obs::Level::Info;
    let mut log_format = tessel_obs::LogFormat::Text;
    let mut node_id: Option<String> = None;
    let mut peers: Vec<PeerConfig> = Vec::new();
    let mut cluster_vnodes: Option<usize> = None;
    let mut probe_interval: Option<Duration> = None;
    let mut peer_timeout: Option<Duration> = None;
    let mut circuit_cooldown: Option<Duration> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => server_config.addr = parse_value(&flag, args.next()),
            "--workers" => server_config.workers = parse_value(&flag, args.next()),
            "--queue-depth" => server_config.queue_depth = parse_value(&flag, args.next()),
            "--shed-policy" => server_config.shed_policy = parse_value(&flag, args.next()),
            "--idle-timeout-ms" => {
                server_config.idle_timeout = Duration::from_millis(parse_value(&flag, args.next()));
            }
            "--max-pipelined" => server_config.max_pipelined = parse_value(&flag, args.next()),
            "--max-conns-per-ip" => {
                server_config.max_conns_per_ip = parse_value(&flag, args.next());
            }
            "--sample-interval-ms" => {
                server_config.sample_interval_ms = parse_value(&flag, args.next());
            }
            "--cache-file" => {
                service_config.cache_path = Some(parse_value::<String>(&flag, args.next()).into());
            }
            "--cache-capacity" => {
                service_config.cache.capacity_per_shard = parse_value(&flag, args.next());
            }
            "--cache-shards" => service_config.cache.shards = parse_value(&flag, args.next()),
            "--journal-compact-every" => {
                service_config.journal_compact_every = parse_value(&flag, args.next());
            }
            "--portfolio-threads" => {
                service_config.portfolio_threads = parse_value(&flag, args.next());
            }
            "--solver-threads" => {
                service_config.solver_threads = parse_value(&flag, args.next());
            }
            "--max-solver-threads" => {
                service_config.max_solver_threads = parse_value(&flag, args.next());
            }
            "--solver-steal-depth" => {
                service_config.solver_steal_depth = parse_value(&flag, args.next());
            }
            "--solver-memo-shards" => {
                service_config.solver_memo_shards = parse_value(&flag, args.next());
            }
            "--micro-batches" => {
                service_config.default_micro_batches = parse_value(&flag, args.next());
            }
            "--max-repetend" => {
                service_config.default_max_repetend = parse_value(&flag, args.next());
            }
            "--default-deadline-ms" => {
                service_config.default_deadline =
                    Some(Duration::from_millis(parse_value(&flag, args.next())));
            }
            "--paranoid-fingerprints" => service_config.paranoid_fingerprints = true,
            "--canon-node-budget" => {
                service_config.canon_node_budget = parse_value(&flag, args.next());
            }
            "--log-level" => log_level = parse_value(&flag, args.next()),
            "--log-format" => log_format = parse_value(&flag, args.next()),
            "--node-id" => node_id = Some(parse_value(&flag, args.next())),
            "--peer" => {
                let spec: String = parse_value(&flag, args.next());
                let Some((id, addr)) = spec.split_once('=') else {
                    eprintln!("error: --peer needs ID=HOST:PORT, got `{spec}`");
                    usage()
                };
                peers.push(PeerConfig {
                    node_id: id.to_string(),
                    addr: addr.to_string(),
                });
            }
            "--cluster-vnodes" => cluster_vnodes = Some(parse_value(&flag, args.next())),
            "--probe-interval-ms" => {
                probe_interval = Some(Duration::from_millis(parse_value(&flag, args.next())));
            }
            "--peer-timeout-ms" => {
                peer_timeout = Some(Duration::from_millis(parse_value(&flag, args.next())));
            }
            "--circuit-cooldown-ms" => {
                circuit_cooldown = Some(Duration::from_millis(parse_value(&flag, args.next())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage()
            }
        }
    }

    tessel_obs::init(log_level, log_format);

    match &node_id {
        Some(node_id) => {
            let mut cluster = ClusterConfig::new(node_id.clone(), peers);
            if let Some(vnodes) = cluster_vnodes {
                cluster.vnodes = vnodes;
            }
            if let Some(interval) = probe_interval {
                cluster.probe_interval = interval;
            }
            if let Some(timeout) = peer_timeout {
                cluster.peer_timeout = timeout;
            }
            if let Some(cooldown) = circuit_cooldown {
                cluster.circuit_cooldown = cooldown;
            }
            service_config.cluster = Some(cluster);
        }
        None => {
            // Cluster flags without an identity would be silently dead
            // configuration; refuse instead.
            let stray_cluster_flag = !peers.is_empty()
                || cluster_vnodes.is_some()
                || probe_interval.is_some()
                || peer_timeout.is_some()
                || circuit_cooldown.is_some();
            if stray_cluster_flag {
                eprintln!("error: cluster flags (--peer, --cluster-vnodes, --probe-interval-ms, --peer-timeout-ms, --circuit-cooldown-ms) require --node-id");
                usage()
            }
        }
    }

    let service = match ScheduleService::new(service_config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            tessel_obs::error(
                "server",
                "cannot initialise service",
                &[("error", &e.to_string())],
            );
            exit(1);
        }
    };
    let warm = service.cache_entries().len();
    let server = match HttpServer::serve(service.clone(), &server_config) {
        Ok(server) => server,
        Err(e) => {
            tessel_obs::error(
                "server",
                "cannot bind listen address",
                &[("addr", &server_config.addr), ("error", &e.to_string())],
            );
            exit(1);
        }
    };
    // Stdout keeps the one line scripts grep for (`--addr 127.0.0.1:0`
    // discovery); everything else goes through the structured logger.
    println!("tessel-server listening on http://{}", server.local_addr());
    tessel_obs::info(
        "server",
        "listening",
        &[("addr", &server.local_addr().to_string())],
    );
    if warm > 0 {
        tessel_obs::info(
            "server",
            "cache warm-started from journal",
            &[("entries", &warm.to_string())],
        );
    }
    if let Some(cluster) = service.cluster() {
        tessel_obs::info(
            "server",
            "cluster member starting",
            &[
                ("node", cluster.node_id()),
                ("ring", &format!("{:?}", cluster.ring().nodes())),
            ],
        );
        // Warm this node's shard of the logical cache from its peers without
        // delaying readiness: the daemon serves (solving if needed) while
        // the stream runs. (`warm_from_peers` logs the summary, with the
        // warm-up trace ID.)
        let warmer = service.clone();
        std::thread::spawn(move || {
            warmer.warm_cache_from_peers();
        });
    }
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
