//! `tessel-server`: the schedule-search daemon.
//!
//! ```bash
//! tessel-server --addr 127.0.0.1:7700 --workers 4 --cache-file tessel-cache.json
//! ```
//!
//! Prints the bound address on startup (useful with `--addr 127.0.0.1:0`)
//! and serves until killed. See the crate docs for the HTTP routes.

use std::process::exit;
use std::sync::Arc;
use std::time::Duration;
use tessel_service::{HttpServer, ScheduleService, ServerConfig, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tessel-server [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20                  [--idle-timeout-ms MS] [--max-pipelined N]\n\
         \x20                  [--cache-file PATH] [--cache-capacity N] [--cache-shards N]\n\
         \x20                  [--portfolio-threads N] [--micro-batches N] [--max-repetend N]\n\
         \x20                  [--solver-threads N] [--max-solver-threads N]\n\
         \x20                  [--solver-steal-depth N] [--solver-memo-shards N]\n\
         \x20                  [--default-deadline-ms MS]"
    );
    exit(2)
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(parsed) => parsed,
        None => {
            eprintln!("error: {flag} needs a valid value");
            usage()
        }
    }
}

fn main() {
    let mut server_config = ServerConfig::default();
    let mut service_config = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => server_config.addr = parse_value(&flag, args.next()),
            "--workers" => server_config.workers = parse_value(&flag, args.next()),
            "--queue-depth" => server_config.queue_depth = parse_value(&flag, args.next()),
            "--idle-timeout-ms" => {
                server_config.idle_timeout = Duration::from_millis(parse_value(&flag, args.next()));
            }
            "--max-pipelined" => server_config.max_pipelined = parse_value(&flag, args.next()),
            "--cache-file" => {
                service_config.cache_path = Some(parse_value::<String>(&flag, args.next()).into());
            }
            "--cache-capacity" => {
                service_config.cache.capacity_per_shard = parse_value(&flag, args.next());
            }
            "--cache-shards" => service_config.cache.shards = parse_value(&flag, args.next()),
            "--portfolio-threads" => {
                service_config.portfolio_threads = parse_value(&flag, args.next());
            }
            "--solver-threads" => {
                service_config.solver_threads = parse_value(&flag, args.next());
            }
            "--max-solver-threads" => {
                service_config.max_solver_threads = parse_value(&flag, args.next());
            }
            "--solver-steal-depth" => {
                service_config.solver_steal_depth = parse_value(&flag, args.next());
            }
            "--solver-memo-shards" => {
                service_config.solver_memo_shards = parse_value(&flag, args.next());
            }
            "--micro-batches" => {
                service_config.default_micro_batches = parse_value(&flag, args.next());
            }
            "--max-repetend" => {
                service_config.default_max_repetend = parse_value(&flag, args.next());
            }
            "--default-deadline-ms" => {
                service_config.default_deadline =
                    Some(Duration::from_millis(parse_value(&flag, args.next())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag `{other}`");
                usage()
            }
        }
    }

    let service = match ScheduleService::new(service_config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("error: cannot initialise service: {e}");
            exit(1);
        }
    };
    let warm = service.cache_entries().len();
    let server = match HttpServer::serve(service, &server_config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", server_config.addr);
            exit(1);
        }
    };
    println!("tessel-server listening on http://{}", server.local_addr());
    if warm > 0 {
        println!("cache warm-started with {warm} entries");
    }
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
