//! Daemon metrics: request counters, in-flight gauge, latency quantiles and
//! real Prometheus histograms.
//!
//! Counters are plain relaxed atomics (the hot path adds a handful of
//! `fetch_add`s per request). Latency is tracked two ways: a fixed
//! power-of-two histogram — bucket `i` counts requests that finished in
//! `[2^i, 2^(i+1))` microseconds — from which the JSON snapshot's p50/p99
//! estimates derive, plus [`tessel_obs::Histogram`] families with per-endpoint
//! (`tessel_http_request_duration_seconds`) and per-stage
//! (`tessel_request_stage_duration_seconds`) labels, exported as
//! `_bucket`/`_sum`/`_count` series. The whole struct renders to Prometheus
//! text exposition format for `GET /metrics`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use tessel_obs::{render_prometheus_histogram, Histogram};
use tessel_solver::SolverTotals;

/// Number of power-of-two latency buckets (`2^39` µs ≈ 6.4 days).
const BUCKETS: usize = 40;

/// The fixed label set of the per-endpoint request-duration histogram family.
///
/// Paths are coarsened to this set by [`ServiceMetrics::endpoint_label`] so an
/// attacker probing random URLs cannot mint unbounded label values.
pub const ENDPOINT_LABELS: [&str; 12] = [
    "/v1/search",
    "/v1/search/batch",
    "/v1/cache",
    "/v1/cluster",
    "/v1/debug/requests",
    "/v1/debug/inflight",
    "/v1/debug/timeseries",
    "/v1/debug/trace",
    "/v1/debug/loglevel",
    "/metrics",
    "/healthz",
    "other",
];

/// The fixed label set of the per-stage duration histogram family — the span
/// taxonomy of the request lifecycle (see `docs/ARCHITECTURE.md`).
pub const STAGE_LABELS: [&str; 11] = [
    "parse",
    "queue_wait",
    "cache_lookup",
    "singleflight_wait",
    "remote_fetch",
    "solve",
    "solver_warmstart",
    "solver_parallel",
    "translate",
    "serialize",
    "write",
];

/// Live metrics of a [`crate::ScheduleService`].
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Total search requests received.
    pub requests: AtomicU64,
    /// Requests served from the cache.
    pub cache_hits: AtomicU64,
    /// Requests that ran a full search.
    pub cache_misses: AtomicU64,
    /// Requests coalesced onto another request's in-flight search.
    pub coalesced: AtomicU64,
    /// Requests that failed with a deadline timeout.
    pub timeouts: AtomicU64,
    /// Requests that failed for any other reason.
    pub errors: AtomicU64,
    /// Searches currently running.
    pub in_flight: AtomicU64,
    /// Exact-solver invocations across all completed searches.
    pub solver_solves: AtomicU64,
    /// Branch-and-bound nodes expanded across all completed searches.
    pub solver_nodes: AtomicU64,
    /// Solver nodes pruned by the makespan lower bound.
    pub solver_pruned_bound: AtomicU64,
    /// Solver nodes pruned by state dominance.
    pub solver_pruned_dominance: AtomicU64,
    /// Subtree tasks stolen between parallel solver workers.
    pub solver_steals: AtomicU64,
    /// Dominance prunes served by a record another solver worker inserted.
    pub solver_shared_memo_hits: AtomicU64,
    /// Contention events (lost CAS races, discarded seqlock reads, skipped mid-build segments) in the solver's lock-free shared structures.
    pub solver_cas_retries: AtomicU64,
    /// Solver steal attempts that lost the deque-`top` race.
    pub solver_steal_failures: AtomicU64,
    /// Finish vectors the solver's bounded-probe dominance table declined to
    /// memoise.
    pub solver_memo_drops: AtomicU64,
    /// Canonical-form mismatches caught by the `--paranoid-fingerprints`
    /// lookup re-comparison that trusted fingerprint equality would have
    /// accepted. Any nonzero value means the exact canonical labeling broke
    /// its contract.
    pub fingerprint_paranoia_mismatches: AtomicU64,
    /// Replication/warm-up entries rejected because the shipped placement
    /// did not re-canonicalize to its claimed fingerprint. This check runs
    /// unconditionally (it is the only defence against a consistent but
    /// mislabeled peer payload); nonzero means a peer is confused or hostile.
    pub fingerprint_wire_mismatches: AtomicU64,
    /// Canonical-labeling searches that hit the node budget and completed
    /// greedily (see `tessel_core::fingerprint::DEFAULT_NODE_BUDGET`).
    pub canon_budget_exhausted: AtomicU64,
    /// Batch-search members answered by another member of the same batch
    /// (same canonical fingerprint — the solver ran at most once for the
    /// whole group).
    pub batch_deduped: AtomicU64,
    /// Journal records dropped at startup because their stored fingerprint no
    /// longer matched re-canonicalization of the stored placement (dead
    /// weight from an older labeling scheme).
    pub journal_stale_dropped: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
    /// Request-duration histograms, one per [`ENDPOINT_LABELS`] entry.
    endpoint_durations: [Histogram; ENDPOINT_LABELS.len()],
    /// Stage-duration histograms, one per [`STAGE_LABELS`] entry.
    stage_durations: [Histogram; STAGE_LABELS.len()],
}

/// Point-in-time snapshot of [`ServiceMetrics`] (plus cache gauges), served
/// as JSON by the in-process API and rendered to Prometheus text for
/// `/metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Total search requests received.
    pub requests: u64,
    /// Requests served from the cache.
    pub cache_hits: u64,
    /// Requests that ran a full search.
    pub cache_misses: u64,
    /// Requests coalesced onto an in-flight search.
    pub coalesced: u64,
    /// Requests that failed with a deadline timeout.
    pub timeouts: u64,
    /// Requests that failed for any other reason.
    pub errors: u64,
    /// Searches currently running.
    pub in_flight: u64,
    /// Exact-solver invocations across all completed searches.
    pub solver_solves: u64,
    /// Branch-and-bound nodes expanded across all completed searches.
    pub solver_nodes: u64,
    /// Solver nodes pruned by the makespan lower bound.
    pub solver_pruned_bound: u64,
    /// Solver nodes pruned by state dominance.
    pub solver_pruned_dominance: u64,
    /// Subtree tasks stolen between parallel solver workers.
    pub solver_steals: u64,
    /// Dominance prunes served by a record another solver worker inserted.
    pub solver_shared_memo_hits: u64,
    /// Contention events (lost CAS races, discarded seqlock reads, skipped mid-build segments) in the solver's lock-free shared structures.
    #[serde(default)]
    pub solver_cas_retries: u64,
    /// Solver steal attempts that lost the deque-`top` race.
    #[serde(default)]
    pub solver_steal_failures: u64,
    /// Finish vectors the solver's bounded-probe dominance table declined to
    /// memoise.
    #[serde(default)]
    pub solver_memo_drops: u64,
    /// Canonical-form mismatches caught by the `--paranoid-fingerprints`
    /// lookup re-comparison that trusted fingerprint equality would have
    /// accepted.
    #[serde(default)]
    pub fingerprint_paranoia_mismatches: u64,
    /// Replication/warm-up entries rejected because the shipped placement
    /// did not re-canonicalize to its claimed fingerprint (always checked).
    #[serde(default)]
    pub fingerprint_wire_mismatches: u64,
    /// Canonical-labeling searches that hit the node budget and completed
    /// greedily.
    #[serde(default)]
    pub canon_budget_exhausted: u64,
    /// Batch-search members deduplicated within their batch.
    #[serde(default)]
    pub batch_deduped: u64,
    /// Stale journal records dropped by startup compaction.
    #[serde(default)]
    pub journal_stale_dropped: u64,
    /// Cache hit rate over all completed requests (0 when idle).
    pub hit_rate: f64,
    /// Entries currently cached.
    pub cache_entries: u64,
    /// LRU evictions so far.
    pub cache_evictions: u64,
    /// Median request latency, milliseconds (bucket upper bound).
    pub latency_p50_ms: f64,
    /// 99th-percentile request latency, milliseconds (bucket upper bound).
    pub latency_p99_ms: f64,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics {
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            solver_solves: AtomicU64::new(0),
            solver_nodes: AtomicU64::new(0),
            solver_pruned_bound: AtomicU64::new(0),
            solver_pruned_dominance: AtomicU64::new(0),
            solver_steals: AtomicU64::new(0),
            solver_shared_memo_hits: AtomicU64::new(0),
            solver_cas_retries: AtomicU64::new(0),
            solver_steal_failures: AtomicU64::new(0),
            solver_memo_drops: AtomicU64::new(0),
            fingerprint_paranoia_mismatches: AtomicU64::new(0),
            fingerprint_wire_mismatches: AtomicU64::new(0),
            canon_budget_exhausted: AtomicU64::new(0),
            batch_deduped: AtomicU64::new(0),
            journal_stale_dropped: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            endpoint_durations: std::array::from_fn(|_| Histogram::new()),
            stage_durations: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

impl ServiceMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        ServiceMetrics::default()
    }

    /// Folds one completed search's aggregate solver effort into the
    /// daemon-lifetime counters.
    pub fn record_solver(&self, totals: &SolverTotals) {
        self.solver_solves
            .fetch_add(totals.solves, Ordering::Relaxed);
        self.solver_nodes.fetch_add(totals.nodes, Ordering::Relaxed);
        self.solver_pruned_bound
            .fetch_add(totals.pruned_bound, Ordering::Relaxed);
        self.solver_pruned_dominance
            .fetch_add(totals.pruned_dominance, Ordering::Relaxed);
        self.solver_steals
            .fetch_add(totals.steals, Ordering::Relaxed);
        self.solver_shared_memo_hits
            .fetch_add(totals.shared_memo_hits, Ordering::Relaxed);
        self.solver_cas_retries
            .fetch_add(totals.cas_retries, Ordering::Relaxed);
        self.solver_steal_failures
            .fetch_add(totals.steal_failures, Ordering::Relaxed);
        self.solver_memo_drops
            .fetch_add(totals.memo_drops, Ordering::Relaxed);
    }

    /// Records one completed request's wall-clock latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let micros = elapsed.as_micros().max(1) as u64;
        let bucket = (63 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Coarsens a request path to its [`ENDPOINT_LABELS`] entry.
    #[must_use]
    pub fn endpoint_label(path: &str) -> &'static str {
        if path == "/v1/search" {
            "/v1/search"
        } else if path == "/v1/search/batch" {
            "/v1/search/batch"
        } else if path == "/v1/cache" || path.starts_with("/v1/cache/") {
            "/v1/cache"
        } else if path == "/v1/cluster" || path.starts_with("/v1/cluster/") {
            "/v1/cluster"
        } else if path == "/v1/debug/requests" {
            "/v1/debug/requests"
        } else if path == "/v1/debug/inflight" {
            "/v1/debug/inflight"
        } else if path == "/v1/debug/timeseries" {
            "/v1/debug/timeseries"
        } else if path == "/v1/debug/trace" || path.starts_with("/v1/debug/trace/") {
            "/v1/debug/trace"
        } else if path == "/v1/debug/loglevel" {
            "/v1/debug/loglevel"
        } else if path == "/metrics" {
            "/metrics"
        } else if path == "/healthz" {
            "/healthz"
        } else {
            "other"
        }
    }

    /// Records one completed request into the per-endpoint duration
    /// histogram. `label` must come from [`ServiceMetrics::endpoint_label`];
    /// anything else lands under `other`.
    pub fn observe_endpoint_micros(&self, label: &str, micros: u64) {
        let index = ENDPOINT_LABELS
            .iter()
            .position(|&known| known == label)
            .unwrap_or(ENDPOINT_LABELS.len() - 1);
        self.endpoint_durations[index].observe_micros(micros);
    }

    /// Records one stage duration into the per-stage histogram family.
    /// Stages outside [`STAGE_LABELS`] are dropped — the label set stays
    /// fixed by construction.
    pub fn observe_stage_micros(&self, stage: &str, micros: u64) {
        if let Some(index) = STAGE_LABELS.iter().position(|&known| known == stage) {
            self.stage_durations[index].observe_micros(micros);
        }
    }

    /// Renders the request-duration and stage-duration histogram families in
    /// Prometheus text exposition format (appended to `GET /metrics` after
    /// the counter blocks).
    #[must_use]
    pub fn render_histograms(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP tessel_http_request_duration_seconds End-to-end request duration by endpoint.\n",
        );
        out.push_str("# TYPE tessel_http_request_duration_seconds histogram\n");
        for (label, histogram) in ENDPOINT_LABELS.iter().zip(&self.endpoint_durations) {
            render_prometheus_histogram(
                &mut out,
                "tessel_http_request_duration_seconds",
                &format!("endpoint=\"{label}\""),
                histogram,
            );
        }
        out.push_str(
            "# HELP tessel_request_stage_duration_seconds Time spent per request-lifecycle stage.\n",
        );
        out.push_str("# TYPE tessel_request_stage_duration_seconds histogram\n");
        for (label, histogram) in STAGE_LABELS.iter().zip(&self.stage_durations) {
            render_prometheus_histogram(
                &mut out,
                "tessel_request_stage_duration_seconds",
                &format!("stage=\"{label}\""),
                histogram,
            );
        }
        out
    }

    /// Estimates the `q`-quantile (0..=1) of recorded latencies in
    /// milliseconds, as the upper bound of the containing bucket.
    #[must_use]
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .latency_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper_micros = 1u64 << (i + 1).min(63);
                return upper_micros as f64 / 1000.0;
            }
        }
        f64::from(u32::MAX)
    }

    /// Takes a consistent-enough snapshot (individual counters are read with
    /// relaxed ordering; exactness across counters is not required).
    #[must_use]
    pub fn snapshot(&self, cache_entries: u64, cache_evictions: u64) -> MetricsSnapshot {
        let requests = self.requests.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let served = hits + misses;
        MetricsSnapshot {
            requests,
            cache_hits: hits,
            cache_misses: misses,
            coalesced: self.coalesced.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            solver_solves: self.solver_solves.load(Ordering::Relaxed),
            solver_nodes: self.solver_nodes.load(Ordering::Relaxed),
            solver_pruned_bound: self.solver_pruned_bound.load(Ordering::Relaxed),
            solver_pruned_dominance: self.solver_pruned_dominance.load(Ordering::Relaxed),
            solver_steals: self.solver_steals.load(Ordering::Relaxed),
            solver_shared_memo_hits: self.solver_shared_memo_hits.load(Ordering::Relaxed),
            solver_cas_retries: self.solver_cas_retries.load(Ordering::Relaxed),
            solver_steal_failures: self.solver_steal_failures.load(Ordering::Relaxed),
            solver_memo_drops: self.solver_memo_drops.load(Ordering::Relaxed),
            fingerprint_paranoia_mismatches: self
                .fingerprint_paranoia_mismatches
                .load(Ordering::Relaxed),
            fingerprint_wire_mismatches: self.fingerprint_wire_mismatches.load(Ordering::Relaxed),
            canon_budget_exhausted: self.canon_budget_exhausted.load(Ordering::Relaxed),
            batch_deduped: self.batch_deduped.load(Ordering::Relaxed),
            journal_stale_dropped: self.journal_stale_dropped.load(Ordering::Relaxed),
            hit_rate: if served == 0 {
                0.0
            } else {
                hits as f64 / served as f64
            },
            cache_entries,
            cache_evictions,
            latency_p50_ms: self.latency_quantile_ms(0.50),
            latency_p99_ms: self.latency_quantile_ms(0.99),
        }
    }
}

impl MetricsSnapshot {
    /// Renders the snapshot in Prometheus text exposition format.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: f64| {
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            out.push_str(&format!("# HELP tessel_{name} {help}\n"));
            out.push_str(&format!("# TYPE tessel_{name} {kind}\n"));
            out.push_str(&format!("tessel_{name} {value}\n"));
        };
        counter(
            "requests_total",
            "Search requests received.",
            self.requests as f64,
        );
        counter(
            "cache_hits_total",
            "Requests served from the result cache.",
            self.cache_hits as f64,
        );
        counter(
            "cache_misses_total",
            "Requests that ran a full search.",
            self.cache_misses as f64,
        );
        counter(
            "coalesced_total",
            "Requests coalesced onto an in-flight search.",
            self.coalesced as f64,
        );
        counter(
            "timeouts_total",
            "Requests that exceeded their deadline.",
            self.timeouts as f64,
        );
        counter(
            "errors_total",
            "Requests that failed for other reasons.",
            self.errors as f64,
        );
        counter(
            "in_flight_searches",
            "Searches currently running.",
            self.in_flight as f64,
        );
        counter(
            "solver_solves_total",
            "Exact-solver invocations across completed searches.",
            self.solver_solves as f64,
        );
        counter(
            "solver_nodes_total",
            "Branch-and-bound nodes expanded across completed searches.",
            self.solver_nodes as f64,
        );
        counter(
            "solver_pruned_bound_total",
            "Solver nodes pruned by the makespan lower bound.",
            self.solver_pruned_bound as f64,
        );
        counter(
            "solver_pruned_dominance_total",
            "Solver nodes pruned by state dominance.",
            self.solver_pruned_dominance as f64,
        );
        counter(
            "solver_steals_total",
            "Subtree tasks stolen between parallel solver workers.",
            self.solver_steals as f64,
        );
        counter(
            "solver_shared_memo_hits_total",
            "Dominance prunes served by another solver worker's record.",
            self.solver_shared_memo_hits as f64,
        );
        counter(
            "solver_cas_retries_total",
            "Contention events (lost CAS races, discarded seqlock reads, skipped mid-build segments) in the solver's lock-free shared structures.",
            self.solver_cas_retries as f64,
        );
        counter(
            "solver_steal_failures_total",
            "Solver steal attempts that lost the deque-top race.",
            self.solver_steal_failures as f64,
        );
        counter(
            "solver_memo_drops_total",
            "Finish vectors the bounded-probe dominance table declined to memoise.",
            self.solver_memo_drops as f64,
        );
        counter(
            "fingerprint_paranoia_mismatches_total",
            "Canonical-form mismatches caught by the --paranoid-fingerprints lookup re-comparison that trusted fingerprint equality would have accepted.",
            self.fingerprint_paranoia_mismatches as f64,
        );
        counter(
            "fingerprint_wire_mismatches_total",
            "Replication/warm-up entries rejected because the shipped placement did not re-canonicalize to its claimed fingerprint (always checked).",
            self.fingerprint_wire_mismatches as f64,
        );
        counter(
            "fingerprint_canon_budget_exhausted_total",
            "Canonical-labeling searches that hit the node budget and completed greedily.",
            self.canon_budget_exhausted as f64,
        );
        counter(
            "batch_deduped_total",
            "Batch-search members deduplicated within their batch (fingerprint-identical to another member).",
            self.batch_deduped as f64,
        );
        counter(
            "cache_journal_stale_dropped_total",
            "Journal records dropped at startup because re-canonicalization no longer reproduces their stored fingerprint.",
            self.journal_stale_dropped as f64,
        );
        counter("cache_hit_rate", "Cache hit rate.", self.hit_rate);
        counter(
            "cache_entries",
            "Entries currently cached.",
            self.cache_entries as f64,
        );
        counter(
            "cache_evictions_total",
            "LRU evictions so far.",
            self.cache_evictions as f64,
        );
        counter(
            "request_latency_p50_ms",
            "Median request latency (bucket upper bound).",
            self.latency_p50_ms,
        );
        counter(
            "request_latency_p99_ms",
            "99th-percentile request latency (bucket upper bound).",
            self.latency_p99_ms,
        );
        out
    }
}

/// Live transport-level metrics of the HTTP event loop.
///
/// Owned by [`crate::HttpServer`]; the event-loop thread updates the gauges
/// as connections open, go idle and close, and the snapshot is rendered into
/// `GET /metrics` alongside the service-level counters.
#[derive(Debug, Default)]
pub struct TransportMetrics {
    /// Connections currently open.
    pub connections_open: AtomicU64,
    /// Open connections with no request in flight (a subset of
    /// `connections_open`).
    pub connections_idle: AtomicU64,
    /// Connections accepted since startup.
    pub connections_accepted: AtomicU64,
    /// Requests served on a connection that had already served at least one
    /// earlier request (HTTP keep-alive reuse).
    pub keepalive_reuses: AtomicU64,
    /// Requests parsed while an earlier request on the same connection was
    /// still in flight (HTTP/1.1 pipelining).
    pub pipelined_requests: AtomicU64,
    /// Connections closed by the idle-timeout sweep.
    pub idle_closed: AtomicU64,
    /// Connections rejected at accept because their source IP already held
    /// the per-IP connection cap.
    pub rejected_per_ip: AtomicU64,
    /// Requests currently waiting in the admission queue (gauge).
    pub admission_queue_depth: AtomicU64,
    /// Requests shed by the admission queue under overload (answered with
    /// 429 or 503 instead of being served).
    pub admission_shed: AtomicU64,
    /// Time requests spent waiting in the admission queue before a worker
    /// picked them up.
    pub admission_wait: Histogram,
}

/// Point-in-time snapshot of [`TransportMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportSnapshot {
    /// Connections currently open.
    pub connections_open: u64,
    /// Open connections with no request in flight.
    pub connections_idle: u64,
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Requests served over a reused (kept-alive) connection.
    pub keepalive_reuses: u64,
    /// Requests parsed behind an in-flight request on the same connection.
    pub pipelined_requests: u64,
    /// Connections closed by the idle-timeout sweep.
    pub idle_closed: u64,
    /// Connections rejected by the per-IP accept cap.
    pub rejected_per_ip: u64,
    /// Requests currently waiting in the admission queue.
    #[serde(default)]
    pub admission_queue_depth: u64,
    /// Requests shed by the admission queue under overload.
    #[serde(default)]
    pub admission_shed: u64,
}

impl TransportMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        TransportMetrics::default()
    }

    /// Takes a relaxed snapshot of the gauges and counters.
    #[must_use]
    pub fn snapshot(&self) -> TransportSnapshot {
        TransportSnapshot {
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_idle: self.connections_idle.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
            pipelined_requests: self.pipelined_requests.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            rejected_per_ip: self.rejected_per_ip.load(Ordering::Relaxed),
            admission_queue_depth: self.admission_queue_depth.load(Ordering::Relaxed),
            admission_shed: self.admission_shed.load(Ordering::Relaxed),
        }
    }

    /// Renders the admission-queue wait-time histogram in Prometheus text
    /// exposition format (appended to `GET /metrics` after the transport
    /// counters).
    #[must_use]
    pub fn render_admission_wait(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# HELP tessel_admission_wait_seconds Time requests waited in the admission queue.\n",
        );
        out.push_str("# TYPE tessel_admission_wait_seconds histogram\n");
        render_prometheus_histogram(
            &mut out,
            "tessel_admission_wait_seconds",
            "",
            &self.admission_wait,
        );
        out
    }
}

impl TransportSnapshot {
    /// Renders the snapshot in Prometheus text exposition format (appended
    /// after the service-level metrics in `GET /metrics`).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut metric = |name: &str, help: &str, value: u64| {
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            out.push_str(&format!("# HELP tessel_http_{name} {help}\n"));
            out.push_str(&format!("# TYPE tessel_http_{name} {kind}\n"));
            out.push_str(&format!("tessel_http_{name} {value}\n"));
        };
        metric(
            "connections_open",
            "Connections currently open.",
            self.connections_open,
        );
        metric(
            "connections_idle",
            "Open connections with no request in flight.",
            self.connections_idle,
        );
        metric(
            "connections_accepted_total",
            "Connections accepted since startup.",
            self.connections_accepted,
        );
        metric(
            "keepalive_reuses_total",
            "Requests served over a reused (kept-alive) connection.",
            self.keepalive_reuses,
        );
        metric(
            "pipelined_requests_total",
            "Requests parsed behind an in-flight request on the same connection.",
            self.pipelined_requests,
        );
        metric(
            "idle_closed_total",
            "Connections closed by the idle-timeout sweep.",
            self.idle_closed,
        );
        metric(
            "rejected_per_ip_total",
            "Connections rejected by the per-IP accept cap.",
            self.rejected_per_ip,
        );
        // Admission-control series live under `tessel_admission_` (not
        // `tessel_http_`): they describe queueing policy, not the socket
        // layer, and the bench tooling greps for them by that prefix.
        out.push_str(
            "# HELP tessel_admission_queue_depth Requests currently waiting in the admission queue.\n",
        );
        out.push_str("# TYPE tessel_admission_queue_depth gauge\n");
        out.push_str(&format!(
            "tessel_admission_queue_depth {}\n",
            self.admission_queue_depth
        ));
        out.push_str(
            "# HELP tessel_admission_shed_total Requests shed by the admission queue under overload.\n",
        );
        out.push_str("# TYPE tessel_admission_shed_total counter\n");
        out.push_str(&format!(
            "tessel_admission_shed_total {}\n",
            self.admission_shed
        ));
        out
    }
}

/// Live counters of the cluster tier.
///
/// Owned by [`crate::cluster::Cluster`]; the request path counts remote
/// hits/misses/errors, the replication worker counts deliveries, and the
/// peer gauges are sampled at snapshot time from the peer table.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    /// Local misses served by the ring owner's cache.
    pub remote_hits: AtomicU64,
    /// Local misses the owner also missed (solved locally, then replicated).
    pub remote_misses: AtomicU64,
    /// Owner fetches that failed (unreachable peer, open circuit, unusable
    /// payload) and degraded to a local solve.
    pub remote_errors: AtomicU64,
    /// Entries successfully replicated to their owner.
    pub replications_sent: AtomicU64,
    /// Entries accepted from a non-owner daemon via `PUT /v1/cache/{fp}`.
    pub replications_received: AtomicU64,
    /// Replication payloads rejected by validation (fingerprint mismatch,
    /// invalid schedule).
    pub replications_rejected: AtomicU64,
    /// Replication deliveries that failed (owner unreachable or erroring).
    pub replication_errors: AtomicU64,
    /// Replication jobs dropped because the bounded queue was full.
    pub replication_dropped: AtomicU64,
    /// Entries streamed from peers during startup warm-up.
    pub warmup_entries: AtomicU64,
}

/// Point-in-time snapshot of [`ClusterMetrics`] plus the peer gauges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Local misses served by the ring owner's cache.
    pub remote_hits: u64,
    /// Local misses the owner also missed.
    pub remote_misses: u64,
    /// Owner fetches that degraded to a local solve.
    pub remote_errors: u64,
    /// Entries successfully replicated to their owner.
    pub replications_sent: u64,
    /// Entries accepted from a non-owner daemon.
    pub replications_received: u64,
    /// Replication payloads rejected by validation.
    pub replications_rejected: u64,
    /// Replication deliveries that failed.
    pub replication_errors: u64,
    /// Replication jobs dropped by the bounded queue.
    pub replication_dropped: u64,
    /// Entries streamed from peers during warm-up.
    pub warmup_entries: u64,
    /// Configured peers.
    pub peers_total: u64,
    /// Peers whose last contact succeeded.
    pub peers_healthy: u64,
    /// Peers with an open circuit right now.
    pub circuits_open: u64,
}

impl ClusterMetrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        ClusterMetrics::default()
    }

    /// Takes a relaxed snapshot, folding in the peer gauges sampled by the
    /// caller.
    #[must_use]
    pub fn snapshot(
        &self,
        peers_total: u64,
        peers_healthy: u64,
        circuits_open: u64,
    ) -> ClusterSnapshot {
        ClusterSnapshot {
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            remote_misses: self.remote_misses.load(Ordering::Relaxed),
            remote_errors: self.remote_errors.load(Ordering::Relaxed),
            replications_sent: self.replications_sent.load(Ordering::Relaxed),
            replications_received: self.replications_received.load(Ordering::Relaxed),
            replications_rejected: self.replications_rejected.load(Ordering::Relaxed),
            replication_errors: self.replication_errors.load(Ordering::Relaxed),
            replication_dropped: self.replication_dropped.load(Ordering::Relaxed),
            warmup_entries: self.warmup_entries.load(Ordering::Relaxed),
            peers_total,
            peers_healthy,
            circuits_open,
        }
    }
}

impl ClusterSnapshot {
    /// Renders the snapshot in Prometheus text exposition format (appended
    /// after the transport metrics in `GET /metrics` when cluster mode is
    /// on).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut metric = |name: &str, help: &str, value: u64| {
            let kind = if name.ends_with("_total") {
                "counter"
            } else {
                "gauge"
            };
            out.push_str(&format!("# HELP tessel_cluster_{name} {help}\n"));
            out.push_str(&format!("# TYPE tessel_cluster_{name} {kind}\n"));
            out.push_str(&format!("tessel_cluster_{name} {value}\n"));
        };
        metric(
            "remote_hits_total",
            "Local misses served by the ring owner's cache.",
            self.remote_hits,
        );
        metric(
            "remote_misses_total",
            "Local misses the ring owner also missed.",
            self.remote_misses,
        );
        metric(
            "remote_errors_total",
            "Owner fetches that degraded to a local solve.",
            self.remote_errors,
        );
        metric(
            "replications_sent_total",
            "Entries successfully replicated to their owner.",
            self.replications_sent,
        );
        metric(
            "replications_received_total",
            "Entries accepted from a non-owner daemon.",
            self.replications_received,
        );
        metric(
            "replications_rejected_total",
            "Replication payloads rejected by validation.",
            self.replications_rejected,
        );
        metric(
            "replication_errors_total",
            "Replication deliveries that failed.",
            self.replication_errors,
        );
        metric(
            "replication_dropped_total",
            "Replication jobs dropped by the bounded queue.",
            self.replication_dropped,
        );
        metric(
            "warmup_entries_total",
            "Entries streamed from peers during startup warm-up.",
            self.warmup_entries,
        );
        // Named without the `_total` suffix: a configured-peer count is a
        // gauge, and Prometheus reserves `_total` for counters.
        metric("peers", "Configured peers.", self.peers_total);
        metric(
            "peers_healthy",
            "Peers whose last contact succeeded.",
            self.peers_healthy,
        );
        metric(
            "circuits_open",
            "Peers with an open circuit right now.",
            self.circuits_open,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_snapshot_renders_gauges_and_counters() {
        let m = TransportMetrics::new();
        m.connections_open.fetch_add(3, Ordering::Relaxed);
        m.connections_idle.fetch_add(2, Ordering::Relaxed);
        m.keepalive_reuses.fetch_add(5, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.connections_open, 3);
        assert_eq!(snap.keepalive_reuses, 5);
        let text = snap.render_prometheus();
        assert!(text.contains("tessel_http_connections_open 3"));
        assert!(text.contains("# TYPE tessel_http_connections_open gauge"));
        assert!(text.contains("tessel_http_keepalive_reuses_total 5"));
        assert!(text.contains("# TYPE tessel_http_keepalive_reuses_total counter"));
        let json = serde_json::to_string(&snap).unwrap();
        let back: TransportSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn latency_quantiles_follow_the_buckets() {
        let m = ServiceMetrics::new();
        assert_eq!(m.latency_quantile_ms(0.5), 0.0);
        for _ in 0..99 {
            m.record_latency(Duration::from_micros(100)); // bucket 6: [64, 128)
        }
        m.record_latency(Duration::from_millis(100)); // ~bucket 16
        let p50 = m.latency_quantile_ms(0.50);
        assert!((p50 - 0.128).abs() < 1e-9, "p50={p50}");
        let p99 = m.latency_quantile_ms(0.99);
        assert!((p99 - 0.128).abs() < 1e-9, "p99={p99}");
        let p100 = m.latency_quantile_ms(1.0);
        assert!(p100 > 100.0, "p100={p100}");
    }

    #[test]
    fn snapshot_and_prometheus_rendering() {
        let m = ServiceMetrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.record_latency(Duration::from_millis(2));
        m.record_solver(&SolverTotals {
            solves: 7,
            nodes: 1000,
            pruned_bound: 50,
            pruned_dominance: 40,
            steals: 3,
            shared_memo_hits: 9,
            cas_retries: 11,
            steal_failures: 12,
            memo_drops: 13,
            warmstart_micros: 14,
            parallel_micros: 15,
        });
        let snap = m.snapshot(4, 1);
        assert_eq!(snap.requests, 3);
        assert!((snap.hit_rate - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(snap.cache_entries, 4);
        assert_eq!(snap.solver_solves, 7);
        assert_eq!(snap.solver_nodes, 1000);
        assert_eq!(snap.solver_steals, 3);
        assert_eq!(snap.solver_shared_memo_hits, 9);
        let text = snap.render_prometheus();
        assert!(text.contains("tessel_requests_total 3"));
        assert!(text.contains("tessel_cache_hits_total 2"));
        assert!(text.contains("# TYPE tessel_requests_total counter"));
        assert!(text.contains("# TYPE tessel_cache_hit_rate gauge"));
        assert!(text.contains("tessel_solver_nodes_total 1000"));
        assert!(text.contains("tessel_solver_steals_total 3"));
        assert!(text.contains("tessel_solver_shared_memo_hits_total 9"));
        assert!(text.contains("tessel_solver_cas_retries_total 11"));
        assert!(text.contains("tessel_solver_steal_failures_total 12"));
        assert!(text.contains("tessel_solver_memo_drops_total 13"));
        assert!(text.contains("# TYPE tessel_solver_solves_total counter"));
        assert!(text.contains("# TYPE tessel_solver_cas_retries_total counter"));
        // JSON round trip for the in-process API.
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn endpoint_labels_coarsen_to_a_fixed_set() {
        assert_eq!(ServiceMetrics::endpoint_label("/v1/search"), "/v1/search");
        assert_eq!(
            ServiceMetrics::endpoint_label("/v1/search/batch"),
            "/v1/search/batch"
        );
        assert_eq!(ServiceMetrics::endpoint_label("/v1/cache"), "/v1/cache");
        assert_eq!(
            ServiceMetrics::endpoint_label("/v1/cache/deadbeef"),
            "/v1/cache"
        );
        assert_eq!(
            ServiceMetrics::endpoint_label("/v1/cluster/export/a"),
            "/v1/cluster"
        );
        assert_eq!(
            ServiceMetrics::endpoint_label("/v1/debug/requests"),
            "/v1/debug/requests"
        );
        assert_eq!(
            ServiceMetrics::endpoint_label("/v1/debug/inflight"),
            "/v1/debug/inflight"
        );
        assert_eq!(
            ServiceMetrics::endpoint_label("/v1/debug/timeseries"),
            "/v1/debug/timeseries"
        );
        assert_eq!(
            ServiceMetrics::endpoint_label(&format!("/v1/debug/trace/{}", "a".repeat(32))),
            "/v1/debug/trace"
        );
        assert_eq!(
            ServiceMetrics::endpoint_label("/v1/debug/loglevel"),
            "/v1/debug/loglevel"
        );
        assert_eq!(ServiceMetrics::endpoint_label("/v1/debug/nope"), "other");
        assert_eq!(ServiceMetrics::endpoint_label("/metrics"), "/metrics");
        assert_eq!(ServiceMetrics::endpoint_label("/../../etc/passwd"), "other");
        assert_eq!(ServiceMetrics::endpoint_label("/v1/searchx"), "other");
    }

    #[test]
    fn histogram_families_render_bucket_series() {
        let m = ServiceMetrics::new();
        m.observe_endpoint_micros("/v1/search", 3_000);
        m.observe_endpoint_micros("no-such-endpoint", 10); // lands in `other`
        m.observe_stage_micros("solve", 2_500);
        m.observe_stage_micros("write", 80);
        m.observe_stage_micros("not-a-stage", 1); // dropped
        let text = m.render_histograms();
        assert!(text.contains("# TYPE tessel_http_request_duration_seconds histogram"));
        assert!(text.contains(
            "tessel_http_request_duration_seconds_bucket{endpoint=\"/v1/search\",le=\"0.005\"} 1"
        ));
        assert!(
            text.contains("tessel_http_request_duration_seconds_count{endpoint=\"/v1/search\"} 1")
        );
        assert!(text.contains("tessel_http_request_duration_seconds_count{endpoint=\"other\"} 1"));
        assert!(text.contains(
            "tessel_request_stage_duration_seconds_bucket{stage=\"solve\",le=\"0.0025\"} 1"
        ));
        assert!(text.contains("tessel_request_stage_duration_seconds_count{stage=\"write\"} 1"));
        // The unknown stage was dropped, not folded anywhere.
        let total: u64 = STAGE_LABELS
            .iter()
            .map(|label| {
                let needle =
                    format!("tessel_request_stage_duration_seconds_count{{stage=\"{label}\"}} ");
                text.lines()
                    .find(|line| line.starts_with(&needle))
                    .and_then(|line| line.rsplit(' ').next())
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 2);
    }

    /// Asserts `text` is valid Prometheus text exposition: every sample's
    /// family has exactly one preceding `# HELP` and `# TYPE`, histogram
    /// samples use only `_bucket`/`_sum`/`_count` suffixes, and sample lines
    /// parse as `name{labels} value`.
    fn assert_valid_exposition(text: &str) {
        use std::collections::{HashMap, HashSet};
        let mut helped: HashSet<String> = HashSet::new();
        let mut typed: HashMap<String, String> = HashMap::new();
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_string();
                assert!(helped.insert(name.clone()), "duplicate HELP for {name}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap().to_string();
                let kind = parts.next().expect("TYPE line missing kind").to_string();
                assert!(
                    matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                    "bad TYPE kind {kind} for {name}"
                );
                assert!(
                    helped.contains(&name),
                    "TYPE before HELP (or missing HELP) for {name}"
                );
                assert!(
                    typed.insert(name.clone(), kind).is_none(),
                    "duplicate TYPE for {name}"
                );
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment line: {line}");
            // Sample line: name[{labels}] value
            let (series, value) = line.rsplit_once(' ').expect("sample missing value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line}");
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "invalid metric name {name}"
            );
            if let Some(labels) = series
                .split_once('{')
                .map(|(_, rest)| rest.strip_suffix('}').expect("unterminated label set"))
            {
                for pair in labels.split(',') {
                    let (key, val) = pair.split_once('=').expect("label without =");
                    assert!(!key.is_empty() && val.starts_with('"') && val.ends_with('"'));
                }
            }
            // Resolve the family: histogram suffixes strip to the declared
            // family name, everything else must be declared verbatim.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    name.strip_suffix(suffix)
                        .filter(|base| typed.get(*base).map(String::as_str) == Some("histogram"))
                })
                .unwrap_or(name);
            let kind = typed
                .get(family)
                .unwrap_or_else(|| panic!("sample {name} has no TYPE"));
            assert!(helped.contains(family), "sample {name} has no HELP");
            if kind == "histogram" {
                assert_ne!(
                    name, family,
                    "histogram family {family} sampled without a suffix"
                );
            }
        }
    }

    #[test]
    fn metrics_page_is_valid_prometheus_exposition() {
        // Exactly the concatenation `GET /metrics` serves, cluster mode on.
        let service = ServiceMetrics::new();
        service.requests.fetch_add(2, Ordering::Relaxed);
        service.record_latency(Duration::from_millis(3));
        service.observe_endpoint_micros("/v1/search", 3_000);
        service.observe_stage_micros("solve", 2_000);
        let transport = TransportMetrics::new();
        transport.connections_open.fetch_add(1, Ordering::Relaxed);
        transport.admission_shed.fetch_add(2, Ordering::Relaxed);
        transport.admission_wait.observe_micros(1_500);
        let cluster = ClusterMetrics::new();
        cluster.remote_hits.fetch_add(4, Ordering::Relaxed);
        // The sampler's ring-derived gauges join the page too.
        let timeseries =
            tessel_obs::TimeSeries::new(&["requests_per_s", "cache_hit_ratio"], 8, 1000);
        timeseries.push(1_700_000_000_000, &[2.0, 0.5]);
        let mut sampled = String::new();
        timeseries.render_prometheus(&mut sampled);
        let page = format!(
            "{}{}{}{}{}{}",
            service.snapshot(0, 0).render_prometheus(),
            service.render_histograms(),
            transport.snapshot().render_prometheus(),
            transport.render_admission_wait(),
            cluster.snapshot(2, 2, 0).render_prometheus(),
            sampled
        );
        assert!(page.contains("tessel_admission_shed_total 2"));
        assert!(page.contains("tessel_admission_queue_depth 0"));
        assert!(page.contains("tessel_admission_wait_seconds_count 1"));
        assert!(page.contains("tessel_timeseries_last{series=\"requests_per_s\"} 2"));
        assert_valid_exposition(&page);
    }

    #[test]
    fn exposition_validator_rejects_malformed_pages() {
        let ok = "# HELP m_total h\n# TYPE m_total counter\nm_total 1\n";
        assert_valid_exposition(ok);
        for bad in [
            "m_total 1\n",                   // no HELP/TYPE
            "# HELP m_total h\nm_total 1\n", // no TYPE
            "# HELP m_total h\n# HELP m_total h\n# TYPE m_total counter\nm_total 1\n",
            "# HELP m_total h\n# TYPE m_total counter\nm_total one\n",
        ] {
            assert!(
                std::panic::catch_unwind(|| assert_valid_exposition(bad)).is_err(),
                "validator accepted: {bad:?}"
            );
        }
    }
}
