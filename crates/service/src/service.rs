//! The in-process schedule-search service.
//!
//! [`ScheduleService`] is the transport-independent heart of the daemon: the
//! HTTP layer, the CLI client's `--in-process` mode, the benches and the
//! tests all drive this same object. A search request flows through:
//!
//! 1. **Canonicalization** — the placement is brought into canonical form
//!    ([`PlacementSpec::canonicalize`]); the fingerprint plus the resolved
//!    search parameters form the cache key. Device relabelings and block
//!    reorderings of a known placement therefore hit the cache.
//! 2. **Cache lookup** — a hit returns immediately, with the cached canonical
//!    schedule translated back into the request's own labeling.
//! 3. **Single-flight** — concurrent identical misses elect one leader; the
//!    rest block (bounded by their own deadlines) and share the result.
//! 4. **Search** — the leader runs [`TesselSearch`] with the request deadline
//!    plumbed through [`SearchConfig::time_budget`] into the solver's
//!    cooperative cancellation, simulates the winning schedule for the
//!    utilization summary, and populates the cache. Timeouts and failures
//!    are **not** cached.

use crate::cache::{CacheConfig, CacheJournal, CacheKey, CacheParams, CachedSearch, ShardedCache};
use crate::cluster::{Cluster, ClusterConfig, ClusterSnapshot, RemoteFetch};
use crate::flight::{now_unix_ms, FlightQuery, FlightRecord, FlightRecorder, StageTiming};
use crate::inflight::{self, InflightGuard, InflightRegistry};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::singleflight::{Joined, SingleFlight};
use crate::wire::{
    BatchSearchItem, BatchSearchRequest, BatchSearchResponse, CacheEntryInfo, CacheExchange,
    ClusterStatusResponse, DebugRequestsResponse, ErrorBody, FlightRecordInfo, InflightResponse,
    InspectResponse, ReplicationAck, SearchRequest, SearchResponse, TraceAssemblyResponse,
    TraceSpanInfo, WireSearchEntry,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tessel_core::fingerprint::{CanonicalPlacement, Fingerprint};
use tessel_core::ir::PlacementSpec;
use tessel_core::schedule::{scheduled_block, Schedule};
use tessel_core::search::{SearchConfig, TesselSearch};
use tessel_core::CoreError;
use tessel_runtime::{instantiate, simulate, ClusterSpec, CommMode};
use tessel_solver::IncumbentSink;

/// Errors surfaced to clients of the service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The request was malformed (invalid placement, bad parameters).
    BadRequest(String),
    /// The search (or the wait for a coalesced search) exceeded the request
    /// deadline. Nothing was cached.
    Timeout(String),
    /// The search completed without a usable schedule (e.g. no feasible
    /// repetend under the memory budget).
    Search(String),
    /// The daemon cannot take the request right now.
    Unavailable(String),
}

impl ServiceError {
    /// The HTTP status code this error maps to.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self {
            ServiceError::BadRequest(_) => 400,
            ServiceError::Timeout(_) => 408,
            ServiceError::Search(_) => 422,
            ServiceError::Unavailable(_) => 503,
        }
    }

    /// Machine-readable kind tag used in error bodies.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::Timeout(_) => "timeout",
            ServiceError::Search(_) => "search",
            ServiceError::Unavailable(_) => "unavailable",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServiceError::Timeout(msg) => write!(f, "deadline exceeded: {msg}"),
            ServiceError::Search(msg) => write!(f, "search failed: {msg}"),
            ServiceError::Unavailable(msg) => write!(f, "service unavailable: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Configuration of a [`ScheduleService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Result-cache layout.
    pub cache: CacheConfig,
    /// Snapshot file for cache persistence; `None` disables persistence.
    pub cache_path: Option<PathBuf>,
    /// Default `N` when a request omits `num_micro_batches`.
    pub default_micro_batches: usize,
    /// Default `NR` cap when a request omits `max_repetend_micro_batches`.
    pub default_max_repetend: usize,
    /// Hard ceiling on `NR` accepted from requests (protects the daemon from
    /// exponential blowup).
    pub max_repetend_ceiling: usize,
    /// Portfolio worker threads per search.
    pub portfolio_threads: usize,
    /// Worker threads for each exact solve (the work-stealing parallel
    /// solver) when a request does not ask for a specific count; `0` uses
    /// the machine's available parallelism.
    pub solver_threads: usize,
    /// Hard ceiling on solver threads accepted from requests (protects the
    /// daemon from thread-bomb requests).
    pub max_solver_threads: usize,
    /// Steal granularity of the parallel solver (see
    /// [`SolverConfig::steal_depth`]).
    ///
    /// [`SolverConfig::steal_depth`]: tessel_solver::SolverConfig::steal_depth
    pub solver_steal_depth: usize,
    /// Shard count of the parallel solver's shared dominance table (see
    /// [`SolverConfig::dominance_shards`]).
    ///
    /// [`SolverConfig::dominance_shards`]: tessel_solver::SolverConfig::dominance_shards
    pub solver_memo_shards: usize,
    /// Optional cap on candidates per `NR` level.
    pub candidate_limit: Option<usize>,
    /// Deadline applied when a request does not carry one.
    pub default_deadline: Option<Duration>,
    /// Journal appends between compactions of the cache persistence file.
    pub journal_compact_every: usize,
    /// Cluster membership; `None` runs the daemon standalone.
    pub cluster: Option<ClusterConfig>,
    /// Distrust fingerprint equality on **cache lookups**: re-compare the
    /// full canonical form on every hit, counting every mismatch trusted
    /// mode would have accepted in
    /// `tessel_fingerprint_paranoia_mismatches_total`. The exact canonical
    /// labeling makes this redundant; the flag is the escape hatch that
    /// proves it. (Replicated/warmed entries are re-canonicalized
    /// *unconditionally*, regardless of this flag — exact labeling can only
    /// vouch for fingerprints this node computed itself, not for a peer's
    /// claim.)
    pub paranoid_fingerprints: bool,
    /// Node budget of the canonical-labeling search run per request. Past
    /// it the search completes greedily — bounded latency at the cost of
    /// possible cache splits between relabeled variants — and the event
    /// counts in `tessel_fingerprint_canon_budget_exhausted_total`.
    pub canon_node_budget: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let solver_defaults = tessel_solver::SolverConfig::default();
        ServiceConfig {
            cache: CacheConfig::default(),
            cache_path: None,
            default_micro_batches: 8,
            default_max_repetend: 6,
            max_repetend_ceiling: 8,
            portfolio_threads: 1,
            solver_threads: 1,
            max_solver_threads: 8,
            solver_steal_depth: solver_defaults.steal_depth,
            solver_memo_shards: solver_defaults.dominance_shards,
            candidate_limit: None,
            default_deadline: Some(Duration::from_secs(60)),
            journal_compact_every: 64,
            cluster: None,
            paranoid_fingerprints: false,
            canon_node_budget: tessel_core::fingerprint::DEFAULT_NODE_BUDGET,
        }
    }
}

/// The schedule-search service. Cheap to share behind an [`Arc`]; all methods
/// take `&self` and are thread-safe.
///
/// [`ScheduleService::search`] is a blocking call: the HTTP transport's
/// event loop never invokes it directly but hands parsed requests to the
/// bounded worker pool, whose threads call it and push the finished response
/// back to the loop (see [`crate::http`]). In-process callers (benches,
/// tests, `examples/service_quickstart.rs`) simply call it from their own
/// threads.
#[derive(Debug)]
pub struct ScheduleService {
    config: ServiceConfig,
    cache: ShardedCache,
    journal: Option<CacheJournal>,
    cluster: Option<Cluster>,
    metrics: ServiceMetrics,
    flights: SingleFlight<Result<Arc<CachedSearch>, ServiceError>>,
    recorder: FlightRecorder,
    inflight: InflightRegistry,
}

/// How a cache entry was obtained, before translation into the requester's
/// labeling. `cached`/`coalesced` carry through to the response's
/// bookkeeping fields with the same semantics the inline flow always had.
struct Obtained {
    entry: Arc<CachedSearch>,
    cached: bool,
    coalesced: bool,
}

/// RAII guard for the in-flight gauge.
struct InFlightGuard<'a>(&'a ServiceMetrics);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Completes the leader's flight on drop unless a result was already
/// published, so a panicking leader fails its followers fast instead of
/// blackholing the key until daemon restart.
struct FlightGuard<'a> {
    flights: &'a SingleFlight<Result<Arc<CachedSearch>, ServiceError>>,
    key: u64,
    armed: bool,
}

impl FlightGuard<'_> {
    fn disarm_and_complete(mut self, result: Result<Arc<CachedSearch>, ServiceError>) {
        self.armed = false;
        self.flights.complete(self.key, result);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.flights.complete(
                self.key,
                Err(ServiceError::Unavailable(
                    "the leading search aborted unexpectedly".into(),
                )),
            );
        }
    }
}

/// Times `f` as a trace stage **and** marks it as the calling request's live
/// pipeline stage on the in-flight registry, so `GET /v1/debug/inflight`
/// shows where each request currently is.
fn live_stage<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    inflight::with_current(|entry| entry.set_stage(name));
    tessel_obs::stage(name, f)
}

/// Expands one flight record into assembled-trace spans: a whole-request
/// envelope span named `request`, then one span per recorded stage laid out
/// back-to-back from the request's start. `offset_ms` is the recording
/// node's clock minus the assembling node's clock — remote starts are
/// shifted by it so all spans share one timeline.
fn push_record_spans(
    spans: &mut Vec<TraceSpanInfo>,
    node: &str,
    record: &FlightRecordInfo,
    offset_ms: i64,
) {
    let base = (record.start_unix_ms as i64 - offset_ms).max(0) as u64;
    spans.push(TraceSpanInfo {
        node: node.to_string(),
        name: "request".to_string(),
        start_unix_ms: base,
        micros: record.total_micros,
        method: record.method.clone(),
        path: record.path.clone(),
        status: record.status,
    });
    let mut cursor_micros = 0u64;
    for stage in &record.stages {
        spans.push(TraceSpanInfo {
            node: node.to_string(),
            name: stage.name.clone(),
            start_unix_ms: base + cursor_micros / 1000,
            micros: stage.micros,
            method: record.method.clone(),
            path: record.path.clone(),
            status: record.status,
        });
        cursor_micros += stage.micros;
    }
}

impl ScheduleService {
    /// Creates a service, loading the cache snapshot if one is configured and
    /// present.
    ///
    /// # Errors
    ///
    /// Propagates snapshot read failures. A missing snapshot is fine, and a
    /// snapshot that no longer parses (corrupt, or written by an older
    /// daemon with a different entry layout) is skipped with a warning — an
    /// incompatible cache file must cost a cold start, not a crash loop.
    pub fn new(mut config: ServiceConfig) -> std::io::Result<Self> {
        // An operator-raised default must never exceed the ceiling, or every
        // request relying on the default would be rejected.
        config.max_repetend_ceiling = config.max_repetend_ceiling.max(config.default_max_repetend);
        let cache = ShardedCache::new(&config.cache);
        let metrics = ServiceMetrics::new();
        let journal = config
            .cache_path
            .clone()
            .map(|path| CacheJournal::new(path, config.journal_compact_every));
        if let Some(journal) = &journal {
            // Replay with a freshness check: an entry whose stored placement
            // no longer re-canonicalizes to its stored fingerprint was keyed
            // by an older labeling scheme — it can never be hit again (every
            // lookup re-derives the fingerprint) and would only bloat the
            // journal forever. Drop it here; the startup compaction below
            // then persists the cleaned set.
            let canon_budget = config.canon_node_budget;
            match journal.replay_filtered(&cache, &mut |entry: &CachedSearch| {
                let (canon, stats) = entry
                    .canonical_placement
                    .canonicalize_budgeted(canon_budget);
                !stats.budget_exhausted && canon.fingerprint == entry.fingerprint
            }) {
                Ok(outcome) => {
                    if outcome.dropped > 0 {
                        metrics
                            .journal_stale_dropped
                            .fetch_add(outcome.dropped as u64, Ordering::Relaxed);
                        tessel_obs::warn(
                            "cache",
                            "dropped stale cache-journal entries whose fingerprints no longer re-canonicalize",
                            &[
                                ("path", &journal.path().display().to_string()),
                                ("dropped", &outcome.dropped.to_string()),
                                ("restored", &outcome.restored.to_string()),
                            ],
                        );
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    tessel_obs::warn(
                        "cache",
                        "ignoring incompatible cache journal",
                        &[
                            ("path", &journal.path().display().to_string()),
                            ("error", &e.to_string()),
                        ],
                    );
                }
                Err(e) => return Err(e),
            }
            // Rewrite the journal from the live entries before serving:
            // repairs a torn tail (appending onto a partial line would merge
            // two records into one unparseable line) and an incompatible
            // old-format file (appends onto it would be unreadable forever),
            // and bounds replay cost for daemons restarted more often than
            // the in-process compaction threshold fires.
            if let Err(e) = journal.compact(&cache) {
                tessel_obs::warn(
                    "cache",
                    "cannot compact cache journal",
                    &[
                        ("path", &journal.path().display().to_string()),
                        ("error", &e.to_string()),
                    ],
                );
            }
        }
        let cluster = match config.cluster.clone() {
            Some(cluster_config) => Some(Cluster::new(cluster_config)?),
            None => None,
        };
        Ok(ScheduleService {
            config,
            cache,
            journal,
            cluster,
            metrics,
            flights: SingleFlight::new(),
            recorder: FlightRecorder::default(),
            inflight: InflightRegistry::default(),
        })
    }

    /// The configuration the service runs with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Handles one search request end to end (see the module docs for the
    /// pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] for malformed requests, deadline timeouts and
    /// infeasible searches.
    pub fn search(&self, request: &SearchRequest) -> Result<SearchResponse, ServiceError> {
        self.search_with_sink(request, None)
    }

    /// As [`ScheduleService::search`], but streams improving incumbents: when
    /// this request leads a solve, every strictly improving repetend makespan
    /// the solver proves is reported through `sink` while the search runs.
    /// Coalesced followers and cache hits report nothing (the transport still
    /// gets the terminal result). Portfolio workers report concurrently, so
    /// values are monotone per worker but not globally — a consumer wanting a
    /// strictly decreasing stream must filter (the HTTP transport does).
    ///
    /// # Errors
    ///
    /// As [`ScheduleService::search`].
    pub fn search_streamed(
        &self,
        request: &SearchRequest,
        sink: &IncumbentSink,
    ) -> Result<SearchResponse, ServiceError> {
        self.search_with_sink(request, Some(sink))
    }

    fn search_with_sink(
        &self,
        request: &SearchRequest,
        sink: Option<&IncumbentSink>,
    ) -> Result<SearchResponse, ServiceError> {
        let arrived = Instant::now();
        let started_unix_ms = now_unix_ms();
        // The HTTP worker opens the request context (with the client's or a
        // freshly minted trace ID) before calling in. In-process callers —
        // benches, tests, `--in-process` — have no transport, so the service
        // hosts a context of its own and deposits the flight record itself.
        let owns_context = tessel_obs::current_trace_id().is_none();
        if owns_context {
            tessel_obs::begin_request(tessel_obs::TraceId::generate());
        }
        // The HTTP worker registers its requests (with peer and queue wait)
        // before routing in; in-process callers are registered here, by the
        // same ownership rule as the trace context above.
        let _inflight = owns_context.then(|| self.register_inflight("CALL", "/v1/search", None));
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.search_inner(request, arrived, sink);
        match &result {
            Ok(_) => {}
            Err(ServiceError::Timeout(_)) => {
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.metrics.record_latency(arrived.elapsed());
        if owns_context {
            if let Some(finished) = tessel_obs::end_request() {
                let status = match &result {
                    Ok(_) => 200,
                    Err(e) => e.http_status(),
                };
                self.record_flight(FlightRecord {
                    trace_id: finished.trace_id.as_str().to_string(),
                    method: "CALL".to_string(),
                    path: "/v1/search".to_string(),
                    status,
                    start_unix_ms: started_unix_ms,
                    total_micros: arrived.elapsed().as_micros() as u64,
                    stages: finished
                        .stages
                        .iter()
                        .map(|(name, micros)| StageTiming {
                            name: (*name).to_string(),
                            micros: *micros,
                        })
                        .collect(),
                });
            }
        }
        result
    }

    fn search_inner(
        &self,
        request: &SearchRequest,
        arrived: Instant,
        sink: Option<&IncumbentSink>,
    ) -> Result<SearchResponse, ServiceError> {
        request
            .placement
            .validate()
            .map_err(|e| ServiceError::BadRequest(format!("invalid placement: {e}")))?;
        let params = self.resolve_params(request)?;
        let solver_threads = self.resolve_solver_threads(request);
        let deadline = request
            .deadline_ms
            .map(|ms| arrived + Duration::from_millis(ms))
            .or_else(|| self.config.default_deadline.map(|d| arrived + d));
        inflight::with_current(|entry| entry.set_deadline(deadline));

        let canon = self.canonicalize_budgeted(&request.placement);
        let key = CacheKey::new(canon.fingerprint, &params);
        let obtained = self.obtain_entry(key, &canon, &params, deadline, solver_threads, sink)?;
        Ok(self.respond(
            &obtained.entry,
            &canon,
            &request.placement,
            obtained.cached,
            obtained.coalesced,
        ))
    }

    /// Resolves a canonicalized request to its cached entry: cache lookup,
    /// single-flight election and — for the leader — the remote fetch and
    /// solve. Shared by the single-search path and the batch path (which
    /// calls it once per distinct cache key and fans the entry out to every
    /// fingerprint-identical member). Counts hits/misses/coalesces exactly
    /// as the historical inline flow did.
    fn obtain_entry(
        &self,
        key: CacheKey,
        canon: &CanonicalPlacement,
        params: &CacheParams,
        deadline: Option<Instant>,
        solver_threads: usize,
        sink: Option<&IncumbentSink>,
    ) -> Result<Obtained, ServiceError> {
        if let Some(entry) = live_stage("cache_lookup", || self.cache_lookup(key, canon, params)) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Obtained {
                entry,
                cached: true,
                coalesced: false,
            });
        }

        match live_stage("singleflight_wait", || {
            self.flights.join(key.raw(), deadline)
        }) {
            Joined::Leader => {
                // The flight MUST complete even if the search panics —
                // otherwise the key is blackholed and every later identical
                // request hangs on a leaderless flight.
                let guard = FlightGuard {
                    flights: &self.flights,
                    key: key.raw(),
                    armed: true,
                };
                // Double-check the cache: another leader may have finished
                // between our lookup and the flight election. Then, before
                // paying for a solve, ask the ring owner — a sibling daemon
                // may already hold this schedule.
                let mut remote_hit = false;
                let mut inserted = false;
                let result = match live_stage("cache_lookup", || {
                    self.cache_lookup(key, canon, params)
                }) {
                    Some(entry) => Ok(entry),
                    // The stage only exists in cluster mode: standalone
                    // flight records carry no zero-length `remote_fetch` row.
                    None => match self.cluster.as_ref().and_then(|_| {
                        live_stage("remote_fetch", || self.cluster_fetch(key, canon, params))
                    }) {
                        Some(entry) => {
                            remote_hit = true;
                            inserted = true;
                            Ok(entry)
                        }
                        None => {
                            let solved = live_stage("solve", || {
                                self.run_search(canon, params, key, deadline, solver_threads, sink)
                            });
                            inserted = solved.is_ok();
                            solved
                        }
                    },
                };
                guard.disarm_and_complete(result.clone());
                // Journal outside the flight: followers are already awake,
                // so they never wait on the append (or on the occasional
                // whole-cache compaction it triggers).
                if inserted {
                    if let Ok(entry) = &result {
                        self.persist_insert(key, entry);
                    }
                }
                match result {
                    Ok(entry) => {
                        if remote_hit {
                            // Served from the logical (cluster-wide) cache:
                            // a hit for the client, counted under
                            // `tessel_cluster_remote_hits_total` rather than
                            // the local hit/miss pair.
                            Ok(Obtained {
                                entry,
                                cached: true,
                                coalesced: false,
                            })
                        } else {
                            self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                            Ok(Obtained {
                                entry,
                                cached: false,
                                coalesced: false,
                            })
                        }
                    }
                    Err(e) => Err(e),
                }
            }
            Joined::Done(result) => {
                self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok(Obtained {
                    entry: result?,
                    cached: false,
                    coalesced: true,
                })
            }
            Joined::TimedOut => Err(ServiceError::Timeout(
                "timed out waiting for an identical in-flight search".into(),
            )),
        }
    }

    /// Handles a `POST /v1/search/batch` body: every member placement is
    /// canonicalized up front, members sharing a (fingerprint, parameters)
    /// cache key are grouped, each distinct group is resolved **once**
    /// through the ordinary cache / single-flight / solve pipeline, and the
    /// one entry fans out to every member translated into that member's own
    /// labeling. A batch of N identical (even relabeled) placements touches
    /// the solver once; the N-1 shared members count in
    /// `tessel_batch_deduped_total` instead of the hit/miss pair.
    #[must_use]
    pub fn search_batch(&self, batch: &BatchSearchRequest) -> BatchSearchResponse {
        let arrived = Instant::now();
        struct Prepared {
            canon: CanonicalPlacement,
            params: CacheParams,
            key: CacheKey,
            deadline: Option<Instant>,
            solver_threads: usize,
        }
        self.metrics
            .requests
            .fetch_add(batch.requests.len() as u64, Ordering::Relaxed);
        // Canonicalize everything first: dedup needs every member's key
        // before the first solve starts. Invalid members fail alone without
        // sinking the batch.
        let prepared: Vec<Result<Prepared, ServiceError>> = batch
            .requests
            .iter()
            .map(|request| {
                request
                    .placement
                    .validate()
                    .map_err(|e| ServiceError::BadRequest(format!("invalid placement: {e}")))?;
                let params = self.resolve_params(request)?;
                let canon = self.canonicalize_budgeted(&request.placement);
                let key = CacheKey::new(canon.fingerprint, &params);
                Ok(Prepared {
                    canon,
                    params,
                    key,
                    deadline: request
                        .deadline_ms
                        .map(|ms| arrived + Duration::from_millis(ms))
                        .or_else(|| self.config.default_deadline.map(|d| arrived + d)),
                    solver_threads: self.resolve_solver_threads(request),
                })
            })
            .collect();
        // Group members by cache key; the first member of each group is the
        // representative that pays for the resolve.
        let mut groups: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        let mut group_order: Vec<u64> = Vec::new();
        for (index, prep) in prepared.iter().enumerate() {
            if let Ok(prep) = prep {
                let slot = groups.entry(prep.key.raw()).or_default();
                if slot.is_empty() {
                    group_order.push(prep.key.raw());
                }
                slot.push(index);
            }
        }
        let mut results: Vec<Option<BatchSearchItem>> = vec![None; batch.requests.len()];
        let mut deduped_total = 0usize;
        for raw_key in &group_order {
            let members = &groups[raw_key];
            let rep = &prepared[members[0]];
            let Ok(rep) = rep else { unreachable!() };
            let obtained = self.obtain_entry(
                rep.key,
                &rep.canon,
                &rep.params,
                rep.deadline,
                rep.solver_threads,
                None,
            );
            match obtained {
                Ok(obtained) => {
                    for (position, &index) in members.iter().enumerate() {
                        let Ok(prep) = &prepared[index] else {
                            unreachable!()
                        };
                        let deduped = position > 0;
                        let response = self.respond(
                            &obtained.entry,
                            &prep.canon,
                            &batch.requests[index].placement,
                            obtained.cached,
                            // Shared members are coalesced in spirit: they
                            // rode the representative's resolve.
                            obtained.coalesced || deduped,
                        );
                        results[index] = Some(BatchSearchItem {
                            ok: Some(response),
                            error: None,
                            deduped,
                        });
                    }
                    deduped_total += members.len() - 1;
                }
                Err(e) => {
                    // The whole group shares the representative's failure:
                    // they asked for the same solve.
                    match &e {
                        ServiceError::Timeout(_) => {
                            self.metrics
                                .timeouts
                                .fetch_add(members.len() as u64, Ordering::Relaxed);
                        }
                        _ => {
                            self.metrics
                                .errors
                                .fetch_add(members.len() as u64, Ordering::Relaxed);
                        }
                    }
                    for &index in members {
                        results[index] = Some(BatchSearchItem {
                            ok: None,
                            error: Some(ErrorBody {
                                kind: e.kind().to_string(),
                                error: e.to_string(),
                            }),
                            deduped: false,
                        });
                    }
                }
            }
        }
        // Members that failed preparation (and never joined a group).
        for (index, prep) in prepared.iter().enumerate() {
            if let Err(e) = prep {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                results[index] = Some(BatchSearchItem {
                    ok: None,
                    error: Some(ErrorBody {
                        kind: e.kind().to_string(),
                        error: e.to_string(),
                    }),
                    deduped: false,
                });
            }
        }
        self.metrics
            .batch_deduped
            .fetch_add(deduped_total as u64, Ordering::Relaxed);
        self.metrics.record_latency(arrived.elapsed());
        BatchSearchResponse {
            results: results
                .into_iter()
                .map(|item| item.expect("every batch member resolved"))
                .collect(),
            unique_solves: group_order.len(),
            deduped: deduped_total,
        }
    }

    /// Canonicalizes a placement under the configured node budget. A search
    /// that hits the budget completes greedily (bounded latency; relabeled
    /// variants may land on different fingerprints and miss each other's
    /// cache entries) and counts in
    /// `tessel_fingerprint_canon_budget_exhausted_total`.
    fn canonicalize_budgeted(&self, placement: &PlacementSpec) -> CanonicalPlacement {
        let (canon, stats) = placement.canonicalize_budgeted(self.config.canon_node_budget);
        if stats.budget_exhausted {
            self.metrics
                .canon_budget_exhausted
                .fetch_add(1, Ordering::Relaxed);
            tessel_obs::warn(
                "fingerprint",
                "canonical-labeling node budget exhausted; labeling completed greedily",
                &[
                    ("fingerprint", &canon.fingerprint.to_string()),
                    ("budget", &self.config.canon_node_budget.to_string()),
                ],
            );
        }
        canon
    }

    /// Cache lookup trusting fingerprint equality: the exact canonical
    /// labeling guarantees equal fingerprints mean equal canonical forms, so
    /// only the stored parameters are re-checked. Under
    /// `--paranoid-fingerprints` the full canonical-placement comparison is
    /// reinstated; a mismatch counts in
    /// `tessel_fingerprint_paranoia_mismatches_total` and degrades to a miss.
    fn cache_lookup(
        &self,
        key: CacheKey,
        canon: &CanonicalPlacement,
        params: &CacheParams,
    ) -> Option<Arc<CachedSearch>> {
        let entry = self.cache.get(key)?;
        if entry.params != *params || entry.fingerprint != canon.fingerprint {
            return None;
        }
        if self.config.paranoid_fingerprints && entry.canonical_placement != canon.placement {
            self.metrics
                .fingerprint_paranoia_mismatches
                .fetch_add(1, Ordering::Relaxed);
            tessel_obs::warn(
                "cache",
                "fingerprint paranoia: canonical form mismatch on lookup",
                &[("fingerprint", &canon.fingerprint.to_string())],
            );
            return None;
        }
        Some(entry)
    }

    /// Consults the ring owner for a locally missed request. A validated
    /// remote hit is adopted into the local cache (so the next identical
    /// request is a local hit); every other outcome — this node is the
    /// owner, the owner also missed, the owner is unreachable — returns
    /// `None` and the caller solves locally.
    fn cluster_fetch(
        &self,
        key: CacheKey,
        canon: &CanonicalPlacement,
        params: &CacheParams,
    ) -> Option<Arc<CachedSearch>> {
        let cluster = self.cluster.as_ref()?;
        match cluster.fetch_from_owner(canon, params) {
            RemoteFetch::Hit(entry) => {
                // The caller journals the insert after completing the flight.
                self.cache.insert(key, entry.clone());
                Some(entry)
            }
            RemoteFetch::LocalOwner | RemoteFetch::Miss | RemoteFetch::Unavailable => None,
        }
    }

    fn resolve_params(&self, request: &SearchRequest) -> Result<CacheParams, ServiceError> {
        let num_micro_batches = request
            .num_micro_batches
            .unwrap_or(self.config.default_micro_batches);
        if num_micro_batches == 0 {
            return Err(ServiceError::BadRequest(
                "num_micro_batches must be at least 1".into(),
            ));
        }
        let max_repetend = request
            .max_repetend_micro_batches
            .unwrap_or(self.config.default_max_repetend);
        if max_repetend == 0 || max_repetend > self.config.max_repetend_ceiling {
            return Err(ServiceError::BadRequest(format!(
                "max_repetend_micro_batches must be in 1..={}",
                self.config.max_repetend_ceiling
            )));
        }
        Ok(CacheParams {
            num_micro_batches,
            max_repetend_micro_batches: max_repetend,
        })
    }

    /// The solver thread count a request runs with: the request's ask (or
    /// the daemon default), with `0` resolved to the machine's parallelism,
    /// clamped to the configured ceiling. Not part of cache identity —
    /// every thread count proves the same optimum.
    fn resolve_solver_threads(&self, request: &SearchRequest) -> usize {
        let asked = request.solver_threads.unwrap_or(self.config.solver_threads);
        // Reuse the solver's own 0-resolution policy rather than duplicating
        // it here.
        let resolved = tessel_solver::SolverConfig::default()
            .with_threads(asked)
            .effective_threads();
        resolved.clamp(1, self.config.max_solver_threads.max(1))
    }

    /// Runs the actual search (leader path) and populates the cache on
    /// success.
    fn run_search(
        &self,
        canon: &CanonicalPlacement,
        params: &CacheParams,
        key: CacheKey,
        deadline: Option<Instant>,
        solver_threads: usize,
        sink: Option<&IncumbentSink>,
    ) -> Result<Arc<CachedSearch>, ServiceError> {
        self.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let _guard = InFlightGuard(&self.metrics);

        let started = Instant::now();
        let budget = match deadline {
            Some(deadline) => Some(
                deadline
                    .checked_duration_since(started)
                    .ok_or_else(|| ServiceError::Timeout("deadline already passed".into()))?,
            ),
            None => None,
        };
        let mut config = SearchConfig::default()
            .with_micro_batches(params.num_micro_batches)
            .with_max_repetend_micro_batches(params.max_repetend_micro_batches)
            .with_portfolio_threads(self.config.portfolio_threads)
            .with_solver_threads(solver_threads)
            .with_time_budget(budget);
        config.candidate_limit = self.config.candidate_limit;
        if let Some(sink) = sink {
            config = config.with_incumbent_sink(sink.clone());
        }
        // The parallel-solver tuning knobs apply to both solver roles; so
        // does the live progress board of the leading request, when one is
        // registered — core's per-run config cloning preserves the handle,
        // so every solve of this search publishes into it at its existing
        // node-batch flush boundaries (relaxed atomics, no added locks).
        let board = inflight::with_current(|entry| entry.board().clone());
        for solver in [&mut config.repetend_solver, &mut config.phase_solver] {
            solver.steal_depth = self.config.solver_steal_depth;
            solver.dominance_shards = self.config.solver_memo_shards;
            solver.progress = board.clone();
        }

        let outcome = TesselSearch::new(config)
            .run(&canon.placement)
            .map_err(|e| match e {
                CoreError::DeadlineExceeded => {
                    ServiceError::Timeout("search exceeded the request deadline".into())
                }
                other => ServiceError::Search(other.to_string()),
            })?;
        let search_millis = started.elapsed().as_millis() as u64;
        self.metrics.record_solver(&outcome.stats.solver);
        // Solver sub-phases, summed across the search's many solver
        // invocations, become spans of the surrounding request. Zero totals
        // (single-threaded solves have neither phase) are omitted.
        if outcome.stats.solver.warmstart_micros > 0 {
            tessel_obs::record_stage("solver_warmstart", outcome.stats.solver.warmstart_micros);
        }
        if outcome.stats.solver.parallel_micros > 0 {
            tessel_obs::record_stage("solver_parallel", outcome.stats.solver.parallel_micros);
        }

        // Simulate the schedule on the reference cluster for the
        // machine-readable utilization summary.
        let cluster = ClusterSpec::v100_cluster(canon.placement.num_devices());
        let utilization = instantiate(&canon.placement, &outcome.schedule, CommMode::NonBlocking)
            .and_then(|program| simulate(&program, &cluster, CommMode::NonBlocking))
            .map(|report| report.utilization_summary())
            .map_err(|e| ServiceError::Search(format!("simulation failed: {e}")))?;

        let entry = Arc::new(CachedSearch {
            fingerprint: canon.fingerprint,
            params: *params,
            canonical_placement: canon.placement.clone(),
            schedule: outcome.schedule,
            period: outcome.repetend.period,
            repetend_micro_batches: outcome.repetend.num_micro_batches(),
            bubble_rate: outcome.repetend.bubble_rate(&canon.placement),
            utilization,
            solver: outcome.stats.solver,
            search_millis,
        });
        self.cache.insert(key, entry.clone());
        // The caller journals the insert after completing the flight. A
        // solve for a fingerprint another daemon owns travels to the owner
        // asynchronously; the client never waits on replication.
        if let Some(cluster) = &self.cluster {
            cluster.replicate_if_remote(&entry);
        }
        Ok(entry)
    }

    /// Translates a cached (canonical-labeled) entry into the request's own
    /// device labeling and stage numbering.
    fn respond(
        &self,
        entry: &CachedSearch,
        canon: &CanonicalPlacement,
        original: &PlacementSpec,
        cached: bool,
        coalesced: bool,
    ) -> SearchResponse {
        live_stage("translate", || {
            self.respond_inner(entry, canon, original, cached, coalesced)
        })
    }

    fn respond_inner(
        &self,
        entry: &CachedSearch,
        canon: &CanonicalPlacement,
        original: &PlacementSpec,
        cached: bool,
        coalesced: bool,
    ) -> SearchResponse {
        let inv_block = canon.inverse_block_perm();
        let blocks = entry
            .schedule
            .blocks()
            .iter()
            .map(|b| scheduled_block(original, inv_block[b.stage], b.micro_batch, b.start))
            .collect();
        let mut schedule = Schedule::new(
            original.num_devices(),
            entry.schedule.num_micro_batches(),
            blocks,
        );
        if let Some(span) = entry.schedule.repetend() {
            schedule = schedule.with_repetend(span);
        }

        // Per-device utilization rows, re-indexed to the request's labels.
        let mut utilization = entry.utilization.clone();
        let mut devices = Vec::with_capacity(utilization.devices.len());
        for (original_device, &canonical_device) in canon.device_perm.iter().enumerate() {
            if let Some(row) = entry.utilization.devices.get(canonical_device) {
                let mut row = row.clone();
                row.device = original_device;
                devices.push(row);
            }
        }
        utilization.devices = devices;

        SearchResponse {
            fingerprint: entry.fingerprint,
            cached,
            coalesced,
            num_micro_batches: entry.schedule.num_micro_batches(),
            period: entry.period,
            repetend_micro_batches: entry.repetend_micro_batches,
            bubble_rate: entry.bubble_rate,
            schedule,
            utilization,
            search_millis: if cached { 0 } else { entry.search_millis },
        }
    }

    /// Appends one freshly inserted entry to the cache journal (best effort;
    /// an unwritable journal costs persistence, not the request). An append
    /// is O(entry) — the whole-cache rewrite happens only on the periodic
    /// compaction.
    fn persist_insert(&self, key: CacheKey, entry: &CachedSearch) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(&self.cache, key, entry) {
                tessel_obs::warn(
                    "cache",
                    "cannot append to cache journal",
                    &[
                        ("path", &journal.path().display().to_string()),
                        ("error", &e.to_string()),
                    ],
                );
            }
        }
    }

    /// Summary rows for every cached entry (`GET /v1/cache`).
    #[must_use]
    pub fn cache_entries(&self) -> Vec<CacheEntryInfo> {
        self.cache.list()
    }

    /// Every cached entry for `fingerprint`, in canonical labeling
    /// (`GET /v1/cache/{fingerprint}`), in the slim wire form: the canonical
    /// placement stays home — remote fetchers trust fingerprint equality and
    /// already hold their own canonicalization.
    #[must_use]
    pub fn inspect(&self, fingerprint: Fingerprint) -> InspectResponse {
        InspectResponse {
            fingerprint,
            entries: self
                .cache
                .entries_for(fingerprint)
                .iter()
                .map(|e| WireSearchEntry::slim(e))
                .collect(),
        }
    }

    /// A point-in-time metrics snapshot.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.cache.len() as u64, self.cache.evictions())
    }

    /// The live service metrics (the HTTP transport records per-endpoint and
    /// per-stage histograms through this).
    #[must_use]
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The flight recorder of completed requests.
    #[must_use]
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The `GET /v1/debug/requests` response body.
    #[must_use]
    pub fn debug_requests(&self) -> DebugRequestsResponse {
        self.recorder.snapshot()
    }

    /// The `GET /v1/debug/requests` response body restricted to records
    /// matching `query` (`?status=…&min_micros=…&endpoint=…&trace=…`).
    #[must_use]
    pub fn debug_requests_filtered(&self, query: &FlightQuery) -> DebugRequestsResponse {
        self.recorder.snapshot_filtered(query)
    }

    /// Registers one admitted request on the live in-flight registry under
    /// the calling thread's current trace ID. The HTTP transport calls this
    /// right after popping a job off the admission queue; in-process
    /// searches register themselves. Hold the guard until the request is
    /// answered.
    #[must_use]
    pub fn register_inflight(
        &self,
        method: &str,
        path: &str,
        peer: Option<String>,
    ) -> InflightGuard<'_> {
        let trace_id =
            tessel_obs::current_trace_id().map_or_else(String::new, |id| id.as_str().to_string());
        self.inflight
            .register(trace_id, method.to_string(), path.to_string(), peer)
    }

    /// The `GET /v1/debug/inflight` response body: every admitted request
    /// not yet answered, oldest first, with live solver progress.
    #[must_use]
    pub fn debug_inflight(&self) -> InflightResponse {
        self.inflight.snapshot()
    }

    /// Assembles the fleet-wide span timeline of one trace
    /// (`GET /v1/debug/trace/{trace_id}`): every record the local flight
    /// recorder retains for the trace, merged with the matching records of
    /// every healthy peer's recorder, as one start-sorted span list. Remote
    /// span starts are shifted into this daemon's clock by the peer clock
    /// offset the health prober estimates from probe RTT midpoints; stage
    /// spans are laid out back-to-back after their request's start, which
    /// is exact for the sequential pipeline stages and approximate for
    /// overlapping solver sub-phases.
    #[must_use]
    pub fn assemble_trace(&self, trace_id: &str) -> TraceAssemblyResponse {
        let local_node = self
            .cluster
            .as_ref()
            .map_or_else(|| "local".to_string(), |c| c.node_id().to_string());
        let mut nodes: Vec<String> = Vec::new();
        let mut unreachable: Vec<String> = Vec::new();
        let mut spans: Vec<TraceSpanInfo> = Vec::new();

        for record in self.recorder.find_by_trace(trace_id) {
            let info = FlightRecordInfo {
                trace_id: record.trace_id.clone(),
                method: record.method.clone(),
                path: record.path.clone(),
                status: record.status,
                start_unix_ms: record.start_unix_ms,
                total_micros: record.total_micros,
                stages: record
                    .stages
                    .iter()
                    .map(|s| crate::wire::StageTimingInfo {
                        name: s.name.clone(),
                        micros: s.micros,
                    })
                    .collect(),
            };
            push_record_spans(&mut spans, &local_node, &info, 0);
        }
        if !spans.is_empty() {
            nodes.push(local_node);
        }

        if let Some(cluster) = &self.cluster {
            let query = format!("/v1/debug/requests?trace={trace_id}");
            for peer in cluster.peers() {
                let status = peer.status();
                if !status.healthy {
                    unreachable.push(peer.node_id().to_string());
                    continue;
                }
                match peer.call("GET", &query, None) {
                    Ok((200, body)) => {
                        let Ok(remote) = serde_json::from_str::<DebugRequestsResponse>(&body)
                        else {
                            unreachable.push(peer.node_id().to_string());
                            continue;
                        };
                        let offset_ms = peer.clock_offset_ms().unwrap_or(0);
                        let mut contributed = false;
                        let mut seen: Vec<&FlightRecordInfo> = Vec::new();
                        for record in remote.recent.iter().chain(remote.slowest.iter()) {
                            if seen.contains(&record) {
                                continue;
                            }
                            seen.push(record);
                            push_record_spans(&mut spans, peer.node_id(), record, offset_ms);
                            contributed = true;
                        }
                        if contributed {
                            nodes.push(peer.node_id().to_string());
                        }
                    }
                    _ => unreachable.push(peer.node_id().to_string()),
                }
            }
        }

        spans.sort_by(|a, b| {
            a.start_unix_ms
                .cmp(&b.start_unix_ms)
                .then_with(|| a.node.cmp(&b.node))
        });
        TraceAssemblyResponse {
            trace_id: trace_id.to_string(),
            nodes,
            unreachable,
            spans,
        }
    }

    /// Deposits one completed request into the flight recorder and folds its
    /// per-stage timings into the stage-duration histograms. Called by the
    /// HTTP transport once per request (after the response write) and by
    /// [`ScheduleService::search`] for in-process callers.
    pub fn record_flight(&self, record: FlightRecord) {
        for stage in &record.stages {
            self.metrics.observe_stage_micros(&stage.name, stage.micros);
        }
        self.recorder.record(record);
    }

    /// Compacts the cache journal now (inserts append to it continuously
    /// when a path is configured).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; does nothing without a configured path.
    pub fn save_cache(&self) -> std::io::Result<()> {
        match &self.journal {
            Some(journal) => journal.compact(&self.cache),
            None => Ok(()),
        }
    }

    /// The cluster tier, when the daemon runs with `--node-id`/`--peer`.
    #[must_use]
    pub fn cluster(&self) -> Option<&Cluster> {
        self.cluster.as_ref()
    }

    /// The `GET /v1/cluster` status document; `None` when the daemon runs
    /// standalone.
    #[must_use]
    pub fn cluster_status(
        &self,
        fingerprint: Option<Fingerprint>,
    ) -> Option<ClusterStatusResponse> {
        self.cluster.as_ref().map(|c| c.status(fingerprint))
    }

    /// A point-in-time snapshot of the cluster counters; `None` when the
    /// daemon runs standalone.
    #[must_use]
    pub fn cluster_snapshot(&self) -> Option<ClusterSnapshot> {
        self.cluster.as_ref().map(Cluster::snapshot)
    }

    /// Validates one full wire entry claimed to belong to `fingerprint`
    /// before adopting it into the local cache (replication and warm-up
    /// share this bar): this node must own the fingerprint per its own ring,
    /// the entry must carry a structurally valid canonical placement, the
    /// schedule must validate against that placement, the parameters must be
    /// sane, **and** the shipped placement must re-canonicalize to exactly
    /// `fingerprint`. The last check runs unconditionally — exact labeling
    /// only guarantees that correct nodes agree on a fingerprint they each
    /// compute; it cannot vouch for a peer's *claim*, and a consistent but
    /// mislabeled entry passes every structural check. Replication and
    /// warm-up are off the request hot path, so the re-canonicalization is
    /// cheap insurance; a mismatch is counted in
    /// `tessel_fingerprint_wire_mismatches_total` and the entry is rejected,
    /// as is an entry whose re-canonicalization blows the node budget (a
    /// fingerprint this node cannot reproduce exactly is a fingerprint it
    /// cannot trust).
    fn validate_wire_entry(
        &self,
        fingerprint: Fingerprint,
        entry: &WireSearchEntry,
    ) -> Option<CachedSearch> {
        let owns = self
            .cluster
            .as_ref()
            .is_some_and(|cluster| cluster.owns(fingerprint));
        let placement = entry.canonical_placement.as_ref()?;
        let structurally_valid = owns
            && entry.fingerprint == fingerprint
            && placement.validate().is_ok()
            && entry.schedule.validate(placement).is_ok()
            && entry.params.num_micro_batches > 0
            && entry.params.max_repetend_micro_batches > 0;
        if !structurally_valid {
            return None;
        }
        let (canon, stats) = placement.canonicalize_budgeted(self.config.canon_node_budget);
        if stats.budget_exhausted {
            self.metrics
                .canon_budget_exhausted
                .fetch_add(1, Ordering::Relaxed);
            tessel_obs::warn(
                "cluster",
                "rejecting wire entry: canonical-labeling budget exhausted while re-verifying the claimed fingerprint",
                &[("claimed", &fingerprint.to_string())],
            );
            return None;
        }
        if canon.fingerprint != fingerprint {
            self.metrics
                .fingerprint_wire_mismatches
                .fetch_add(1, Ordering::Relaxed);
            tessel_obs::warn(
                "cluster",
                "rejecting wire entry: shipped placement does not re-canonicalize to its claimed fingerprint",
                &[
                    ("claimed", &fingerprint.to_string()),
                    ("actual", &canon.fingerprint.to_string()),
                ],
            );
            return None;
        }
        Some(entry.clone().into_cached(placement.clone()))
    }

    /// Accepts entries replicated by a non-owner daemon
    /// (`PUT /v1/cache/{fp}`). Each entry is validated — the fingerprint must
    /// be one this node owns per its own ring, the shipped canonical
    /// placement must be structurally valid, the schedule must validate
    /// against it, and the placement must re-canonicalize to exactly the
    /// claimed fingerprint (always, not just in paranoid mode; see
    /// `ScheduleService::validate_wire_entry`) — so a confused peer (or a
    /// fleet misconfigured with divergent `--peer` lists) can never poison
    /// this cache or park entries where no warm-up will ever find them. Any
    /// mislabeling caught counts in
    /// `tessel_fingerprint_wire_mismatches_total`.
    #[must_use]
    pub fn accept_replication(
        &self,
        fingerprint: Fingerprint,
        exchange: &CacheExchange,
    ) -> ReplicationAck {
        let mut ack = ReplicationAck {
            accepted: 0,
            rejected: 0,
        };
        for entry in &exchange.entries {
            let cached = (exchange.fingerprint == fingerprint)
                .then(|| self.validate_wire_entry(fingerprint, entry))
                .flatten();
            let Some(cached) = cached else {
                ack.rejected += 1;
                continue;
            };
            let key = CacheKey::new(fingerprint, &cached.params);
            let cached = Arc::new(cached);
            self.cache.insert(key, cached.clone());
            self.persist_insert(key, &cached);
            ack.accepted += 1;
        }
        if let Some(cluster) = &self.cluster {
            use std::sync::atomic::Ordering as AtomicOrdering;
            cluster
                .metrics()
                .replications_received
                .fetch_add(ack.accepted as u64, AtomicOrdering::Relaxed);
            cluster
                .metrics()
                .replications_rejected
                .fetch_add(ack.rejected as u64, AtomicOrdering::Relaxed);
        }
        ack
    }

    /// This daemon's cache entries owned by ring member `node_id`, grouped by
    /// fingerprint (`GET /v1/cluster/export/{node}` — the warm-up stream).
    /// `None` when the daemon runs standalone or `node_id` is not a ring
    /// member.
    #[must_use]
    pub fn export_owned(&self, node_id: &str) -> Option<Vec<CacheExchange>> {
        let cluster = self.cluster.as_ref()?;
        if !cluster.ring().nodes().iter().any(|n| n == node_id) {
            return None;
        }
        let mut by_fingerprint: std::collections::BTreeMap<u64, Vec<WireSearchEntry>> =
            std::collections::BTreeMap::new();
        for (_key, entry) in self.cache.export() {
            if cluster.ring().owner_of(entry.fingerprint) == node_id {
                // Full form: the warm-up receiver re-canonicalizes the
                // placement before adopting it.
                by_fingerprint
                    .entry(entry.fingerprint.0)
                    .or_default()
                    .push(WireSearchEntry::full(&entry));
            }
        }
        Some(
            by_fingerprint
                .into_iter()
                .map(|(fp, entries)| CacheExchange {
                    fingerprint: Fingerprint(fp),
                    entries,
                })
                .collect(),
        )
    }

    /// Streams this node's ring-owned entries from every reachable peer into
    /// the local cache (startup warm-up). Returns how many entries were
    /// adopted; 0 standalone. `tessel-server` runs this in a background
    /// thread right after binding.
    pub fn warm_cache_from_peers(&self) -> usize {
        let Some(cluster) = &self.cluster else {
            return 0;
        };
        cluster.warm_from_peers(|fingerprint, entry| {
            let Some(cached) = self.validate_wire_entry(fingerprint, &entry) else {
                return false;
            };
            let key = CacheKey::new(cached.fingerprint, &cached.params);
            let cached = Arc::new(cached);
            self.cache.insert(key, cached.clone());
            self.persist_insert(key, &cached);
            true
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tessel_core::ir::BlockKind;

    fn v_shape(d: usize) -> PlacementSpec {
        let mut b = PlacementSpec::builder(format!("v{d}"), d);
        b.set_memory_capacity(Some(d as i64 + 1));
        let mut prev: Option<usize> = None;
        for dev in 0..d {
            let deps: Vec<usize> = prev.into_iter().collect();
            prev = Some(
                b.add_block(format!("f{dev}"), BlockKind::Forward, [dev], 1, 1, deps)
                    .unwrap(),
            );
        }
        for dev in (0..d).rev() {
            let deps: Vec<usize> = prev.into_iter().collect();
            prev = Some(
                b.add_block(format!("b{dev}"), BlockKind::Backward, [dev], 2, -1, deps)
                    .unwrap(),
            );
        }
        b.build().unwrap()
    }

    fn quick_service() -> ScheduleService {
        ScheduleService::new(ServiceConfig {
            default_micro_batches: 4,
            default_max_repetend: 3,
            ..ServiceConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn identical_requests_hit_the_cache_byte_identically() {
        let service = quick_service();
        let request = SearchRequest::for_placement(v_shape(2));
        let first = service.search(&request).unwrap();
        let second = service.search(&request).unwrap();
        assert!(!first.cached);
        assert!(second.cached);
        assert_eq!(first.schedule, second.schedule);
        // Byte-identical over the wire (modulo the cached/search_millis
        // bookkeeping fields, which describe the request, not the result).
        let render = |r: &SearchResponse| serde_json::to_string(&r.schedule).unwrap();
        assert_eq!(render(&first), render(&second));
        let snap = service.metrics_snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn permuted_devices_hit_via_the_canonical_fingerprint() {
        let service = quick_service();
        let placement = v_shape(3);
        let first = service
            .search(&SearchRequest::for_placement(placement.clone()))
            .unwrap();
        let order: Vec<usize> = (0..placement.num_blocks()).collect();
        let permuted = placement.permuted(&[2, 0, 1], &order).unwrap();
        let second = service
            .search(&SearchRequest::for_placement(permuted.clone()))
            .unwrap();
        assert!(second.cached, "permuted placement should hit");
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(first.period, second.period);
        // The returned schedule is valid *in the permuted labeling*.
        second.schedule.validate(&permuted).unwrap();
        first.schedule.validate(&placement).unwrap();
    }

    #[test]
    fn zero_deadline_times_out_without_poisoning_the_cache() {
        let service = quick_service();
        let mut request = SearchRequest::for_placement(v_shape(2));
        request.deadline_ms = Some(0);
        let err = service.search(&request).unwrap_err();
        assert!(matches!(err, ServiceError::Timeout(_)), "{err:?}");
        assert_eq!(service.cache_entries().len(), 0);
        let snap = service.metrics_snapshot();
        assert_eq!(snap.timeouts, 1);
        // The same placement without a deadline succeeds afterwards: the
        // timeout left no poisoned entry behind.
        request.deadline_ms = None;
        let ok = service.search(&request).unwrap();
        assert!(!ok.cached);
        assert_eq!(service.cache_entries().len(), 1);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let service = quick_service();
        let mut request = SearchRequest::for_placement(v_shape(2));
        request.num_micro_batches = Some(0);
        assert!(matches!(
            service.search(&request).unwrap_err(),
            ServiceError::BadRequest(_)
        ));
        let mut request = SearchRequest::for_placement(v_shape(2));
        request.max_repetend_micro_batches = Some(99);
        assert!(matches!(
            service.search(&request).unwrap_err(),
            ServiceError::BadRequest(_)
        ));
        let snap = service.metrics_snapshot();
        assert_eq!(snap.errors, 2);
    }

    #[test]
    fn raised_default_max_repetend_raises_the_ceiling() {
        let service = ScheduleService::new(ServiceConfig {
            default_max_repetend: 10,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert_eq!(service.config().max_repetend_ceiling, 10);
        // A request relying on the default is accepted, not rejected as
        // exceeding the (now-raised) ceiling.
        let err = service.resolve_params(&SearchRequest::for_placement(v_shape(2)));
        assert!(err.is_ok());
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let service = Arc::new(quick_service());
        let placement = v_shape(4);
        let mut handles = Vec::new();
        for _ in 0..6 {
            let service = service.clone();
            let placement = placement.clone();
            handles.push(std::thread::spawn(move || {
                service
                    .search(&SearchRequest::for_placement(placement))
                    .unwrap()
            }));
        }
        let responses: Vec<SearchResponse> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let periods: Vec<u64> = responses.iter().map(|r| r.period).collect();
        assert!(periods.windows(2).all(|w| w[0] == w[1]));
        let snap = service.metrics_snapshot();
        assert_eq!(snap.requests, 6);
        // Every request either hit the cache, ran the one real search, or
        // was coalesced onto it — but the solver ran at most... once per
        // concurrent non-coalesced straggler; the common case is exactly one
        // miss. At minimum, coalescing plus caching must cover the rest.
        assert_eq!(
            snap.cache_hits + snap.cache_misses + snap.coalesced,
            6,
            "{snap:?}"
        );
        assert!(snap.cache_misses >= 1);
    }

    #[test]
    fn solver_effort_reaches_metrics_and_inspect() {
        let service = quick_service();
        let response = service
            .search(&SearchRequest::for_placement(v_shape(2)))
            .unwrap();
        let snap = service.metrics_snapshot();
        assert!(snap.solver_solves > 0, "{snap:?}");
        assert!(snap.solver_nodes > 0, "{snap:?}");
        assert!(snap.solver_shared_memo_hits <= snap.solver_pruned_dominance);
        let rendered = snap.render_prometheus();
        assert!(rendered.contains("tessel_solver_nodes_total"));
        assert!(rendered.contains("tessel_solver_steals_total"));
        // The inspect payload carries the per-search totals.
        let inspect = service.inspect(response.fingerprint);
        assert_eq!(inspect.entries.len(), 1);
        assert_eq!(inspect.entries[0].solver.nodes, snap.solver_nodes);
        // Cache hits do not re-run the solver: the counters stay put.
        service
            .search(&SearchRequest::for_placement(v_shape(2)))
            .unwrap();
        assert_eq!(service.metrics_snapshot().solver_nodes, snap.solver_nodes);
    }

    #[test]
    fn multithreaded_deadline_times_out_without_poisoning_the_cache() {
        // The cooperative-cancellation path under the work-stealing solver:
        // a 4-thread search with an (effectively) expired deadline must fail
        // with a timeout promptly, cache nothing, and leave the service able
        // to serve the same placement afterwards.
        let service = ScheduleService::new(ServiceConfig {
            default_micro_batches: 4,
            default_max_repetend: 3,
            solver_threads: 4,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut request = SearchRequest::for_placement(v_shape(3));
        request.solver_threads = Some(4);
        request.deadline_ms = Some(0);
        let started = Instant::now();
        let err = service.search(&request).unwrap_err();
        assert!(matches!(err, ServiceError::Timeout(_)), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "timeout was not prompt: {:?}",
            started.elapsed()
        );
        assert_eq!(service.cache_entries().len(), 0);
        assert_eq!(service.metrics_snapshot().timeouts, 1);
        // Same placement without the deadline: clean search, cached result.
        request.deadline_ms = None;
        let ok = service.search(&request).unwrap();
        assert!(!ok.cached);
        assert_eq!(service.cache_entries().len(), 1);
    }

    #[test]
    fn solver_thread_requests_are_clamped_to_the_ceiling() {
        let service = ScheduleService::new(ServiceConfig {
            solver_threads: 2,
            max_solver_threads: 4,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut request = SearchRequest::for_placement(v_shape(2));
        assert_eq!(service.resolve_solver_threads(&request), 2);
        request.solver_threads = Some(64);
        assert_eq!(service.resolve_solver_threads(&request), 4);
        request.solver_threads = Some(3);
        assert_eq!(service.resolve_solver_threads(&request), 3);
        request.solver_threads = Some(0);
        let auto = service.resolve_solver_threads(&request);
        assert!((1..=4).contains(&auto));
    }

    #[test]
    fn inspect_returns_canonical_entries_with_utilization() {
        let service = quick_service();
        let placement = v_shape(2);
        let response = service
            .search(&SearchRequest::for_placement(placement))
            .unwrap();
        let inspect = service.inspect(response.fingerprint);
        assert_eq!(inspect.entries.len(), 1);
        let entry = &inspect.entries[0];
        assert_eq!(entry.period, response.period);
        assert_eq!(entry.utilization.devices.len(), 2);
        assert!(entry.utilization.makespan > 0);
        // Unknown fingerprints inspect to an empty list.
        assert!(service.inspect(Fingerprint(0)).entries.is_empty());
    }

    #[test]
    fn replication_is_rejected_for_fingerprints_this_node_does_not_own() {
        use crate::cluster::peers::PeerConfig;
        use crate::cluster::ClusterConfig;
        let mut cluster = ClusterConfig::new(
            "a",
            vec![PeerConfig {
                node_id: "b".into(),
                addr: "127.0.0.1:9".into(), // dead: every remote fetch degrades
            }],
        );
        cluster.probe_interval = Duration::ZERO;
        cluster.connect_timeout = Duration::from_millis(50);
        cluster.peer_timeout = Duration::from_millis(50);
        let service = ScheduleService::new(ServiceConfig {
            default_micro_batches: 4,
            default_max_repetend: 3,
            cluster: Some(cluster),
            ..ServiceConfig::default()
        })
        .unwrap();
        // Solve two placements and split them by ring ownership.
        for devices in [2usize, 3, 4, 5] {
            service
                .search(&SearchRequest::for_placement(v_shape(devices)))
                .unwrap();
        }
        let cluster = service.cluster().unwrap();
        let entries: Vec<_> = service
            .cache_entries()
            .iter()
            .flat_map(|row| service.cache.entries_for(row.fingerprint))
            .collect();
        for entry in entries {
            let fp = entry.fingerprint;
            // Replication PUTs carry the full entry, placement included.
            let exchange = CacheExchange {
                fingerprint: fp,
                entries: vec![WireSearchEntry::full(&entry)],
            };
            let ack = service.accept_replication(fp, &exchange);
            if cluster.owns(fp) {
                assert_eq!((ack.accepted, ack.rejected), (1, 0), "owned fp {fp}");
            } else {
                // A PUT for a fingerprint the ring assigns elsewhere would
                // park the entry where no warm-up ever finds it: reject.
                assert_eq!((ack.accepted, ack.rejected), (0, 1), "non-owned fp {fp}");
            }
        }
    }

    #[test]
    fn old_format_journal_cold_starts_and_persistence_recovers() {
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/service-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("old-format-{}.json", std::process::id()));
        // A pre-journal whole-file snapshot: unreadable by the replay, which
        // must cost a (warned) cold start — and the startup compaction must
        // replace the file so persistence WORKS again afterwards.
        std::fs::write(&path, "[\n  {\"key\": 1}\n]\n").unwrap();
        let config = ServiceConfig {
            cache_path: Some(path.clone()),
            default_micro_batches: 4,
            default_max_repetend: 3,
            ..ServiceConfig::default()
        };
        let request = SearchRequest::for_placement(v_shape(2));
        {
            let service = ScheduleService::new(config.clone()).unwrap();
            assert_eq!(service.cache_entries().len(), 0, "cold start");
            assert!(!service.search(&request).unwrap().cached);
        }
        // The restart replays the repaired journal, not the old array file.
        let service = ScheduleService::new(config).unwrap();
        assert!(service.search(&request).unwrap().cached);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_process_searches_populate_the_flight_recorder() {
        let service = quick_service();
        let request = SearchRequest::for_placement(v_shape(2));
        service.search(&request).unwrap(); // miss: solves
        service.search(&request).unwrap(); // hit: cache only
        let debug = service.debug_requests();
        assert_eq!(debug.recent.len(), 2, "{debug:?}");
        let hit = &debug.recent[0]; // newest first
        let miss = &debug.recent[1];
        for record in [hit, miss] {
            assert_eq!(record.method, "CALL");
            assert_eq!(record.path, "/v1/search");
            assert_eq!(record.status, 200);
            assert_eq!(record.trace_id.len(), 32);
            assert!(record.start_unix_ms > 0);
        }
        assert_ne!(hit.trace_id, miss.trace_id);
        let stage = |r: &crate::wire::FlightRecordInfo, name: &str| {
            r.stages.iter().find(|s| s.name == name).map(|s| s.micros)
        };
        assert!(
            stage(miss, "solve").is_some_and(|micros| micros > 0),
            "{miss:?}"
        );
        assert!(stage(miss, "translate").is_some(), "{miss:?}");
        assert!(stage(hit, "solve").is_none(), "hits never solve: {hit:?}");
        assert!(stage(hit, "cache_lookup").is_some(), "{hit:?}");
        // The slowest view holds both, slowest first; the miss dominates.
        assert_eq!(debug.slowest.len(), 2);
        assert_eq!(debug.slowest[0].trace_id, miss.trace_id);
        // Stage timings reached the per-stage histogram family.
        let histograms = service.metrics().render_histograms();
        assert!(
            histograms.contains("tessel_request_stage_duration_seconds_count{stage=\"solve\"} 1"),
            "{histograms}"
        );
    }

    #[test]
    fn cache_persists_across_service_restarts() {
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/service-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cache-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = ServiceConfig {
            cache_path: Some(path.clone()),
            default_micro_batches: 4,
            default_max_repetend: 3,
            ..ServiceConfig::default()
        };
        let request = SearchRequest::for_placement(v_shape(2));
        let first = {
            let service = ScheduleService::new(config.clone()).unwrap();
            service.search(&request).unwrap()
        };
        // A fresh service over the same snapshot starts warm.
        let service = ScheduleService::new(config).unwrap();
        let second = service.search(&request).unwrap();
        assert!(second.cached, "restarted daemon should hit its snapshot");
        assert_eq!(first.schedule, second.schedule);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_requests_dedup_to_one_solve() {
        let service = quick_service();
        let placement = v_shape(3);
        let order: Vec<usize> = (0..placement.num_blocks()).collect();
        let relabeled = placement.permuted(&[2, 0, 1], &order).unwrap();
        let mut invalid = SearchRequest::for_placement(v_shape(2));
        invalid.num_micro_batches = Some(0);
        let batch = BatchSearchRequest {
            requests: vec![
                SearchRequest::for_placement(placement.clone()),
                SearchRequest::for_placement(placement),
                SearchRequest::for_placement(relabeled.clone()),
                invalid,
            ],
        };
        let response = service.search_batch(&batch);
        assert_eq!(response.results.len(), 4);
        // Two byte-identical members plus a relabeled one share a single
        // solve; the invalid member fails alone.
        assert_eq!(response.unique_solves, 1);
        assert_eq!(response.deduped, 2);
        let first = response.results[0].ok.as_ref().unwrap();
        assert!(!response.results[0].deduped);
        for item in &response.results[1..3] {
            assert!(item.deduped);
            let ok = item.ok.as_ref().unwrap();
            assert_eq!(ok.period, first.period);
            assert_eq!(ok.fingerprint, first.fingerprint);
            assert!(ok.coalesced, "shared members ride the representative");
        }
        // The relabeled member's schedule is valid in its *own* labeling.
        response.results[2]
            .ok
            .as_ref()
            .unwrap()
            .schedule
            .validate(&relabeled)
            .unwrap();
        assert!(response.results[3].error.is_some());
        // The CI smoke asserts on exactly these deltas: one real miss, no
        // hits, the shared members counted only as deduped.
        let snap = service.metrics_snapshot();
        assert_eq!(snap.cache_misses, 1, "{snap:?}");
        assert_eq!(snap.cache_hits, 0, "{snap:?}");
        assert_eq!(snap.batch_deduped, 2, "{snap:?}");
        assert_eq!(snap.errors, 1, "{snap:?}");
    }

    #[test]
    fn stale_journal_entries_are_dropped_on_replay() {
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/service-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stale-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = ServiceConfig {
            cache_path: Some(path.clone()),
            default_micro_batches: 4,
            default_max_repetend: 3,
            ..ServiceConfig::default()
        };
        let request = SearchRequest::for_placement(v_shape(2));
        let fingerprint = {
            let service = ScheduleService::new(config.clone()).unwrap();
            service.search(&request).unwrap().fingerprint
        };
        // Tamper the journal: rewrite the stored fingerprint to a different
        // (well-formed) value, as if the entry had been keyed by an older
        // labeling scheme. Re-canonicalization at replay must disagree.
        let text = std::fs::read_to_string(&path).unwrap();
        let stale = Fingerprint(fingerprint.0 ^ 1);
        assert!(text.contains(&fingerprint.to_string()));
        let tampered = text.replace(&fingerprint.to_string(), &stale.to_string());
        std::fs::write(&path, tampered).unwrap();
        let service = ScheduleService::new(config).unwrap();
        assert_eq!(service.cache_entries().len(), 0, "stale entry must drop");
        let snap = service.metrics_snapshot();
        assert_eq!(snap.journal_stale_dropped, 1, "{snap:?}");
        // The same placement solves cleanly afterwards (no poisoned state),
        // and the startup compaction already purged the dead record.
        assert!(!service.search(&request).unwrap().cached);
        let compacted = std::fs::read_to_string(&path).unwrap();
        assert!(!compacted.contains(&stale.to_string()));
        let _ = std::fs::remove_file(&path);
    }
}
