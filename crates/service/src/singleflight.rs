//! Request coalescing: identical concurrent requests share one in-flight
//! computation.
//!
//! Without coalescing, a thundering herd of identical search requests would
//! each pay the full (potentially seconds-long) solver cost before the first
//! one populates the cache. [`SingleFlight::join`] admits exactly one
//! *leader* per key; every other caller blocks on a condition variable until
//! the leader publishes its result via [`SingleFlight::complete`] — or until
//! the follower's own deadline passes, whichever comes first.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct Flight<V> {
    result: Mutex<Option<V>>,
    ready: Condvar,
}

/// The outcome of joining a flight.
#[derive(Debug, PartialEq, Eq)]
pub enum Joined<V> {
    /// The caller is the leader: it must run the computation and publish the
    /// result with [`SingleFlight::complete`] (even on failure, by publishing
    /// the error).
    Leader,
    /// The leader finished; here is its (shared) result.
    Done(V),
    /// The caller's deadline passed while waiting for the leader.
    TimedOut,
}

/// Coalesces concurrent computations by `u64` key.
#[derive(Debug, Default)]
pub struct SingleFlight<V: Clone> {
    flights: Mutex<HashMap<u64, Arc<Flight<V>>>>,
}

impl<V: Clone> SingleFlight<V> {
    /// Creates an empty coalescer.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Number of keys currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flights lock").len()
    }

    /// Joins the flight for `key`: the first caller becomes the leader, later
    /// callers block until the result is published or their `deadline`
    /// passes.
    #[must_use]
    pub fn join(&self, key: u64, deadline: Option<Instant>) -> Joined<V> {
        let flight = {
            let mut flights = self.flights.lock().expect("flights lock");
            match flights.entry(key) {
                Entry::Vacant(slot) => {
                    slot.insert(Arc::new(Flight {
                        result: Mutex::new(None),
                        ready: Condvar::new(),
                    }));
                    return Joined::Leader;
                }
                Entry::Occupied(slot) => slot.get().clone(),
            }
        };
        let mut result = flight.result.lock().expect("flight result lock");
        loop {
            if let Some(value) = result.as_ref() {
                return Joined::Done(value.clone());
            }
            match deadline {
                None => result = flight.ready.wait(result).expect("flight result lock"),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Joined::TimedOut;
                    }
                    let (guard, _) = flight
                        .ready
                        .wait_timeout(result, deadline - now)
                        .expect("flight result lock");
                    result = guard;
                }
            }
        }
    }

    /// Publishes the leader's result for `key` and wakes every waiting
    /// follower. The flight is removed, so callers arriving later start a new
    /// one (and will typically hit the cache instead).
    pub fn complete(&self, key: u64, value: V) {
        let flight = self.flights.lock().expect("flights lock").remove(&key);
        if let Some(flight) = flight {
            *flight.result.lock().expect("flight result lock") = Some(value);
            flight.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn one_leader_many_followers() {
        let flight: Arc<SingleFlight<u64>> = Arc::new(SingleFlight::new());
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let flight = flight.clone();
            let leaders = leaders.clone();
            handles.push(std::thread::spawn(move || match flight.join(42, None) {
                Joined::Leader => {
                    leaders.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(20));
                    flight.complete(42, 7);
                    7
                }
                Joined::Done(v) => v,
                Joined::TimedOut => unreachable!("no deadline set"),
            }));
        }
        let results: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
        assert!(results.iter().all(|&v| v == 7));
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn follower_deadline_fires_without_a_leader_result() {
        let flight: SingleFlight<u64> = SingleFlight::new();
        assert_eq!(flight.join(1, None), Joined::Leader);
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(flight.join(1, Some(deadline)), Joined::TimedOut);
        // The leader can still publish afterwards without issue.
        flight.complete(1, 3);
        assert_eq!(flight.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flight: SingleFlight<u64> = SingleFlight::new();
        assert_eq!(flight.join(1, None), Joined::Leader);
        assert_eq!(flight.join(2, None), Joined::Leader);
        assert_eq!(flight.in_flight(), 2);
        flight.complete(1, 1);
        flight.complete(2, 2);
    }
}
