//! Consistent-hash ring over canonical placement fingerprints.
//!
//! Every cluster member builds the same ring from the same membership list
//! (its own node id plus every `--peer`): each node contributes
//! [`HashRing::vnodes_per_node`] *virtual nodes* — hash points seeded by the
//! node id — and a fingerprint is owned by the node whose next-clockwise
//! point follows the fingerprint's own hash. Two properties make this the
//! right sharding function for a fleet of schedule-search daemons:
//!
//! * **Balance**: with enough virtual nodes the key space splits close to
//!   evenly, regardless of how the node ids themselves hash.
//! * **Minimal disruption**: adding or removing one node only remaps the
//!   keys adjacent to that node's points — every other fingerprint keeps its
//!   owner, so a rolling restart does not churn the whole logical cache.
//!
//! Both properties are pinned down by the vendored-proptest suite in
//! `crates/service/tests/ring_properties.rs`.

use tessel_core::fingerprint::Fingerprint;

/// Default virtual nodes contributed by each member.
pub const DEFAULT_VNODES: usize = 64;

/// splitmix64 finalizer: decorrelates structured inputs (sequential vnode
/// indices, short node-id hashes) into uniform ring positions.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the node id: the per-node seed for its virtual-node stream.
fn node_seed(node_id: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in node_id.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The consistent-hash ring. Immutable after construction — membership is
/// static (`--peer` flags), so a changed fleet means a restarted ring.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted hash points: `(position, node index)`.
    points: Vec<(u64, u32)>,
    /// Ring members, sorted and deduplicated.
    nodes: Vec<String>,
    vnodes_per_node: usize,
}

impl HashRing {
    /// Builds the ring for `node_ids` with `vnodes` virtual nodes each
    /// (clamped to at least 1). Duplicate ids collapse to one member, and the
    /// member order does not matter — every daemon of the fleet derives the
    /// identical ring from the identical membership set.
    #[must_use]
    pub fn new<I, S>(node_ids: I, vnodes: usize) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut nodes: Vec<String> = node_ids.into_iter().map(Into::into).collect();
        nodes.sort();
        nodes.dedup();
        let vnodes_per_node = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes.len() * vnodes_per_node);
        for (index, node) in nodes.iter().enumerate() {
            let seed = node_seed(node);
            for vnode in 0..vnodes_per_node {
                points.push((mix(seed ^ mix(vnode as u64)), index as u32));
            }
        }
        // Ties (astronomically unlikely) resolve to the lexicographically
        // smaller node, identically on every member.
        points.sort_unstable();
        HashRing {
            points,
            nodes,
            vnodes_per_node,
        }
    }

    /// The ring members, sorted.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Virtual nodes contributed by each member.
    #[must_use]
    pub fn vnodes_per_node(&self) -> usize {
        self.vnodes_per_node
    }

    /// The member owning raw key `key`: the first hash point at or after
    /// `mix(key)`, wrapping around the ring.
    ///
    /// # Panics
    ///
    /// Panics if the ring was built from an empty membership list.
    #[must_use]
    pub fn owner_of_key(&self, key: u64) -> &str {
        assert!(!self.points.is_empty(), "ring has no members");
        let position = mix(key);
        let index = match self.points.binary_search(&(position, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        };
        &self.nodes[self.points[index].1 as usize]
    }

    /// The member owning `fingerprint`. All cache entries of one canonical
    /// placement (every parameter combination) share the fingerprint, so they
    /// colocate on one owner.
    #[must_use]
    pub fn owner_of(&self, fingerprint: Fingerprint) -> &str {
        self.owner_of_key(fingerprint.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_order_insensitive_and_deduplicated() {
        let a = HashRing::new(["alpha", "beta", "gamma"], 16);
        let b = HashRing::new(["gamma", "alpha", "beta", "alpha"], 16);
        assert_eq!(a.nodes(), b.nodes());
        for key in 0..500u64 {
            assert_eq!(a.owner_of_key(key), b.owner_of_key(key));
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = HashRing::new(["only"], 8);
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(ring.owner_of_key(key), "only");
        }
        assert_eq!(ring.vnodes_per_node(), 8);
    }

    #[test]
    fn ownership_is_deterministic_per_fingerprint() {
        let ring = HashRing::new(["a", "b"], 32);
        let fp = Fingerprint(0x1234_5678_9abc_def0);
        assert_eq!(ring.owner_of(fp), ring.owner_of(fp));
        assert!(["a", "b"].contains(&ring.owner_of(fp)));
    }

    #[test]
    #[should_panic(expected = "ring has no members")]
    fn empty_ring_panics() {
        let ring = HashRing::new(Vec::<String>::new(), 4);
        let _ = ring.owner_of_key(1);
    }
}
