//! Static peer membership with health probing and circuit breaking.
//!
//! Each peer named by a `--peer` flag gets one keep-alive [`HttpClient`]
//! (guarded by a mutex — cluster traffic to one peer serializes on one
//! socket, which is plenty for cache exchange) plus a health record. A
//! background prober hits every peer's `/healthz` on an interval so the
//! `/v1/cluster` endpoint and the `tessel_cluster_peers_healthy` gauge stay
//! current even on an idle daemon.
//!
//! Failures trip a **circuit breaker**: after
//! [`ClusterConfig::circuit_failure_threshold`] consecutive failures the
//! peer's circuit opens for [`ClusterConfig::circuit_cooldown`], and every
//! call in that window fails instantly with [`PeerError::CircuitOpen`]
//! instead of paying a connect timeout. The prober keeps probing an open
//! circuit, so a recovered peer is readmitted within one probe interval.
//! Callers degrade on any [`PeerError`] — an unreachable owner means *solve
//! locally*, never a failed request.
//!
//! [`ClusterConfig::circuit_failure_threshold`]: super::ClusterConfig::circuit_failure_threshold
//! [`ClusterConfig::circuit_cooldown`]: super::ClusterConfig::circuit_cooldown

use crate::http::HttpClient;
use crate::wire::PeerStatusInfo;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identity and address of one peer daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerConfig {
    /// The peer's `--node-id` (its ring identity).
    pub node_id: String,
    /// The peer's HTTP address, e.g. `127.0.0.1:7701`.
    pub addr: String,
}

/// Why a peer call did not produce a response.
#[derive(Debug)]
pub enum PeerError {
    /// The circuit is open: the peer failed repeatedly and the cooldown has
    /// not elapsed. No network I/O was attempted.
    CircuitOpen,
    /// The call itself failed (connect, timeout, malformed response).
    Io(std::io::Error),
}

impl fmt::Display for PeerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerError::CircuitOpen => write!(f, "circuit open"),
            PeerError::Io(e) => write!(f, "{e}"),
        }
    }
}

#[derive(Debug)]
struct PeerHealth {
    healthy: bool,
    consecutive_failures: u64,
    circuit_open_until: Option<Instant>,
    last_error: Option<String>,
    /// Estimated peer clock minus local clock, in milliseconds, from the
    /// most recent successful probe (peer `/healthz` timestamp vs. the probe
    /// RTT midpoint). `None` until the first successful probe.
    clock_offset_ms: Option<i64>,
}

/// One peer: its config, its keep-alive client and its health record.
#[derive(Debug)]
pub struct Peer {
    config: PeerConfig,
    client: Mutex<HttpClient>,
    health: Mutex<PeerHealth>,
    failure_threshold: u64,
    circuit_cooldown: Duration,
}

impl Peer {
    fn new(
        config: PeerConfig,
        connect_timeout: Duration,
        io_timeout: Duration,
        failure_threshold: u64,
        circuit_cooldown: Duration,
    ) -> std::io::Result<Self> {
        let client = HttpClient::with_timeouts(&config.addr, connect_timeout, io_timeout)?;
        Ok(Peer {
            config,
            client: Mutex::new(client),
            health: Mutex::new(PeerHealth {
                healthy: false,
                consecutive_failures: 0,
                circuit_open_until: None,
                last_error: None,
                clock_offset_ms: None,
            }),
            failure_threshold,
            circuit_cooldown,
        })
    }

    /// The peer's ring identity.
    #[must_use]
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// The peer's HTTP address.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.config.addr
    }

    /// `true` while the circuit is open (and the cooldown has not elapsed).
    #[must_use]
    pub fn circuit_open(&self) -> bool {
        self.health
            .lock()
            .expect("peer health lock")
            .circuit_open_until
            .is_some_and(|until| Instant::now() < until)
    }

    /// Issues one request to the peer, honouring the circuit breaker.
    ///
    /// # Errors
    ///
    /// [`PeerError::CircuitOpen`] without touching the network while the
    /// breaker is open; [`PeerError::Io`] on call failure (which also feeds
    /// the breaker).
    pub fn call(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), PeerError> {
        self.call_with_headers(method, path, body, &[])
    }

    /// Like [`Peer::call`], but sends `extra_headers` with the request — the
    /// cluster tier uses this to propagate the originating request's
    /// `X-Tessel-Trace-Id` so remote fetches, replication PUTs and warm-up
    /// streams join one trace across daemons.
    ///
    /// # Errors
    ///
    /// Same as [`Peer::call`].
    pub fn call_with_headers(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<(u16, String), PeerError> {
        if self.circuit_open() {
            return Err(PeerError::CircuitOpen);
        }
        self.execute(method, path, body, extra_headers)
    }

    /// Issues one request even while the circuit is open — the prober uses
    /// this to detect recovery.
    ///
    /// # Errors
    ///
    /// [`PeerError::Io`] on call failure.
    pub fn call_bypassing_circuit(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), PeerError> {
        self.execute(method, path, body, &[])
    }

    fn execute(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<(u16, String), PeerError> {
        let result = {
            let mut client = self.client.lock().expect("peer client lock");
            client.call_with_headers(method, path, body, extra_headers)
        };
        match result {
            Ok((status, _headers, payload)) => {
                self.record_success();
                Ok((status, payload))
            }
            Err(e) => {
                self.record_failure(&e.to_string());
                Err(PeerError::Io(e))
            }
        }
    }

    fn record_success(&self) {
        let mut health = self.health.lock().expect("peer health lock");
        let recovered = health.circuit_open_until.is_some();
        health.healthy = true;
        health.consecutive_failures = 0;
        health.circuit_open_until = None;
        health.last_error = None;
        drop(health);
        if recovered {
            tessel_obs::info(
                "cluster",
                "peer circuit closed",
                &[("peer", self.node_id()), ("addr", self.addr())],
            );
        }
    }

    fn record_failure(&self, error: &str) {
        let mut health = self.health.lock().expect("peer health lock");
        health.healthy = false;
        health.consecutive_failures += 1;
        health.last_error = Some(error.to_string());
        let mut opened = false;
        if health.consecutive_failures >= self.failure_threshold {
            // Only the closed-to-open transition is logged; re-arming an
            // already open circuit (the prober re-failing) stays quiet.
            opened = health
                .circuit_open_until
                .is_none_or(|until| Instant::now() >= until);
            health.circuit_open_until = Some(Instant::now() + self.circuit_cooldown);
        }
        let failures = health.consecutive_failures;
        drop(health);
        if opened {
            tessel_obs::warn(
                "cluster",
                "peer circuit opened",
                &[
                    ("peer", self.node_id()),
                    ("addr", self.addr()),
                    ("failures", &failures.to_string()),
                    ("error", error),
                ],
            );
        }
    }

    /// Records a clock-offset estimate from a successful probe: the peer's
    /// reported wall clock minus the probe's local RTT midpoint. Accurate to
    /// roughly half the RTT plus millisecond rounding — good enough to line
    /// up spans across daemons, not for ordering sub-millisecond events.
    pub fn record_clock_offset(&self, offset_ms: i64) {
        self.health
            .lock()
            .expect("peer health lock")
            .clock_offset_ms = Some(offset_ms);
    }

    /// The latest probe-estimated peer clock offset (peer minus local),
    /// milliseconds. `None` before the first successful probe.
    #[must_use]
    pub fn clock_offset_ms(&self) -> Option<i64> {
        self.health
            .lock()
            .expect("peer health lock")
            .clock_offset_ms
    }

    /// Point-in-time status row for `/v1/cluster`.
    #[must_use]
    pub fn status(&self) -> PeerStatusInfo {
        let health = self.health.lock().expect("peer health lock");
        PeerStatusInfo {
            node_id: self.config.node_id.clone(),
            addr: self.config.addr.clone(),
            healthy: health.healthy,
            circuit_open: health
                .circuit_open_until
                .is_some_and(|until| Instant::now() < until),
            consecutive_failures: health.consecutive_failures,
            last_error: health.last_error.clone(),
            clock_offset_ms: health.clock_offset_ms,
        }
    }
}

/// The fleet's peer table plus its background health prober.
#[derive(Debug)]
pub struct PeerSet {
    peers: Vec<Arc<Peer>>,
    stop: Arc<AtomicBool>,
    prober: Mutex<Option<JoinHandle<()>>>,
}

impl PeerSet {
    /// Builds the table and starts the prober (when `probe_interval` is
    /// non-zero).
    ///
    /// # Errors
    ///
    /// Fails if any peer address does not resolve.
    pub fn new(
        configs: &[PeerConfig],
        connect_timeout: Duration,
        io_timeout: Duration,
        failure_threshold: u64,
        circuit_cooldown: Duration,
        probe_interval: Duration,
    ) -> std::io::Result<Self> {
        let peers: Vec<Arc<Peer>> = configs
            .iter()
            .map(|config| {
                Peer::new(
                    config.clone(),
                    connect_timeout,
                    io_timeout,
                    failure_threshold,
                    circuit_cooldown,
                )
                .map(Arc::new)
            })
            .collect::<std::io::Result<_>>()?;
        let stop = Arc::new(AtomicBool::new(false));
        let prober = if probe_interval.is_zero() || peers.is_empty() {
            None
        } else {
            let peers = peers.clone();
            let stop = stop.clone();
            Some(std::thread::spawn(move || {
                probe_loop(&peers, &stop, probe_interval);
            }))
        };
        Ok(PeerSet {
            peers,
            stop,
            prober: Mutex::new(prober),
        })
    }

    /// All peers, in `--peer` order.
    #[must_use]
    pub fn peers(&self) -> &[Arc<Peer>] {
        &self.peers
    }

    /// The peer registered as `node_id`, if any.
    #[must_use]
    pub fn get(&self, node_id: &str) -> Option<&Arc<Peer>> {
        self.peers.iter().find(|p| p.node_id() == node_id)
    }

    /// Number of peers whose last contact succeeded.
    #[must_use]
    pub fn healthy_count(&self) -> u64 {
        self.peers.iter().filter(|p| p.status().healthy).count() as u64
    }

    /// Number of peers with an open circuit right now.
    #[must_use]
    pub fn circuit_open_count(&self) -> u64 {
        self.peers.iter().filter(|p| p.circuit_open()).count() as u64
    }

    /// Stops and joins the prober. Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.prober.lock().expect("prober handle lock").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for PeerSet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Extracts the `unix_ms` integer a daemon's `/healthz` body reports.
fn parse_unix_ms(body: &str) -> Option<u64> {
    let rest = &body[body.find("\"unix_ms\"")? + "\"unix_ms\"".len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Probes every peer's `/healthz` each interval. Sleeps in short slices so
/// shutdown is prompt even with a long interval.
///
/// A successful probe doubles as a clock-offset measurement: the peer's
/// `unix_ms` stamp is compared against the probe's local send time plus half
/// the measured RTT (the classic NTP midpoint estimate), and the offset
/// feeds fleet-wide trace assembly.
fn probe_loop(peers: &[Arc<Peer>], stop: &AtomicBool, interval: Duration) {
    let slice = Duration::from_millis(25);
    loop {
        for peer in peers {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            // Bypass the circuit: probing an open circuit is how recovery is
            // detected before the cooldown expires.
            let sent_unix_ms = crate::flight::now_unix_ms();
            let sent = Instant::now();
            if let Ok((200, body)) = peer.call_bypassing_circuit("GET", "/healthz", None) {
                let rtt_ms = sent.elapsed().as_millis() as u64;
                if let Some(peer_unix_ms) = parse_unix_ms(&body) {
                    let midpoint = sent_unix_ms + rtt_ms / 2;
                    peer.record_clock_offset(peer_unix_ms as i64 - midpoint as i64);
                }
            }
        }
        let mut slept = Duration::ZERO;
        while slept < interval {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(slice.min(interval - slept));
            slept += slice;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lone_peer(threshold: u64, cooldown: Duration) -> Peer {
        // 127.0.0.1:9 (discard) refuses connections immediately on any sane
        // test host.
        Peer::new(
            PeerConfig {
                node_id: "dead".into(),
                addr: "127.0.0.1:9".into(),
            },
            Duration::from_millis(100),
            Duration::from_millis(100),
            threshold,
            cooldown,
        )
        .unwrap()
    }

    #[test]
    fn repeated_failures_open_the_circuit() {
        let peer = lone_peer(2, Duration::from_secs(30));
        assert!(!peer.circuit_open());
        assert!(matches!(
            peer.call("GET", "/healthz", None),
            Err(PeerError::Io(_))
        ));
        assert!(!peer.circuit_open(), "one failure is below the threshold");
        assert!(matches!(
            peer.call("GET", "/healthz", None),
            Err(PeerError::Io(_))
        ));
        assert!(peer.circuit_open(), "threshold reached");
        // While open, calls fail fast without touching the network.
        assert!(matches!(
            peer.call("GET", "/healthz", None),
            Err(PeerError::CircuitOpen)
        ));
        let status = peer.status();
        assert!(!status.healthy);
        assert!(status.circuit_open);
        assert_eq!(status.consecutive_failures, 2);
        assert!(status.last_error.is_some());
    }

    #[test]
    fn cooldown_expiry_readmits_calls() {
        let peer = lone_peer(1, Duration::from_millis(20));
        let _ = peer.call("GET", "/healthz", None);
        assert!(peer.circuit_open());
        std::thread::sleep(Duration::from_millis(30));
        assert!(!peer.circuit_open(), "cooldown elapsed");
        // The next call is attempted for real again (and fails again).
        assert!(matches!(
            peer.call("GET", "/healthz", None),
            Err(PeerError::Io(_))
        ));
    }

    #[test]
    fn clock_offsets_parse_and_round_trip() {
        assert_eq!(
            parse_unix_ms("{\"status\": \"ok\", \"unix_ms\": 1700000000123}"),
            Some(1_700_000_000_123)
        );
        assert_eq!(parse_unix_ms("{\"unix_ms\":7}"), Some(7));
        assert_eq!(parse_unix_ms("{\"status\": \"ok\"}"), None);
        assert_eq!(parse_unix_ms("{\"unix_ms\": \"nope\"}"), None);

        let peer = lone_peer(3, Duration::from_secs(1));
        assert_eq!(peer.clock_offset_ms(), None);
        assert_eq!(peer.status().clock_offset_ms, None);
        peer.record_clock_offset(-42);
        assert_eq!(peer.clock_offset_ms(), Some(-42));
        assert_eq!(peer.status().clock_offset_ms, Some(-42));
    }

    #[test]
    fn peer_set_lookup_and_counters() {
        let set = PeerSet::new(
            &[
                PeerConfig {
                    node_id: "b".into(),
                    addr: "127.0.0.1:9".into(),
                },
                PeerConfig {
                    node_id: "c".into(),
                    addr: "127.0.0.1:9".into(),
                },
            ],
            Duration::from_millis(50),
            Duration::from_millis(50),
            3,
            Duration::from_secs(1),
            Duration::ZERO, // no prober in unit tests
        )
        .unwrap();
        assert_eq!(set.peers().len(), 2);
        assert!(set.get("b").is_some());
        assert!(set.get("nope").is_none());
        assert_eq!(set.healthy_count(), 0);
        assert_eq!(set.circuit_open_count(), 0);
        set.shutdown();
    }
}
