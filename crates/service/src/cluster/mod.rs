//! The cluster tier: one logical cache across a fleet of daemons.
//!
//! PR 2 made cache identity *canonical* — isomorphic placements share a
//! fingerprint — but each daemon still kept its own cache, so a fleet
//! re-solved what a sibling already proved. This module shards the logical
//! cache across the fleet with a consistent-hash ring ([`ring`]):
//!
//! * Every fingerprint has one **owner** daemon. A local cache miss on a
//!   non-owner consults the owner (`GET /v1/cache/{fp}` over the keep-alive
//!   [`crate::HttpClient`]) before solving; a hit comes back **slim** — the
//!   exact canonical labeling makes fingerprint equality trustworthy, so the
//!   owner ships only the canonical-labeled schedule, the requester pairs it
//!   with its *own* canonical placement and translates it into its labeling
//!   exactly like a local hit, then caches it locally so the next identical
//!   request is local.
//! * A node that solves a placement it does not own **replicates** the entry
//!   to the owner asynchronously ([`replicate`]) — the requester never waits.
//! * On startup a node **warms** itself by streaming the entries it owns from
//!   every peer (`GET /v1/cluster/export/{node}`), so a restarted owner
//!   recovers its shard of the logical cache without re-solving.
//! * Membership is **static** (`--node-id` / `--peer` flags). Health probes
//!   and circuit breakers ([`peers`]) make an unreachable owner degrade to
//!   *solve locally* — never to a failed request.
//!
//! `GET /v1/cluster` reports ring membership and peer health;
//! `tessel_cluster_*` metrics count remote hits/misses, replication traffic
//! and peer state.

pub mod peers;
pub mod replicate;
pub mod ring;

use crate::cache::{CacheParams, CachedSearch};
pub use crate::metrics::{ClusterMetrics, ClusterSnapshot};
use crate::wire::{CacheExchange, ClusterStatusResponse, OwnerInfo, WireSearchEntry};
use peers::{PeerConfig, PeerSet};
use replicate::Replicator;
use ring::HashRing;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use tessel_core::fingerprint::{CanonicalPlacement, Fingerprint};

/// Configuration of a cluster member.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This daemon's ring identity (`--node-id`).
    pub node_id: String,
    /// The other fleet members (`--peer ID=HOST:PORT`, repeatable).
    pub peers: Vec<PeerConfig>,
    /// Virtual nodes per member on the consistent-hash ring.
    pub vnodes: usize,
    /// Interval between background `/healthz` probes of each peer.
    pub probe_interval: Duration,
    /// TCP connect timeout for peer calls.
    pub connect_timeout: Duration,
    /// Socket read/write timeout for peer calls.
    pub peer_timeout: Duration,
    /// Consecutive failures after which a peer's circuit opens.
    pub circuit_failure_threshold: u64,
    /// How long an open circuit rejects calls before the next real attempt.
    pub circuit_cooldown: Duration,
    /// Bounded depth of the asynchronous replication queue.
    pub replication_queue_depth: usize,
}

impl ClusterConfig {
    /// A config for `node_id` with `peers` and every tuning knob at its
    /// default.
    #[must_use]
    pub fn new(node_id: impl Into<String>, peers: Vec<PeerConfig>) -> Self {
        ClusterConfig {
            node_id: node_id.into(),
            peers,
            vnodes: ring::DEFAULT_VNODES,
            probe_interval: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            peer_timeout: Duration::from_secs(5),
            circuit_failure_threshold: 3,
            circuit_cooldown: Duration::from_secs(5),
            replication_queue_depth: 256,
        }
    }
}

/// What consulting the ring produced for a cache miss.
#[derive(Debug)]
pub enum RemoteFetch {
    /// This node owns the fingerprint (or has no usable peer for it): solve
    /// locally and do not replicate.
    LocalOwner,
    /// The owner returned a matching entry (already validated).
    Hit(Arc<CachedSearch>),
    /// The owner answered but has no matching entry; solve locally and
    /// replicate the result to it.
    Miss,
    /// The owner is unreachable (or its circuit is open, or its payload was
    /// unusable); solve locally and replicate once it recovers.
    Unavailable,
}

/// A cluster member: ring, peer table, replication worker and metrics.
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    ring: Arc<HashRing>,
    peers: Arc<PeerSet>,
    metrics: Arc<ClusterMetrics>,
    replicator: Replicator,
}

impl Cluster {
    /// Validates the membership and starts the prober and replication worker.
    ///
    /// # Errors
    ///
    /// Rejects an empty node id, duplicate peer ids, a peer reusing this
    /// node's id, and unresolvable peer addresses.
    pub fn new(config: ClusterConfig) -> std::io::Result<Self> {
        if config.node_id.is_empty() {
            return Err(invalid("cluster node id must not be empty"));
        }
        for (i, peer) in config.peers.iter().enumerate() {
            if peer.node_id == config.node_id {
                return Err(invalid(&format!(
                    "peer `{}` reuses this node's id",
                    peer.node_id
                )));
            }
            if config.peers[..i].iter().any(|p| p.node_id == peer.node_id) {
                return Err(invalid(&format!("duplicate peer id `{}`", peer.node_id)));
            }
        }
        let members = std::iter::once(config.node_id.clone())
            .chain(config.peers.iter().map(|p| p.node_id.clone()));
        let ring = Arc::new(HashRing::new(members, config.vnodes));
        let peers = Arc::new(PeerSet::new(
            &config.peers,
            config.connect_timeout,
            config.peer_timeout,
            config.circuit_failure_threshold,
            config.circuit_cooldown,
            config.probe_interval,
        )?);
        let metrics = Arc::new(ClusterMetrics::new());
        let replicator = Replicator::spawn(
            ring.clone(),
            peers.clone(),
            metrics.clone(),
            config.replication_queue_depth,
        );
        Ok(Cluster {
            config,
            ring,
            peers,
            metrics,
            replicator,
        })
    }

    /// This daemon's ring identity.
    #[must_use]
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// The (shared) consistent-hash ring.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The peer table, in `--peer` order (trace assembly fans out over it).
    #[must_use]
    pub fn peers(&self) -> &[Arc<peers::Peer>] {
        self.peers.peers()
    }

    /// The live cluster counters.
    #[must_use]
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The ring owner of `fingerprint`.
    #[must_use]
    pub fn owner_of(&self, fingerprint: Fingerprint) -> &str {
        self.ring.owner_of(fingerprint)
    }

    /// `true` when this node owns `fingerprint`.
    #[must_use]
    pub fn owns(&self, fingerprint: Fingerprint) -> bool {
        self.owner_of(fingerprint) == self.config.node_id
    }

    /// Consults the ring for a locally missed `(canon, params)` request and,
    /// when a remote daemon owns it, fetches the entry from the owner.
    ///
    /// A returned [`RemoteFetch::Hit`] has already been validated: the
    /// fingerprint and parameters match the request, and — because the
    /// exact canonical labeling makes fingerprint equality trustworthy —
    /// the slim wire entry (no placement shipped) is adopted against the
    /// *requester's own* canonical placement. The remote schedule must
    /// validate against that local placement, so a confused or corrupted
    /// peer can never inject a bogus schedule.
    #[must_use]
    pub fn fetch_from_owner(
        &self,
        canon: &CanonicalPlacement,
        params: &CacheParams,
    ) -> RemoteFetch {
        let fingerprint = canon.fingerprint;
        let owner = self.ring.owner_of(fingerprint);
        if owner == self.config.node_id {
            return RemoteFetch::LocalOwner;
        }
        let Some(peer) = self.peers.get(owner) else {
            return RemoteFetch::LocalOwner;
        };
        let path = format!("/v1/cache/{fingerprint}");
        // Propagate the originating request's trace ID so the owner's flight
        // recorder and logs correlate with the requester's.
        let trace = tessel_obs::current_trace_id();
        let headers: Vec<(&str, &str)> = trace
            .as_ref()
            .map(|id| ("X-Tessel-Trace-Id", id.as_str()))
            .into_iter()
            .collect();
        match peer.call_with_headers("GET", &path, None, &headers) {
            Ok((200, body)) => match serde_json::from_str::<CacheExchange>(&body) {
                Ok(exchange) => {
                    let usable = exchange.entries.into_iter().find(|entry| {
                        entry.fingerprint == fingerprint
                            && entry.params == *params
                            && entry.schedule.validate(&canon.placement).is_ok()
                    });
                    match usable {
                        Some(entry) => {
                            self.metrics.remote_hits.fetch_add(1, Ordering::Relaxed);
                            RemoteFetch::Hit(Arc::new(entry.into_cached(canon.placement.clone())))
                        }
                        None => {
                            // The owner has the fingerprint but not these
                            // parameters (or sent something unusable).
                            self.metrics.remote_misses.fetch_add(1, Ordering::Relaxed);
                            RemoteFetch::Miss
                        }
                    }
                }
                Err(_) => {
                    self.metrics.remote_errors.fetch_add(1, Ordering::Relaxed);
                    RemoteFetch::Unavailable
                }
            },
            Ok((404, _)) => {
                self.metrics.remote_misses.fetch_add(1, Ordering::Relaxed);
                RemoteFetch::Miss
            }
            Ok(_) | Err(_) => {
                self.metrics.remote_errors.fetch_add(1, Ordering::Relaxed);
                RemoteFetch::Unavailable
            }
        }
    }

    /// Queues `entry` for asynchronous replication to its owner, unless this
    /// node is the owner. Returns whether a replication was enqueued.
    pub fn replicate_if_remote(&self, entry: &Arc<CachedSearch>) -> bool {
        let fingerprint = entry.fingerprint;
        if self.owns(fingerprint) {
            return false;
        }
        self.replicator.enqueue(fingerprint, entry.clone());
        true
    }

    /// Streams this node's ring-owned entries from every peer (startup
    /// warm-up), handing each full wire entry to `adopt` along with the
    /// fingerprint the exchange claims for it. The caller validates and
    /// inserts (same bar as `PUT /v1/cache/{fp}`) and returns whether the
    /// entry was adopted. Returns how many entries were warmed.
    pub fn warm_from_peers(
        &self,
        mut adopt: impl FnMut(Fingerprint, WireSearchEntry) -> bool,
    ) -> usize {
        let path = format!("/v1/cluster/export/{}", self.config.node_id);
        // One trace ID spans the whole warm-up sweep, so every peer's export
        // request (and flight-recorder entry) correlates to this startup.
        let trace = tessel_obs::TraceId::generate();
        let headers = [("X-Tessel-Trace-Id", trace.as_str())];
        let mut warmed = 0usize;
        for peer in self.peers.peers() {
            let Ok((200, body)) = peer.call_with_headers("GET", &path, None, &headers) else {
                tessel_obs::debug(
                    "cluster",
                    "warm-up export unavailable from peer",
                    &[
                        ("peer", peer.node_id()),
                        ("addr", peer.addr()),
                        ("trace_id", trace.as_str()),
                    ],
                );
                continue; // unreachable or pre-cluster peer: warm from the rest
            };
            let Ok(exchanges) = serde_json::from_str::<Vec<CacheExchange>>(&body) else {
                continue;
            };
            for exchange in exchanges {
                for entry in exchange.entries {
                    if adopt(exchange.fingerprint, entry) {
                        warmed += 1;
                    }
                }
            }
        }
        self.metrics
            .warmup_entries
            .fetch_add(warmed as u64, Ordering::Relaxed);
        tessel_obs::info(
            "cluster",
            "warm-up from peers finished",
            &[
                ("node", &self.config.node_id),
                ("entries", &warmed.to_string()),
                ("trace_id", trace.as_str()),
            ],
        );
        warmed
    }

    /// The `/v1/cluster` status document, optionally resolving the owner of
    /// one fingerprint (`?fp=`).
    #[must_use]
    pub fn status(&self, fingerprint: Option<Fingerprint>) -> ClusterStatusResponse {
        ClusterStatusResponse {
            node_id: self.config.node_id.clone(),
            vnodes: self.ring.vnodes_per_node(),
            nodes: self.ring.nodes().to_vec(),
            peers: self.peers.peers().iter().map(|p| p.status()).collect(),
            owner: fingerprint.map(|fp| {
                let node = self.ring.owner_of(fp).to_string();
                OwnerInfo {
                    fingerprint: fp,
                    is_local: node == self.config.node_id,
                    node,
                }
            }),
        }
    }

    /// A point-in-time snapshot of the cluster counters and peer gauges.
    #[must_use]
    pub fn snapshot(&self) -> ClusterSnapshot {
        self.metrics.snapshot(
            self.peers.peers().len() as u64,
            self.peers.healthy_count(),
            self.peers.circuit_open_count(),
        )
    }

    /// Stops the prober and the replication worker. Idempotent; also run on
    /// drop.
    pub fn shutdown(&self) {
        self.replicator.shutdown();
        self.peers.shutdown();
    }
}

fn invalid(message: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(id: &str) -> PeerConfig {
        PeerConfig {
            node_id: id.into(),
            addr: "127.0.0.1:9".into(),
        }
    }

    fn quick_config(node: &str, peers: Vec<PeerConfig>) -> ClusterConfig {
        let mut config = ClusterConfig::new(node, peers);
        config.probe_interval = Duration::ZERO; // no prober in unit tests
        config.connect_timeout = Duration::from_millis(50);
        config.peer_timeout = Duration::from_millis(50);
        config
    }

    #[test]
    fn membership_is_validated() {
        assert!(Cluster::new(quick_config("", vec![peer("b")])).is_err());
        assert!(Cluster::new(quick_config("a", vec![peer("a")])).is_err());
        assert!(Cluster::new(quick_config("a", vec![peer("b"), peer("b")])).is_err());
        let cluster = Cluster::new(quick_config("a", vec![peer("b")])).unwrap();
        assert_eq!(cluster.ring().nodes(), ["a".to_string(), "b".to_string()]);
        cluster.shutdown();
    }

    #[test]
    fn ownership_splits_between_members() {
        let cluster = Cluster::new(quick_config("a", vec![peer("b")])).unwrap();
        let mut local = 0;
        for raw in 0..64u64 {
            if cluster.owns(Fingerprint(raw.wrapping_mul(0x9e37_79b9_7f4a_7c15))) {
                local += 1;
            }
        }
        assert!(local > 0 && local < 64, "one node owns everything: {local}");
        cluster.shutdown();
    }

    #[test]
    fn unreachable_owner_reports_unavailable_then_circuit_open() {
        let mut config = quick_config("a", vec![peer("b")]);
        config.circuit_failure_threshold = 1;
        config.circuit_cooldown = Duration::from_secs(30);
        let cluster = Cluster::new(config).unwrap();
        // Find a placement-free fingerprint owned by the dead peer.
        let fp = (0..1024u64)
            .map(|raw| Fingerprint(raw.wrapping_mul(0x2545_f491_4f6c_dd1d)))
            .find(|&fp| !cluster.owns(fp))
            .expect("some fingerprint is owned by b");
        // Build a trivial canonical placement carrying that fingerprint.
        let mut b = tessel_core::ir::PlacementSpec::builder("p", 1);
        b.add_block("f0", tessel_core::ir::BlockKind::Forward, [0], 1, 0, [])
            .unwrap();
        let mut canon = b.build().unwrap().canonicalize();
        canon.fingerprint = fp;
        let params = CacheParams {
            num_micro_batches: 4,
            max_repetend_micro_batches: 2,
        };
        assert!(matches!(
            cluster.fetch_from_owner(&canon, &params),
            RemoteFetch::Unavailable
        ));
        // The failure tripped the breaker: the next fetch is rejected
        // instantly, still as Unavailable (degrade, never fail).
        assert!(matches!(
            cluster.fetch_from_owner(&canon, &params),
            RemoteFetch::Unavailable
        ));
        assert_eq!(cluster.snapshot().circuits_open, 1);
        assert_eq!(cluster.snapshot().remote_errors, 2);
        cluster.shutdown();
    }
}
