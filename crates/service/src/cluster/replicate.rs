//! Asynchronous replication of locally solved results to their ring owner.
//!
//! A node that solves a placement it does not own sends the entry to the
//! owner with `PUT /v1/cache/{fp}` — *after* answering its client. The
//! request path only enqueues onto a bounded channel; a single background
//! worker drains it, so replication never adds latency to a search response
//! and a dead owner costs nothing but a counter
//! (`tessel_cluster_replication_errors_total`). A full queue drops the
//! newest job (the entry is still cached locally and still discoverable by
//! the owner's next warm-up) rather than blocking a worker thread.

use super::ring::HashRing;
use super::{peers::PeerSet, ClusterMetrics};
use crate::cache::CachedSearch;
use crate::wire::{CacheExchange, WireSearchEntry};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use tessel_core::fingerprint::Fingerprint;

/// One entry travelling to its owner.
struct Job {
    fingerprint: Fingerprint,
    entry: Arc<CachedSearch>,
    /// Trace ID of the request whose solve produced the entry, captured at
    /// enqueue time (the worker thread has no request context of its own)
    /// and attached to the PUT so the owner's records join that trace.
    origin_trace: Option<tessel_obs::TraceId>,
}

/// The background replication worker and its bounded queue.
#[derive(Debug)]
pub struct Replicator {
    tx: Mutex<Option<SyncSender<Job>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    metrics: Arc<ClusterMetrics>,
}

impl Replicator {
    /// Spawns the worker.
    #[must_use]
    pub fn spawn(
        ring: Arc<HashRing>,
        peers: Arc<PeerSet>,
        metrics: Arc<ClusterMetrics>,
        queue_depth: usize,
    ) -> Self {
        let (tx, rx): (SyncSender<Job>, Receiver<Job>) = sync_channel(queue_depth.max(1));
        let worker_metrics = metrics.clone();
        let handle = std::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                let owner = ring.owner_of(job.fingerprint);
                let Some(peer) = peers.get(owner) else {
                    // The owner is this node itself (or an unknown id): the
                    // enqueuer is expected to filter these out, but a race
                    // with shutdown is harmless — just skip.
                    continue;
                };
                // Replication ships the *full* entry (placement included):
                // unlike a remote hit, the owner has no local canonical
                // placement to pair a slim entry with, and the owner
                // re-canonicalizes the shipped placement before adopting.
                let exchange = CacheExchange {
                    fingerprint: job.fingerprint,
                    entries: vec![WireSearchEntry::full(&job.entry)],
                };
                let body = match serde_json::to_string(&exchange) {
                    Ok(body) => body,
                    Err(_) => {
                        worker_metrics
                            .replication_errors
                            .fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                };
                let path = format!("/v1/cache/{}", job.fingerprint);
                let headers: Vec<(&str, &str)> = job
                    .origin_trace
                    .as_ref()
                    .map(|id| ("X-Tessel-Trace-Id", id.as_str()))
                    .into_iter()
                    .collect();
                let outcome = peer.call_with_headers("PUT", &path, Some(&body), &headers);
                match outcome {
                    Ok((status, _)) if (200..300).contains(&status) => {
                        worker_metrics
                            .replications_sent
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    other => {
                        worker_metrics
                            .replication_errors
                            .fetch_add(1, Ordering::Relaxed);
                        let detail = match &other {
                            Ok((status, _)) => format!("owner answered {status}"),
                            Err(e) => e.to_string(),
                        };
                        let trace = job
                            .origin_trace
                            .as_ref()
                            .map(|id| id.as_str().to_string())
                            .unwrap_or_default();
                        tessel_obs::warn(
                            "cluster",
                            "replication to owner failed",
                            &[
                                ("owner", owner),
                                ("fingerprint", &job.fingerprint.to_string()),
                                ("error", &detail),
                                ("trace_id", &trace),
                            ],
                        );
                    }
                }
            }
        });
        Replicator {
            tx: Mutex::new(Some(tx)),
            handle: Mutex::new(Some(handle)),
            metrics,
        }
    }

    /// Enqueues `entry` for delivery to the owner of `fingerprint`. Never
    /// blocks: a full queue drops the job and bumps
    /// `tessel_cluster_replication_dropped_total`.
    pub fn enqueue(&self, fingerprint: Fingerprint, entry: Arc<CachedSearch>) {
        let tx = self.tx.lock().expect("replicator sender lock");
        let Some(tx) = tx.as_ref() else {
            return; // shut down
        };
        match tx.try_send(Job {
            fingerprint,
            entry,
            origin_trace: tessel_obs::current_trace_id(),
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.metrics
                    .replication_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drains the queue and joins the worker. Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        // Dropping the sender lets the worker finish the queued jobs and
        // exit its recv loop.
        self.tx.lock().expect("replicator sender lock").take();
        if let Some(handle) = self.handle.lock().expect("replicator handle lock").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.shutdown();
    }
}
