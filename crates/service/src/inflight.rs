//! Live in-flight request registry: every admitted request, from admission
//! to response, visible at `GET /v1/debug/inflight`.
//!
//! The HTTP worker registers each request right after popping it off the
//! admission queue (so it knows the peer address and the queue wait);
//! in-process callers register inside [`crate::service::ScheduleService`]
//! alongside the trace context they host. Registration returns an RAII
//! [`InflightGuard`] — the entry disappears when the request finishes, by
//! any path, including panics.
//!
//! Each entry carries a [`ProgressBoard`] handle. When the request leads a
//! solve, the service clones that handle into the solver configuration, so
//! the entry's `nodes` / `incumbent` / `steals` fields tick live while the
//! search runs — all relaxed-atomic reads, no locks shared with the solver
//! hot path. Requests that never solve (cache hits, coalesced followers)
//! simply read zero.
//!
//! Memory is strictly bounded by concurrency: one entry per admitted
//! request, each a couple hundred bytes plus one 64-slot progress board,
//! and the worker-pool size caps how many are live at once.

use crate::wire::{InflightInfo, InflightResponse};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tessel_solver::ProgressBoard;

thread_local! {
    /// The entry of the request this thread is currently serving, so the
    /// service pipeline can update stage/deadline/progress without threading
    /// a handle through every call signature (mirrors the [`tessel_obs`]
    /// request context). A stack, so a request that transitively issues
    /// another registered request restores the outer entry on drop.
    static CURRENT: RefCell<Vec<Arc<InflightEntry>>> = const { RefCell::new(Vec::new()) };
}

/// One admitted-but-unanswered request.
#[derive(Debug)]
pub struct InflightEntry {
    trace_id: String,
    method: String,
    path: String,
    peer: Option<String>,
    started: Instant,
    deadline: Mutex<Option<Instant>>,
    stage: Mutex<&'static str>,
    board: ProgressBoard,
}

impl InflightEntry {
    /// Marks the pipeline stage the request is currently in.
    pub fn set_stage(&self, stage: &'static str) {
        *self.stage.lock().expect("inflight stage lock") = stage;
    }

    /// Records the request's resolved deadline (known only after parameter
    /// resolution, which happens after registration).
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        *self.deadline.lock().expect("inflight deadline lock") = deadline;
    }

    /// The live solver-progress board of this request.
    #[must_use]
    pub fn board(&self) -> &ProgressBoard {
        &self.board
    }

    fn info(&self) -> InflightInfo {
        let now = Instant::now();
        let deadline = *self.deadline.lock().expect("inflight deadline lock");
        let progress = self.board.snapshot();
        InflightInfo {
            trace_id: self.trace_id.clone(),
            method: self.method.clone(),
            path: self.path.clone(),
            peer: self.peer.clone(),
            stage: (*self.stage.lock().expect("inflight stage lock")).to_string(),
            elapsed_ms: now.saturating_duration_since(self.started).as_millis() as u64,
            deadline_remaining_ms: deadline
                .map(|d| d.saturating_duration_since(now).as_millis() as u64),
            nodes: progress.nodes,
            incumbent: progress.incumbent,
            incumbents: progress.incumbents,
            steals: progress.steals,
            worker_depths: progress
                .worker_depths
                .iter()
                .map(|&(_, depth)| depth)
                .collect(),
        }
    }
}

/// Registry of every admitted request, ordered oldest first.
#[derive(Debug, Default)]
pub struct InflightRegistry {
    next_id: AtomicU64,
    entries: Mutex<BTreeMap<u64, Arc<InflightEntry>>>,
}

impl InflightRegistry {
    /// Registers one admitted request and makes it the calling thread's
    /// current entry. Drop the returned guard when the request finishes.
    #[must_use]
    pub fn register(
        &self,
        trace_id: String,
        method: String,
        path: String,
        peer: Option<String>,
    ) -> InflightGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(InflightEntry {
            trace_id,
            method,
            path,
            peer,
            started: Instant::now(),
            deadline: Mutex::new(None),
            stage: Mutex::new("queued"),
            board: ProgressBoard::new(),
        });
        self.entries
            .lock()
            .expect("inflight registry lock")
            .insert(id, Arc::clone(&entry));
        CURRENT.with(|current| current.borrow_mut().push(entry));
        InflightGuard { registry: self, id }
    }

    /// Entries currently in flight.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().expect("inflight registry lock").len()
    }

    /// `true` when nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `GET /v1/debug/inflight` response body, oldest request first.
    #[must_use]
    pub fn snapshot(&self) -> InflightResponse {
        InflightResponse {
            inflight: self
                .entries
                .lock()
                .expect("inflight registry lock")
                .values()
                .map(|entry| entry.info())
                .collect(),
        }
    }
}

/// RAII registration handle: removes the entry (and pops the thread's
/// current-entry stack) when the request finishes.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    registry: &'a InflightRegistry,
    id: u64,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.registry
            .entries
            .lock()
            .expect("inflight registry lock")
            .remove(&self.id);
        CURRENT.with(|current| {
            current.borrow_mut().pop();
        });
    }
}

/// Runs `f` against the calling thread's current in-flight entry, if any.
pub fn with_current<R>(f: impl FnOnce(&InflightEntry) -> R) -> Option<R> {
    CURRENT.with(|current| current.borrow().last().map(|entry| f(entry)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_snapshot_and_deregister() {
        let registry = InflightRegistry::default();
        assert!(registry.is_empty());
        {
            let _guard = registry.register(
                "a".repeat(32),
                "POST".into(),
                "/v1/search".into(),
                Some("127.0.0.1:5000".into()),
            );
            assert_eq!(registry.len(), 1);
            let snap = registry.snapshot();
            assert_eq!(snap.inflight.len(), 1);
            let entry = &snap.inflight[0];
            assert_eq!(entry.trace_id, "a".repeat(32));
            assert_eq!(entry.stage, "queued");
            assert_eq!(entry.peer.as_deref(), Some("127.0.0.1:5000"));
            assert_eq!(entry.deadline_remaining_ms, None);
            assert_eq!(entry.nodes, 0);
            assert_eq!(entry.incumbent, None);
        }
        assert!(registry.is_empty(), "guard drop deregisters");
    }

    #[test]
    fn stage_deadline_and_progress_flow_into_the_snapshot() {
        let registry = InflightRegistry::default();
        let _guard = registry.register("b".repeat(32), "CALL".into(), "/v1/search".into(), None);
        with_current(|entry| {
            entry.set_stage("solve");
            entry.set_deadline(Some(Instant::now() + std::time::Duration::from_secs(3600)));
            entry.board().add_nodes(17);
            entry.board().record_incumbent(9);
            entry.board().set_worker_depth(0, 4);
        })
        .expect("a current entry exists");
        let snap = registry.snapshot();
        let entry = &snap.inflight[0];
        assert_eq!(entry.stage, "solve");
        assert_eq!(entry.nodes, 17);
        assert_eq!(entry.incumbent, Some(9));
        assert_eq!(entry.incumbents, 1);
        assert_eq!(entry.worker_depths, vec![4]);
        let remaining = entry.deadline_remaining_ms.expect("deadline is set");
        assert!(
            remaining > 3_500_000 && remaining <= 3_600_000,
            "{remaining}"
        );
    }

    #[test]
    fn nested_registrations_restore_the_outer_entry() {
        let registry = InflightRegistry::default();
        let _outer = registry.register("c".repeat(32), "POST".into(), "/outer".into(), None);
        {
            let _inner = registry.register("d".repeat(32), "CALL".into(), "/inner".into(), None);
            assert_eq!(registry.len(), 2);
            with_current(|entry| assert_eq!(entry.path, "/inner")).unwrap();
        }
        assert_eq!(registry.len(), 1);
        with_current(|entry| assert_eq!(entry.path, "/outer")).unwrap();
    }

    #[test]
    fn registry_is_ordered_oldest_first() {
        let registry = InflightRegistry::default();
        let _a = registry.register("1".repeat(32), "POST".into(), "/a".into(), None);
        let _b = registry.register("2".repeat(32), "POST".into(), "/b".into(), None);
        let snap = registry.snapshot();
        assert_eq!(snap.inflight[0].path, "/a");
        assert_eq!(snap.inflight[1].path, "/b");
    }
}
