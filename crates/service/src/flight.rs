//! In-memory flight recorder: the last N completed requests with per-stage
//! timing breakdowns, plus a slowest-requests leaderboard.
//!
//! Every completed request — HTTP or in-process — deposits one
//! [`FlightRecord`] here. The recorder keeps two bounded views:
//!
//! * **recent** — a ring buffer of the last [`FlightRecorder::capacity`]
//!   requests, newest first, for "what just happened" debugging;
//! * **slowest** — the [`SLOWEST_CAPACITY`] slowest requests seen since
//!   startup, sorted by total duration, for "where did my tail latency go".
//!
//! Both views serve `GET /v1/debug/requests`. Memory is strictly bounded:
//! records are `Arc`-shared between the two views, and each record holds only
//! the trace ID, request line, status and a short stage vector — roughly 200
//! bytes each, so the default configuration retains well under 64 KiB.

use crate::wire::{DebugRequestsResponse, FlightRecordInfo, StageTimingInfo};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Current wall clock as Unix milliseconds (the `start_unix_ms` stamp).
#[must_use]
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Default number of recent requests retained.
pub const RECENT_CAPACITY: usize = 128;

/// Number of slowest-request slots retained.
pub const SLOWEST_CAPACITY: usize = 16;

/// One per-stage timing row of a completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (see the span taxonomy in `docs/ARCHITECTURE.md`).
    pub name: String,
    /// Wall-clock microseconds spent in the stage.
    pub micros: u64,
}

/// A completed request as retained by the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// The request's trace ID (32 lowercase hex characters).
    pub trace_id: String,
    /// HTTP method (`"POST"`), or `"CALL"` for in-process searches.
    pub method: String,
    /// Request path (`"/v1/search"`).
    pub path: String,
    /// Response status code (200 for in-process searches that succeed).
    pub status: u16,
    /// Unix milliseconds when the request started.
    pub start_unix_ms: u64,
    /// Total wall-clock microseconds, accept to write.
    pub total_micros: u64,
    /// Per-stage breakdown, in execution order.
    pub stages: Vec<StageTiming>,
}

/// Filter predicate for `GET /v1/debug/requests` query parameters. Every
/// populated field must match; an empty query matches everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightQuery {
    /// Exact response status (`?status=408`).
    pub status: Option<u16>,
    /// Minimum total duration in microseconds (`?min_micros=50000`).
    pub min_micros: Option<u64>,
    /// Exact request path (`?endpoint=/v1/search`).
    pub endpoint: Option<String>,
    /// Exact trace ID (`?trace=HEX32`).
    pub trace: Option<String>,
}

impl FlightQuery {
    /// `true` when no filter field is populated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == FlightQuery::default()
    }

    /// `true` when `record` satisfies every populated filter field.
    #[must_use]
    pub fn matches(&self, record: &FlightRecord) -> bool {
        self.status.is_none_or(|status| record.status == status)
            && self
                .min_micros
                .is_none_or(|floor| record.total_micros >= floor)
            && self
                .endpoint
                .as_deref()
                .is_none_or(|endpoint| record.path == endpoint)
            && self
                .trace
                .as_deref()
                .is_none_or(|trace| record.trace_id == trace)
    }
}

impl FlightRecord {
    /// Microseconds recorded for stage `name` (0 when it never ran).
    #[must_use]
    pub fn stage_micros(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .find(|stage| stage.name == name)
            .map_or(0, |stage| stage.micros)
    }

    fn to_wire(&self) -> FlightRecordInfo {
        FlightRecordInfo {
            trace_id: self.trace_id.clone(),
            method: self.method.clone(),
            path: self.path.clone(),
            status: self.status,
            start_unix_ms: self.start_unix_ms,
            total_micros: self.total_micros,
            stages: self
                .stages
                .iter()
                .map(|stage| StageTimingInfo {
                    name: stage.name.clone(),
                    micros: stage.micros,
                })
                .collect(),
        }
    }
}

/// Bounded two-view store of completed requests (see the module docs).
///
/// Both views sit behind plain mutexes: they are touched once per *completed*
/// request, far off the hot path, and contention is bounded by request
/// throughput.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    recent: Mutex<VecDeque<Arc<FlightRecord>>>,
    slowest: Mutex<Vec<Arc<FlightRecord>>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(RECENT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `capacity` requests (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            recent: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            slowest: Mutex::new(Vec::with_capacity(SLOWEST_CAPACITY)),
        }
    }

    /// The ring-buffer capacity of the recent view.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deposits one completed request into both views.
    pub fn record(&self, record: FlightRecord) {
        let record = Arc::new(record);
        {
            let mut recent = self.recent.lock().expect("flight recorder lock");
            if recent.len() == self.capacity {
                recent.pop_front();
            }
            recent.push_back(Arc::clone(&record));
        }
        let mut slowest = self.slowest.lock().expect("flight recorder lock");
        if slowest.len() < SLOWEST_CAPACITY
            || slowest
                .last()
                .is_some_and(|tail| record.total_micros > tail.total_micros)
        {
            slowest.push(record);
            slowest.sort_by_key(|record| std::cmp::Reverse(record.total_micros));
            slowest.truncate(SLOWEST_CAPACITY);
        }
    }

    /// The recent view, newest first.
    #[must_use]
    pub fn recent(&self) -> Vec<Arc<FlightRecord>> {
        let recent = self.recent.lock().expect("flight recorder lock");
        recent.iter().rev().cloned().collect()
    }

    /// The slowest view, slowest first.
    #[must_use]
    pub fn slowest(&self) -> Vec<Arc<FlightRecord>> {
        self.slowest.lock().expect("flight recorder lock").clone()
    }

    /// Snapshot of both views in wire form, for `GET /v1/debug/requests`.
    #[must_use]
    pub fn snapshot(&self) -> DebugRequestsResponse {
        self.snapshot_filtered(&FlightQuery::default())
    }

    /// Snapshot of both views restricted to records matching `query`.
    #[must_use]
    pub fn snapshot_filtered(&self, query: &FlightQuery) -> DebugRequestsResponse {
        DebugRequestsResponse {
            capacity: self.capacity as u64,
            recent: self
                .recent()
                .iter()
                .filter(|r| query.matches(r))
                .map(|r| r.to_wire())
                .collect(),
            slowest: self
                .slowest()
                .iter()
                .filter(|r| query.matches(r))
                .map(|r| r.to_wire())
                .collect(),
        }
    }

    /// Every retained record carrying `trace_id`, oldest first, deduplicated
    /// across the two views (a record can sit in both). Trace assembly walks
    /// this to rebuild a request's span timeline.
    #[must_use]
    pub fn find_by_trace(&self, trace_id: &str) -> Vec<Arc<FlightRecord>> {
        let mut found: Vec<Arc<FlightRecord>> = Vec::new();
        {
            let recent = self.recent.lock().expect("flight recorder lock");
            found.extend(recent.iter().filter(|r| r.trace_id == trace_id).cloned());
        }
        let slowest = self.slowest.lock().expect("flight recorder lock");
        for record in slowest.iter() {
            if record.trace_id == trace_id && !found.iter().any(|seen| Arc::ptr_eq(seen, record)) {
                found.push(Arc::clone(record));
            }
        }
        found.sort_by_key(|r| r.start_unix_ms);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trace: &str, total: u64) -> FlightRecord {
        FlightRecord {
            trace_id: trace.to_string(),
            method: "POST".to_string(),
            path: "/v1/search".to_string(),
            status: 200,
            start_unix_ms: 1_700_000_000_000,
            total_micros: total,
            stages: vec![
                StageTiming {
                    name: "solve".to_string(),
                    micros: total / 2,
                },
                StageTiming {
                    name: "serialize".to_string(),
                    micros: total / 4,
                },
            ],
        }
    }

    #[test]
    fn recent_is_a_ring_buffer_newest_first() {
        let recorder = FlightRecorder::new(3);
        for i in 0..5u64 {
            recorder.record(record(&format!("{i:032}"), 100 + i));
        }
        let recent = recorder.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].trace_id, format!("{:032}", 4));
        assert_eq!(recent[2].trace_id, format!("{:032}", 2));
    }

    #[test]
    fn slowest_keeps_the_global_tail_sorted() {
        let recorder = FlightRecorder::new(2);
        // Old-but-slow entries must survive ring-buffer eviction.
        recorder.record(record("slow", 9_000_000));
        for i in 0..10u64 {
            recorder.record(record(&format!("fast{i}"), 10 + i));
        }
        let slowest = recorder.slowest();
        assert_eq!(slowest[0].trace_id, "slow");
        assert!(slowest.len() <= SLOWEST_CAPACITY);
        for pair in slowest.windows(2) {
            assert!(pair[0].total_micros >= pair[1].total_micros);
        }
        // The slow entry is gone from recent (capacity 2) but kept above.
        assert!(recorder.recent().iter().all(|r| r.trace_id != "slow"));
    }

    #[test]
    fn slowest_is_bounded() {
        let recorder = FlightRecorder::new(4);
        for i in 0..100u64 {
            recorder.record(record(&format!("r{i}"), i));
        }
        assert_eq!(recorder.slowest().len(), SLOWEST_CAPACITY);
        assert_eq!(recorder.slowest()[0].total_micros, 99);
    }

    #[test]
    fn stage_micros_looks_up_by_name() {
        let r = record("t", 100);
        assert_eq!(r.stage_micros("solve"), 50);
        assert_eq!(r.stage_micros("serialize"), 25);
        assert_eq!(r.stage_micros("absent"), 0);
    }

    #[test]
    fn query_filters_compose_conjunctively() {
        let recorder = FlightRecorder::new(8);
        let mut timeout = record(&"a".repeat(32), 80_000);
        timeout.status = 408;
        recorder.record(timeout);
        let mut fast_ok = record(&"b".repeat(32), 900);
        fast_ok.path = "/v1/search/batch".to_string();
        recorder.record(fast_ok);
        recorder.record(record(&"c".repeat(32), 60_000));

        // Empty query matches everything.
        assert!(FlightQuery::default().is_empty());
        assert_eq!(
            recorder
                .snapshot_filtered(&FlightQuery::default())
                .recent
                .len(),
            3
        );

        // Single-field filters.
        let by_status = FlightQuery {
            status: Some(408),
            ..FlightQuery::default()
        };
        let snap = recorder.snapshot_filtered(&by_status);
        assert_eq!(snap.recent.len(), 1);
        assert_eq!(snap.recent[0].trace_id, "a".repeat(32));

        let by_floor = FlightQuery {
            min_micros: Some(50_000),
            ..FlightQuery::default()
        };
        assert_eq!(recorder.snapshot_filtered(&by_floor).recent.len(), 2);

        let by_endpoint = FlightQuery {
            endpoint: Some("/v1/search/batch".to_string()),
            ..FlightQuery::default()
        };
        let snap = recorder.snapshot_filtered(&by_endpoint);
        assert_eq!(snap.recent.len(), 1);
        assert_eq!(snap.recent[0].trace_id, "b".repeat(32));

        let by_trace = FlightQuery {
            trace: Some("c".repeat(32)),
            ..FlightQuery::default()
        };
        assert_eq!(recorder.snapshot_filtered(&by_trace).recent.len(), 1);

        // Conjunction: status AND min_micros AND endpoint.
        let combo = FlightQuery {
            status: Some(408),
            min_micros: Some(50_000),
            endpoint: Some("/v1/search".to_string()),
            trace: None,
        };
        let snap = recorder.snapshot_filtered(&combo);
        assert_eq!(snap.recent.len(), 1);
        assert_eq!(snap.recent[0].status, 408);
        // Flipping any leg to a non-matching value empties the result.
        let miss = FlightQuery {
            min_micros: Some(90_000),
            ..combo
        };
        assert!(recorder.snapshot_filtered(&miss).recent.is_empty());
        assert!(recorder.snapshot_filtered(&miss).slowest.is_empty());
    }

    #[test]
    fn find_by_trace_dedups_across_views_and_orders_by_start() {
        let recorder = FlightRecorder::new(2);
        let trace = "d".repeat(32);
        // Slow enough to live in both views at first.
        let mut early = record(&trace, 5_000_000);
        early.start_unix_ms = 1_700_000_000_000;
        recorder.record(early);
        let mut late = record(&trace, 40);
        late.start_unix_ms = 1_700_000_000_500;
        recorder.record(late);
        recorder.record(record(&"e".repeat(32), 50));

        let found = recorder.find_by_trace(&trace);
        assert_eq!(
            found.len(),
            2,
            "one per request, no double-count from slowest"
        );
        assert!(found[0].start_unix_ms <= found[1].start_unix_ms);

        // Evict both trace records from the recent ring; they must still be
        // reachable via the slowest view (which holds everything while under
        // SLOWEST_CAPACITY), still deduplicated and ordered by start time.
        recorder.record(record(&"f".repeat(32), 60));
        recorder.record(record(&"g".repeat(32), 70));
        let found = recorder.find_by_trace(&trace);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].total_micros, 5_000_000);
        assert_eq!(found[1].total_micros, 40);
        assert!(recorder.find_by_trace(&"h".repeat(32)).is_empty());
    }

    #[test]
    fn slowest_eviction_is_correct_under_concurrent_insert() {
        let recorder = std::sync::Arc::new(FlightRecorder::new(16));
        let threads = 4u32;
        let per_thread = 200u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let recorder = std::sync::Arc::clone(&recorder);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let total = u64::from(t) * per_thread + i;
                        recorder.record(record(&format!("t{t}i{i}"), total));
                    }
                });
            }
        });
        let slowest = recorder.slowest();
        assert_eq!(slowest.len(), SLOWEST_CAPACITY);
        for pair in slowest.windows(2) {
            assert!(pair[0].total_micros >= pair[1].total_micros);
        }
        // The global maximum always survives: it is never racing anything
        // slower for its slot.
        let max = u64::from(threads) * per_thread - 1;
        assert_eq!(slowest[0].total_micros, max);
        // Every retained entry beats everything evicted: the 16 retained
        // totals must be 16 of the top totals overall. Concurrent inserts may
        // interleave, but each record() holds the slowest lock exclusively,
        // so the sorted-truncate can never drop a slower record for a faster
        // one.
        let floor = slowest.last().unwrap().total_micros;
        let beaten = (0..u64::from(threads) * per_thread)
            .filter(|total| *total > floor)
            .count();
        assert!(
            beaten < SLOWEST_CAPACITY,
            "floor {floor} excludes too little"
        );
    }

    #[test]
    fn snapshot_round_trips_through_wire_types() {
        let recorder = FlightRecorder::new(8);
        recorder.record(record("a".repeat(32).as_str(), 1234));
        let snap = recorder.snapshot();
        assert_eq!(snap.capacity, 8);
        assert_eq!(snap.recent.len(), 1);
        assert_eq!(snap.recent[0].total_micros, 1234);
        assert_eq!(snap.recent[0].stages.len(), 2);
        assert_eq!(snap.slowest[0].trace_id, snap.recent[0].trace_id);
    }
}
