//! In-memory flight recorder: the last N completed requests with per-stage
//! timing breakdowns, plus a slowest-requests leaderboard.
//!
//! Every completed request — HTTP or in-process — deposits one
//! [`FlightRecord`] here. The recorder keeps two bounded views:
//!
//! * **recent** — a ring buffer of the last [`FlightRecorder::capacity`]
//!   requests, newest first, for "what just happened" debugging;
//! * **slowest** — the [`SLOWEST_CAPACITY`] slowest requests seen since
//!   startup, sorted by total duration, for "where did my tail latency go".
//!
//! Both views serve `GET /v1/debug/requests`. Memory is strictly bounded:
//! records are `Arc`-shared between the two views, and each record holds only
//! the trace ID, request line, status and a short stage vector — roughly 200
//! bytes each, so the default configuration retains well under 64 KiB.

use crate::wire::{DebugRequestsResponse, FlightRecordInfo, StageTimingInfo};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Current wall clock as Unix milliseconds (the `start_unix_ms` stamp).
#[must_use]
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Default number of recent requests retained.
pub const RECENT_CAPACITY: usize = 128;

/// Number of slowest-request slots retained.
pub const SLOWEST_CAPACITY: usize = 16;

/// One per-stage timing row of a completed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    /// Stage name (see the span taxonomy in `docs/ARCHITECTURE.md`).
    pub name: String,
    /// Wall-clock microseconds spent in the stage.
    pub micros: u64,
}

/// A completed request as retained by the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// The request's trace ID (32 lowercase hex characters).
    pub trace_id: String,
    /// HTTP method (`"POST"`), or `"CALL"` for in-process searches.
    pub method: String,
    /// Request path (`"/v1/search"`).
    pub path: String,
    /// Response status code (200 for in-process searches that succeed).
    pub status: u16,
    /// Unix milliseconds when the request started.
    pub start_unix_ms: u64,
    /// Total wall-clock microseconds, accept to write.
    pub total_micros: u64,
    /// Per-stage breakdown, in execution order.
    pub stages: Vec<StageTiming>,
}

impl FlightRecord {
    /// Microseconds recorded for stage `name` (0 when it never ran).
    #[must_use]
    pub fn stage_micros(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .find(|stage| stage.name == name)
            .map_or(0, |stage| stage.micros)
    }

    fn to_wire(&self) -> FlightRecordInfo {
        FlightRecordInfo {
            trace_id: self.trace_id.clone(),
            method: self.method.clone(),
            path: self.path.clone(),
            status: self.status,
            start_unix_ms: self.start_unix_ms,
            total_micros: self.total_micros,
            stages: self
                .stages
                .iter()
                .map(|stage| StageTimingInfo {
                    name: stage.name.clone(),
                    micros: stage.micros,
                })
                .collect(),
        }
    }
}

/// Bounded two-view store of completed requests (see the module docs).
///
/// Both views sit behind plain mutexes: they are touched once per *completed*
/// request, far off the hot path, and contention is bounded by request
/// throughput.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    recent: Mutex<VecDeque<Arc<FlightRecord>>>,
    slowest: Mutex<Vec<Arc<FlightRecord>>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(RECENT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates a recorder retaining the last `capacity` requests (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            recent: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            slowest: Mutex::new(Vec::with_capacity(SLOWEST_CAPACITY)),
        }
    }

    /// The ring-buffer capacity of the recent view.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deposits one completed request into both views.
    pub fn record(&self, record: FlightRecord) {
        let record = Arc::new(record);
        {
            let mut recent = self.recent.lock().expect("flight recorder lock");
            if recent.len() == self.capacity {
                recent.pop_front();
            }
            recent.push_back(Arc::clone(&record));
        }
        let mut slowest = self.slowest.lock().expect("flight recorder lock");
        if slowest.len() < SLOWEST_CAPACITY
            || slowest
                .last()
                .is_some_and(|tail| record.total_micros > tail.total_micros)
        {
            slowest.push(record);
            slowest.sort_by_key(|record| std::cmp::Reverse(record.total_micros));
            slowest.truncate(SLOWEST_CAPACITY);
        }
    }

    /// The recent view, newest first.
    #[must_use]
    pub fn recent(&self) -> Vec<Arc<FlightRecord>> {
        let recent = self.recent.lock().expect("flight recorder lock");
        recent.iter().rev().cloned().collect()
    }

    /// The slowest view, slowest first.
    #[must_use]
    pub fn slowest(&self) -> Vec<Arc<FlightRecord>> {
        self.slowest.lock().expect("flight recorder lock").clone()
    }

    /// Snapshot of both views in wire form, for `GET /v1/debug/requests`.
    #[must_use]
    pub fn snapshot(&self) -> DebugRequestsResponse {
        DebugRequestsResponse {
            capacity: self.capacity as u64,
            recent: self.recent().iter().map(|r| r.to_wire()).collect(),
            slowest: self.slowest().iter().map(|r| r.to_wire()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(trace: &str, total: u64) -> FlightRecord {
        FlightRecord {
            trace_id: trace.to_string(),
            method: "POST".to_string(),
            path: "/v1/search".to_string(),
            status: 200,
            start_unix_ms: 1_700_000_000_000,
            total_micros: total,
            stages: vec![
                StageTiming {
                    name: "solve".to_string(),
                    micros: total / 2,
                },
                StageTiming {
                    name: "serialize".to_string(),
                    micros: total / 4,
                },
            ],
        }
    }

    #[test]
    fn recent_is_a_ring_buffer_newest_first() {
        let recorder = FlightRecorder::new(3);
        for i in 0..5u64 {
            recorder.record(record(&format!("{i:032}"), 100 + i));
        }
        let recent = recorder.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].trace_id, format!("{:032}", 4));
        assert_eq!(recent[2].trace_id, format!("{:032}", 2));
    }

    #[test]
    fn slowest_keeps_the_global_tail_sorted() {
        let recorder = FlightRecorder::new(2);
        // Old-but-slow entries must survive ring-buffer eviction.
        recorder.record(record("slow", 9_000_000));
        for i in 0..10u64 {
            recorder.record(record(&format!("fast{i}"), 10 + i));
        }
        let slowest = recorder.slowest();
        assert_eq!(slowest[0].trace_id, "slow");
        assert!(slowest.len() <= SLOWEST_CAPACITY);
        for pair in slowest.windows(2) {
            assert!(pair[0].total_micros >= pair[1].total_micros);
        }
        // The slow entry is gone from recent (capacity 2) but kept above.
        assert!(recorder.recent().iter().all(|r| r.trace_id != "slow"));
    }

    #[test]
    fn slowest_is_bounded() {
        let recorder = FlightRecorder::new(4);
        for i in 0..100u64 {
            recorder.record(record(&format!("r{i}"), i));
        }
        assert_eq!(recorder.slowest().len(), SLOWEST_CAPACITY);
        assert_eq!(recorder.slowest()[0].total_micros, 99);
    }

    #[test]
    fn stage_micros_looks_up_by_name() {
        let r = record("t", 100);
        assert_eq!(r.stage_micros("solve"), 50);
        assert_eq!(r.stage_micros("serialize"), 25);
        assert_eq!(r.stage_micros("absent"), 0);
    }

    #[test]
    fn snapshot_round_trips_through_wire_types() {
        let recorder = FlightRecorder::new(8);
        recorder.record(record("a".repeat(32).as_str(), 1234));
        let snap = recorder.snapshot();
        assert_eq!(snap.capacity, 8);
        assert_eq!(snap.recent.len(), 1);
        assert_eq!(snap.recent[0].total_micros, 1234);
        assert_eq!(snap.recent[0].stages.len(), 2);
        assert_eq!(snap.slowest[0].trace_id, snap.recent[0].trace_id);
    }
}
