//! Sharded, lock-striped LRU result cache with append-only journal
//! persistence.
//!
//! Keys combine the canonical placement [`Fingerprint`] with the search
//! parameters, so the same placement searched for different micro-batch
//! counts occupies distinct entries. The key space is striped across
//! independently locked shards: concurrent requests for different placements
//! never contend on the same mutex, and the per-shard LRU bookkeeping stays
//! trivial.
//!
//! Persistence is an **append-only journal** ([`CacheJournal`]): every insert
//! appends one JSON record (one line) instead of rewriting the whole cache,
//! and every [`CacheJournal::compact_every`] appends the journal is compacted
//! back to one record per live entry (atomically: temp file + rename). Replay
//! tolerates a truncated tail — a daemon killed mid-append recovers every
//! complete record and drops only the torn last line — while a file whose
//! *first* record is unreadable is treated as an incompatible snapshot from
//! an older daemon (cold start, not crash loop).

use crate::wire::CacheEntryInfo;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tessel_core::fingerprint::Fingerprint;
use tessel_core::ir::PlacementSpec;
use tessel_core::schedule::Schedule;
use tessel_runtime::metrics::UtilizationSummary;
use tessel_solver::SolverTotals;

/// The search parameters that participate in cache identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Micro-batches the composed schedule covers.
    pub num_micro_batches: usize,
    /// `NR` cap the search ran with.
    pub max_repetend_micro_batches: usize,
}

/// A cache key: canonical fingerprint plus parameter hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(u64);

impl CacheKey {
    /// Builds the key for `fingerprint` searched under `params`.
    #[must_use]
    pub fn new(fingerprint: Fingerprint, params: &CacheParams) -> Self {
        let mut h = fingerprint.0 ^ 0x5ca1_ab1e_0000_0001;
        for v in [
            params.num_micro_batches as u64,
            params.max_repetend_micro_batches as u64,
        ] {
            h ^= v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h ^= h >> 29;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 32;
        }
        CacheKey(h)
    }

    /// The raw 64-bit key (used by persistence).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One cached search result, stored in **canonical** labeling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedSearch {
    /// Canonical fingerprint of the placement.
    pub fingerprint: Fingerprint,
    /// Parameters the search ran with.
    pub params: CacheParams,
    /// The canonical placement. Kept *locally* to translate the schedule into
    /// a requester's labeling, to back `--paranoid-fingerprints` lookup
    /// re-verification, and to ship with replication/warm-up (whose receiver
    /// always re-canonicalizes it); the exact canonical labeling makes
    /// fingerprint equality trustworthy between fingerprints a node computed
    /// itself, so remote cache hits no longer ship it (see
    /// [`crate::wire::WireSearchEntry`]).
    pub canonical_placement: PlacementSpec,
    /// The composed schedule, in canonical labeling.
    pub schedule: Schedule,
    /// Winning repetend period `t_R`.
    pub period: u64,
    /// `NR` of the winning repetend.
    pub repetend_micro_batches: usize,
    /// Steady-state bubble rate of the repetend.
    pub bubble_rate: f64,
    /// Simulated per-device utilization, in canonical labeling.
    pub utilization: UtilizationSummary,
    /// Aggregate solver effort of the original search (nodes, prunes, and
    /// the work-stealing steal/shared-memo counters), served by the inspect
    /// endpoint.
    pub solver: SolverTotals,
    /// Wall-clock milliseconds the search took.
    pub search_millis: u64,
}

#[derive(Debug)]
struct Entry {
    value: Arc<CachedSearch>,
    last_used: u64,
    hits: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<u64, Entry>,
    tick: u64,
}

/// Configuration of the [`ShardedCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of independently locked shards (rounded up to at least 1).
    pub shards: usize,
    /// Maximum number of entries per shard before LRU eviction kicks in.
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity_per_shard: 128,
        }
    }
}

/// The sharded, lock-striped LRU cache.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    evictions: AtomicU64,
}

/// Persisted form of one entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PersistedEntry {
    key: u64,
    hits: u64,
    entry: CachedSearch,
}

impl ShardedCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: &CacheConfig) -> Self {
        let shards = config.shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: config.capacity_per_shard.max(1),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CacheKey) -> &Mutex<Shard> {
        // High bits: the low bits already went into shard-local hashing.
        let index = (key.raw() >> 48) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Looks up `key`, bumping its LRU position and hit count.
    #[must_use]
    pub fn get(&self, key: CacheKey) -> Option<Arc<CachedSearch>> {
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.entries.get_mut(&key.raw())?;
        entry.last_used = tick;
        entry.hits += 1;
        Some(entry.value.clone())
    }

    /// Inserts (or replaces) `value` under `key`, evicting the least recently
    /// used entry of the shard if it is full.
    pub fn insert(&self, key: CacheKey, value: Arc<CachedSearch>) {
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.entries.contains_key(&key.raw()) && shard.entries.len() >= self.capacity_per_shard
        {
            if let Some((&lru, _)) = shard
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
            {
                shard.entries.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.entries.insert(
            key.raw(),
            Entry {
                value,
                last_used: tick,
                hits: 0,
            },
        );
    }

    /// Number of entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").entries.len())
            .sum()
    }

    /// `true` if no entry is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total LRU evictions so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Summary rows for every cached entry, most recently used first.
    #[must_use]
    pub fn list(&self) -> Vec<CacheEntryInfo> {
        let mut rows: Vec<(u64, CacheEntryInfo)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard lock");
            for entry in shard.entries.values() {
                let v = &entry.value;
                rows.push((
                    entry.last_used,
                    CacheEntryInfo {
                        fingerprint: v.fingerprint,
                        num_micro_batches: v.params.num_micro_batches,
                        max_repetend_micro_batches: v.params.max_repetend_micro_batches,
                        period: v.period,
                        bubble_rate: v.bubble_rate,
                        num_devices: v.canonical_placement.num_devices(),
                        num_blocks: v.canonical_placement.num_blocks(),
                        hits: entry.hits,
                        search_millis: v.search_millis,
                    },
                ));
            }
        }
        rows.sort_by(|(ta, a), (tb, b)| {
            tb.cmp(ta)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
                .then_with(|| a.num_micro_batches.cmp(&b.num_micro_batches))
        });
        rows.into_iter().map(|(_, info)| info).collect()
    }

    /// Every cached entry for `fingerprint`, most recently used first.
    #[must_use]
    pub fn entries_for(&self, fingerprint: Fingerprint) -> Vec<Arc<CachedSearch>> {
        let mut rows: Vec<(u64, Arc<CachedSearch>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard lock");
            for entry in shard.entries.values() {
                if entry.value.fingerprint == fingerprint {
                    rows.push((entry.last_used, entry.value.clone()));
                }
            }
        }
        rows.sort_by_key(|(t, _)| std::cmp::Reverse(*t));
        rows.into_iter().map(|(_, v)| v).collect()
    }

    /// Every cached entry with its raw key, in no particular order. Feeds
    /// journal compaction and the cluster warm-up export; does not bump LRU
    /// positions or hit counts.
    #[must_use]
    pub fn export(&self) -> Vec<(u64, Arc<CachedSearch>)> {
        let mut rows: Vec<(u64, Arc<CachedSearch>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard lock");
            for (&key, entry) in &shard.entries {
                rows.push((key, entry.value.clone()));
            }
        }
        rows
    }

    /// Writes the whole cache as a compacted journal to `path` (one JSON
    /// record per line; atomically: temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut records: Vec<PersistedEntry> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard lock");
            for (&key, entry) in &shard.entries {
                records.push(PersistedEntry {
                    key,
                    hits: entry.hits,
                    entry: (*entry.value).clone(),
                });
            }
        }
        records.sort_by_key(|r| r.key);
        let mut out = String::new();
        for record in &records {
            let json = serde_json::to_string(record)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            out.push_str(&json);
            out.push('\n');
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, path)
    }

    /// Replays a journal previously written by [`ShardedCache::save`] and
    /// [`CacheJournal::append`]. Returns the number of records restored; a
    /// missing file restores nothing and is not an error.
    ///
    /// Later records win over earlier ones for the same key (appends are
    /// newer than the compacted prefix). A torn or corrupt **tail** — the
    /// signature of a crash mid-append — stops the replay at the last good
    /// record with a warning instead of failing.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than "not found". A journal whose
    /// *first* record is unreadable fails with `InvalidData` (an incompatible
    /// format, e.g. a pre-journal whole-file snapshot).
    pub fn load(&self, path: &Path) -> std::io::Result<usize> {
        let outcome = self.load_filtered(path, &mut |_| true)?;
        Ok(outcome.restored)
    }

    /// As [`ShardedCache::load`], but each decoded record is offered to
    /// `keep` before insertion; records it rejects are counted in
    /// [`LoadOutcome::dropped`] instead of restored. Rejected records still
    /// count as "good" for torn-tail detection — a stale entry is a valid
    /// record we choose not to trust, not corruption.
    ///
    /// # Errors
    ///
    /// As [`ShardedCache::load`].
    pub fn load_filtered(
        &self,
        path: &Path,
        keep: &mut dyn FnMut(&CachedSearch) -> bool,
    ) -> std::io::Result<LoadOutcome> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(LoadOutcome::default()),
            Err(e) => return Err(e),
        };
        let mut outcome = LoadOutcome::default();
        let mut decoded = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let record: PersistedEntry = match serde_json::from_str(line) {
                Ok(record) => record,
                Err(e) if decoded == 0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unreadable journal record: {e}"),
                    ));
                }
                Err(_) => {
                    tessel_obs::warn(
                        "cache",
                        "cache journal has a torn tail; stopping at the last good record",
                        &[
                            ("path", &path.display().to_string()),
                            ("recovered", &decoded.to_string()),
                        ],
                    );
                    break;
                }
            };
            decoded += 1;
            if !keep(&record.entry) {
                outcome.dropped += 1;
                continue;
            }
            let key = CacheKey(record.key);
            self.insert(key, Arc::new(record.entry));
            let mut shard = self.shard(key).lock().expect("cache shard lock");
            if let Some(entry) = shard.entries.get_mut(&record.key) {
                entry.hits = record.hits;
            }
            outcome.restored += 1;
        }
        Ok(outcome)
    }
}

/// What [`ShardedCache::load_filtered`] restored and rejected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Records inserted into the cache.
    pub restored: usize,
    /// Valid records rejected by the caller's filter.
    pub dropped: usize,
}

/// Append-only journal persistence for a [`ShardedCache`].
///
/// Each insert appends one record ([`CacheJournal::append`], O(entry) I/O)
/// instead of rewriting the whole cache; after
/// [`CacheJournal::compact_every`] appends the journal is rewritten to one
/// record per live entry. Hit counts persist at compaction time (appends
/// record an entry's hits as of its insert).
#[derive(Debug)]
pub struct CacheJournal {
    path: PathBuf,
    compact_every: usize,
    appends_since_compact: Mutex<usize>,
}

impl CacheJournal {
    /// A journal at `path`, compacting after every `compact_every` appends
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(path: PathBuf, compact_every: usize) -> Self {
        CacheJournal {
            path,
            compact_every: compact_every.max(1),
            appends_since_compact: Mutex::new(0),
        }
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends after which [`CacheJournal::append`] triggers a compaction.
    #[must_use]
    pub fn compact_every(&self) -> usize {
        self.compact_every
    }

    /// Replays the journal into `cache` (see [`ShardedCache::load`]).
    ///
    /// # Errors
    ///
    /// As [`ShardedCache::load`].
    pub fn replay(&self, cache: &ShardedCache) -> std::io::Result<usize> {
        cache.load(&self.path)
    }

    /// Replays the journal into `cache`, dropping records rejected by `keep`
    /// (see [`ShardedCache::load_filtered`]). Used at startup to shed
    /// dead-weight entries whose stored fingerprint no longer matches what
    /// re-canonicalization produces — e.g. keys minted by an older labeling
    /// scheme.
    ///
    /// # Errors
    ///
    /// As [`ShardedCache::load`].
    pub fn replay_filtered(
        &self,
        cache: &ShardedCache,
        keep: &mut dyn FnMut(&CachedSearch) -> bool,
    ) -> std::io::Result<LoadOutcome> {
        cache.load_filtered(&self.path, keep)
    }

    /// Appends one freshly inserted entry, compacting from `cache` when the
    /// append budget is used up. Returns `true` when this call compacted.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(
        &self,
        cache: &ShardedCache,
        key: CacheKey,
        entry: &CachedSearch,
    ) -> std::io::Result<bool> {
        let record = PersistedEntry {
            key: key.raw(),
            hits: 0,
            entry: entry.clone(),
        };
        let json = serde_json::to_string(&record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // The append counter doubles as the serialization point: concurrent
        // appenders write whole lines one at a time.
        let mut appends = self
            .appends_since_compact
            .lock()
            .expect("journal append lock");
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(json.as_bytes())?;
        file.write_all(b"\n")?;
        *appends += 1;
        if *appends >= self.compact_every {
            cache.save(&self.path)?;
            *appends = 0;
            return Ok(true);
        }
        Ok(false)
    }

    /// Compacts the journal to one record per live entry now.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn compact(&self, cache: &ShardedCache) -> std::io::Result<()> {
        let mut appends = self
            .appends_since_compact
            .lock()
            .expect("journal append lock");
        cache.save(&self.path)?;
        *appends = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tessel_core::ir::BlockKind;

    fn sample(fp: u64, n: usize) -> Arc<CachedSearch> {
        let mut b = PlacementSpec::builder("p", 1);
        b.add_block("f0", BlockKind::Forward, [0], 1, 0, [])
            .unwrap();
        let placement = b.build().unwrap();
        let schedule = Schedule::new(
            1,
            1,
            vec![tessel_core::schedule::scheduled_block(&placement, 0, 0, 0)],
        );
        Arc::new(CachedSearch {
            fingerprint: Fingerprint(fp),
            params: CacheParams {
                num_micro_batches: n,
                max_repetend_micro_batches: 2,
            },
            canonical_placement: placement,
            schedule,
            period: 1,
            repetend_micro_batches: 1,
            bubble_rate: 0.0,
            utilization: UtilizationSummary {
                makespan: 1,
                num_micro_batches: 1,
                mean_busy_fraction: 1.0,
                max_wait_fraction: 0.0,
                devices: Vec::new(),
            },
            solver: SolverTotals::default(),
            search_millis: 5,
        })
    }

    fn key(fp: u64, n: usize) -> CacheKey {
        CacheKey::new(
            Fingerprint(fp),
            &CacheParams {
                num_micro_batches: n,
                max_repetend_micro_batches: 2,
            },
        )
    }

    #[test]
    fn get_put_and_hit_counting() {
        let cache = ShardedCache::new(&CacheConfig::default());
        assert!(cache.is_empty());
        assert!(cache.get(key(1, 8)).is_none());
        cache.insert(key(1, 8), sample(1, 8));
        cache.insert(key(2, 8), sample(2, 8));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(key(1, 8)).unwrap().fingerprint, Fingerprint(1));
        assert_eq!(cache.get(key(1, 8)).unwrap().fingerprint, Fingerprint(1));
        let rows = cache.list();
        assert_eq!(rows.len(), 2);
        let row1 = rows
            .iter()
            .find(|r| r.fingerprint == Fingerprint(1))
            .unwrap();
        assert_eq!(row1.hits, 2);
        // Distinct parameters are distinct entries.
        cache.insert(key(1, 4), sample(1, 4));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.entries_for(Fingerprint(1)).len(), 2);
    }

    #[test]
    fn lru_eviction_per_shard() {
        let cache = ShardedCache::new(&CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
        });
        cache.insert(key(1, 8), sample(1, 8));
        cache.insert(key(2, 8), sample(2, 8));
        // Touch 1 so 2 becomes the LRU victim.
        let _ = cache.get(key(1, 8));
        cache.insert(key(3, 8), sample(3, 8));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(key(1, 8)).is_some());
        assert!(cache.get(key(2, 8)).is_none());
        assert!(cache.get(key(3, 8)).is_some());
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("snapshot-{}.json", std::process::id()));
        let cache = ShardedCache::new(&CacheConfig::default());
        cache.insert(key(7, 8), sample(7, 8));
        let _ = cache.get(key(7, 8));
        cache.save(&path).unwrap();

        let warm = ShardedCache::new(&CacheConfig::default());
        assert_eq!(warm.load(&path).unwrap(), 1);
        let entry = warm.get(key(7, 8)).expect("restored entry");
        assert_eq!(entry.fingerprint, Fingerprint(7));
        // Hit counts survive the restart (the restore itself is not a hit).
        let row = &warm.list()[0];
        assert_eq!(row.hits, 2);

        // A missing snapshot restores nothing.
        let cold = ShardedCache::new(&CacheConfig::default());
        assert_eq!(cold.load(&dir.join("absent.json")).unwrap(), 0);
        let _ = std::fs::remove_file(&path);
    }

    fn journal_dir() -> std::path::PathBuf {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn journal_appends_do_not_rewrite_and_replay_in_order() {
        let path = journal_dir().join(format!("journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cache = ShardedCache::new(&CacheConfig::default());
        let journal = CacheJournal::new(path.clone(), 100);
        for fp in 1..=3u64 {
            cache.insert(key(fp, 8), sample(fp, 8));
            assert!(!journal.append(&cache, key(fp, 8), &sample(fp, 8)).unwrap());
        }
        // Three appends → three lines; no compaction rewrote the file.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);

        let warm = ShardedCache::new(&CacheConfig::default());
        assert_eq!(warm.load(&path).unwrap(), 3);
        for fp in 1..=3u64 {
            assert_eq!(warm.get(key(fp, 8)).unwrap().fingerprint, Fingerprint(fp));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_compacts_after_the_append_budget() {
        let path = journal_dir().join(format!("compact-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cache = ShardedCache::new(&CacheConfig::default());
        let journal = CacheJournal::new(path.clone(), 2);
        cache.insert(key(1, 8), sample(1, 8));
        assert!(!journal.append(&cache, key(1, 8), &sample(1, 8)).unwrap());
        // Re-inserting the same key twice would leave duplicate journal
        // lines; the second append hits the budget and compacts back to one
        // line per live entry.
        cache.insert(key(1, 8), sample(1, 8));
        assert!(journal.append(&cache, key(1, 8), &sample(1, 8)).unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_journal_tail_recovers_the_complete_prefix() {
        let path = journal_dir().join(format!("torn-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cache = ShardedCache::new(&CacheConfig::default());
        let journal = CacheJournal::new(path.clone(), 100);
        for fp in 1..=3u64 {
            cache.insert(key(fp, 8), sample(fp, 8));
            journal.append(&cache, key(fp, 8), &sample(fp, 8)).unwrap();
        }
        // Simulate a crash mid-append: cut the file inside the last record.
        let text = std::fs::read_to_string(&path).unwrap();
        let last_line_start = text.trim_end().rfind('\n').unwrap() + 1;
        let torn = &text[..last_line_start + 20];
        std::fs::write(&path, torn).unwrap();

        let recovered = ShardedCache::new(&CacheConfig::default());
        assert_eq!(recovered.load(&path).unwrap(), 2, "torn tail dropped");
        assert!(recovered.get(key(1, 8)).is_some());
        assert!(recovered.get(key(2, 8)).is_some());
        assert!(recovered.get(key(3, 8)).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_after_replay_repairs_a_torn_journal() {
        let path = journal_dir().join(format!("repair-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cache = ShardedCache::new(&CacheConfig::default());
        let journal = CacheJournal::new(path.clone(), 100);
        for fp in 1..=2u64 {
            cache.insert(key(fp, 8), sample(fp, 8));
            journal.append(&cache, key(fp, 8), &sample(fp, 8)).unwrap();
        }
        // Crash mid-append: the last line is torn and has no newline.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 30]).unwrap();

        // Restart sequence: replay, compact (the repair), then append more.
        // Without the compaction the new record would concatenate onto the
        // torn line and be lost (with everything after it) on the NEXT
        // replay.
        let recovered = ShardedCache::new(&CacheConfig::default());
        let journal = CacheJournal::new(path.clone(), 100);
        assert_eq!(journal.replay(&recovered).unwrap(), 1);
        journal.compact(&recovered).unwrap();
        recovered.insert(key(3, 8), sample(3, 8));
        journal
            .append(&recovered, key(3, 8), &sample(3, 8))
            .unwrap();

        let next = ShardedCache::new(&CacheConfig::default());
        assert_eq!(next.load(&path).unwrap(), 2, "nothing silently dropped");
        assert!(next.get(key(1, 8)).is_some());
        assert!(next.get(key(3, 8)).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn incompatible_journal_head_is_invalid_data() {
        let path = journal_dir().join(format!("old-format-{}.json", std::process::id()));
        // A pre-journal whole-file snapshot (JSON array) must read as an
        // incompatible format, which the service turns into a warned cold
        // start.
        std::fs::write(&path, "[\n  {\"key\": 1}\n]\n").unwrap();
        let cache = ShardedCache::new(&CacheConfig::default());
        let err = cache.load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
