//! Minimal HTTP/1.1 transport over `std::net`.
//!
//! The build environment has no async runtime or HTTP crate, so the daemon
//! hand-rolls the narrow slice of HTTP it needs: a blocking listener, a
//! bounded worker pool fed through a `sync_channel` (back-pressure turns into
//! `503` responses instead of unbounded queueing), a tolerant request parser
//! (request line, headers, `Content-Length` body) and `Connection: close`
//! semantics — every request rides its own connection, which keeps the
//! server loop trivial and is plenty for a schedule-search control plane.
//!
//! Routes:
//!
//! | Method | Path                     | Handler                          |
//! |--------|--------------------------|----------------------------------|
//! | POST   | `/v1/search`             | run or fetch a schedule search   |
//! | GET    | `/v1/cache`              | list cache entries               |
//! | GET    | `/v1/cache/{fp}`         | inspect one fingerprint          |
//! | GET    | `/metrics`               | Prometheus text metrics          |
//! | GET    | `/healthz`               | liveness probe                   |
//!
//! [`http_call`] is the matching client used by `tessel-client` and the
//! end-to-end tests.

use crate::service::{ScheduleService, ServiceError};
use crate::wire::ErrorBody;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tessel_core::fingerprint::Fingerprint;

/// Upper bound on header bytes accepted per request.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Upper bound on body bytes accepted per request.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(120);

/// Configuration of the HTTP server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker before `503`s kick in.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7700".into(),
            workers: 4,
            queue_depth: 64,
        }
    }
}

/// A running HTTP server; dropping it without [`HttpServer::shutdown`] leaves
/// the daemon threads running for the life of the process.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `config.addr` and serves `service` until
    /// [`HttpServer::shutdown`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn serve(service: Arc<ScheduleService>, config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers = config.workers.max(1);
        let (sender, receiver): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            sync_channel(config.queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let receiver = receiver.clone();
                let service = service.clone();
                std::thread::spawn(move || loop {
                    let stream = {
                        let receiver = receiver.lock().expect("worker queue lock");
                        receiver.recv()
                    };
                    match stream {
                        Ok(stream) => handle_connection(stream, &service),
                        Err(_) => break, // sender dropped: shutdown
                    }
                })
            })
            .collect();

        let accept_stop = stop.clone();
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                match sender.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Bounded pool: shed load instead of queueing without
                        // limit.
                        respond_unavailable(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // Dropping `sender` here unblocks every worker.
        });

        Ok(HttpServer {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The address the server actually listens on (resolves `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn respond_unavailable(mut stream: TcpStream) {
    let body = render_json(&ErrorBody {
        kind: "unavailable".into(),
        error: "request queue is full".into(),
    });
    let _ = stream.write_all(format_response(503, "application/json", &body).as_bytes());
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    body: String,
}

fn handle_connection(mut stream: TcpStream, service: &ScheduleService) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match parse_request(&mut stream) {
        Ok(request) => route(service, &request),
        Err(message) => error_response(400, "bad_request", &message),
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn parse_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buffer) {
            break pos;
        }
        if buffer.len() > MAX_HEADER_BYTES {
            return Err("headers too large".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buffer.extend_from_slice(&chunk[..n]);
    };

    let header_text = String::from_utf8_lossy(&buffer[..header_end]).into_owned();
    let mut lines = header_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_uppercase();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(format!("malformed request line `{request_line}`"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "invalid Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }

    let mut body = buffer[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Request { method, path, body })
}

fn find_header_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

fn route(service: &ScheduleService, request: &Request) -> String {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/search") => match serde_json::from_str(&request.body) {
            Ok(search_request) => match service.search(&search_request) {
                Ok(response) => format_response(200, "application/json", &render_json(&response)),
                Err(e) => service_error_response(&e),
            },
            Err(e) => error_response(400, "bad_request", &format!("invalid request body: {e}")),
        },
        ("GET", "/v1/cache") => format_response(
            200,
            "application/json",
            &render_json(&service.cache_entries()),
        ),
        ("GET", path) if path.starts_with("/v1/cache/") => {
            let raw = &path["/v1/cache/".len()..];
            match Fingerprint::parse(raw) {
                Some(fingerprint) => {
                    let inspect = service.inspect(fingerprint);
                    if inspect.entries.is_empty() {
                        error_response(404, "not_found", &format!("no entry for {fingerprint}"))
                    } else {
                        format_response(200, "application/json", &render_json(&inspect))
                    }
                }
                None => error_response(400, "bad_request", &format!("invalid fingerprint `{raw}`")),
            }
        }
        ("GET", "/metrics") => format_response(
            200,
            "text/plain; version=0.0.4",
            &service.metrics_snapshot().render_prometheus(),
        ),
        ("GET", "/healthz") => format_response(200, "application/json", "{\"status\":\"ok\"}"),
        (_, path) => error_response(404, "not_found", &format!("no route for {path}")),
    }
}

fn service_error_response(error: &ServiceError) -> String {
    let body = render_json(&ErrorBody {
        kind: error.kind().into(),
        error: error.to_string(),
    });
    format_response(error.http_status(), "application/json", &body)
}

fn error_response(status: u16, kind: &str, message: &str) -> String {
    let body = render_json(&ErrorBody {
        kind: kind.into(),
        error: message.into(),
    });
    format_response(status, "application/json", &body)
}

fn render_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| format!("{{\"error\":\"serialize: {e}\"}}"))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn format_response(status: u16, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_text(status),
        body.len()
    )
}

/// Issues one HTTP request against `addr` and returns `(status, body)`.
/// The client half of the hand-rolled transport, used by `tessel-client` and
/// the tests.
///
/// # Errors
///
/// Propagates socket errors and malformed responses.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let socket_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, payload)) = text.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        ));
    };
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing status code")
        })?;
    Ok((status, payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_formatting_is_well_formed() {
        let response = format_response(200, "application/json", "{}");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("Content-Length: 2\r\n"));
        assert!(response.ends_with("\r\n\r\n{}"));
        assert_eq!(status_text(408), "Request Timeout");
        assert_eq!(status_text(599), "Internal Server Error");
    }

    #[test]
    fn header_end_detection() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"partial\r\n"), None);
    }
}
