//! Readiness-based HTTP/1.1 transport over nonblocking `std::net` sockets.
//!
//! The build environment has no async runtime or HTTP crate, so the daemon
//! hand-rolls the narrow slice of HTTP it needs on top of the epoll shim in
//! the crate-private `sys` module:
//!
//! * **One event-loop thread** owns every socket. The listener, a wakeup
//!   pipe and all client connections are registered with a level-triggered
//!   `Poller`; the loop reacts to readiness instead of blocking per
//!   connection, so thousands of idle keep-alive clients cost one sleeping
//!   thread, not one thread each.
//! * **Per-connection state machines** parse requests incrementally (bytes
//!   accumulate in a read buffer until a full head + body is present) and
//!   write responses incrementally (a write buffer drains whenever the
//!   socket is writable), so a slow or malicious peer can never stall the
//!   loop.
//! * **Keep-alive and pipelining**: HTTP/1.1 connections persist across
//!   requests by default (`Connection: close` and HTTP/1.0 semantics are
//!   honoured), and a client may pipeline several requests back-to-back —
//!   responses are reordered to request order before they are written.
//! * **The worker pool still runs the searches.** Parsed requests are handed
//!   to a bounded pool through a deadline/priority-aware `AdmissionQueue`:
//!   workers pop the most urgent waiting request (fewest-served client
//!   first, then highest priority, then earliest deadline), and a full queue
//!   sheds the *least valuable* waiting request — lowest priority, largest
//!   queue share, latest deadline — with `429` + `Retry-After` instead of
//!   refusing the newest arrival (set [`ServerConfig::shed_policy`] to
//!   [`ShedPolicy::RejectNewest`] for the classic `503`-the-newcomer
//!   behaviour). Finished responses come back through a completion list plus
//!   a wakeup-pipe byte that rouses the event loop. A slow solve therefore
//!   never blocks connection handling.
//! * **Anytime streaming**: `POST /v1/search?stream=1` answers with a
//!   chunked `text/event-stream`. Each improving incumbent the solver proves
//!   becomes a `data: {"event":"incumbent",...}` frame the moment it is
//!   found; the final frame carries the full result (or error) and the
//!   stream closes the connection. Incumbent frames are *droppable*: when a
//!   slow consumer's write backlog passes the backpressure bound they are
//!   discarded rather than buffered without limit — the terminal frame never
//!   is.
//! * **Idle timeouts**: connections with no request in flight are closed
//!   after [`ServerConfig::idle_timeout`], which also reaps slow-loris peers
//!   that trickle a request forever.
//!
//! Request bodies arrive either with `Content-Length` or with
//! `Transfer-Encoding: chunked` (decoded incrementally in the same state
//! machine, trailers consumed and ignored). An optional per-IP accept cap
//! ([`ServerConfig::max_conns_per_ip`]) drops over-cap connections at accept
//! time, before any parsing.
//!
//! Routes:
//!
//! | Method | Path                        | Handler                            |
//! |--------|-----------------------------|------------------------------------|
//! | POST   | `/v1/search`                | run or fetch a schedule search     |
//! | POST   | `/v1/search?stream=1`       | same, streaming incumbents (SSE)   |
//! | POST   | `/v1/search/batch`          | many searches, deduped in-batch    |
//! | GET    | `/v1/cache`                 | list cache entries                 |
//! | GET    | `/v1/cache/{fp}`            | inspect one fingerprint            |
//! | PUT    | `/v1/cache/{fp}`            | accept a replicated entry (cluster)|
//! | GET    | `/v1/cluster`               | ring membership and peer health    |
//! | GET    | `/v1/cluster/export/{node}` | warm-up stream of `{node}`'s shard |
//! | GET    | `/v1/debug/requests`        | flight recorder (recent + slowest) |
//! | GET    | `/v1/debug/inflight`        | live in-flight requests + progress |
//! | GET    | `/v1/debug/timeseries`      | sampled rate/gauge window (JSON)   |
//! | GET    | `/v1/debug/trace/{id}`      | fleet-wide assembled span timeline |
//! | GET    | `/v1/debug/loglevel`        | current log level                  |
//! | PUT    | `/v1/debug/loglevel`        | change the log level at runtime    |
//! | GET    | `/metrics`                  | Prometheus text metrics            |
//! | GET    | `/healthz`                  | liveness probe (+ `unix_ms` clock) |
//!
//! `GET /v1/debug/requests` accepts `?status=`, `?min_micros=`, `?endpoint=`
//! and `?trace=` filters (conjunctive); `GET /v1/debug/timeseries` accepts
//! `?window=N` to bound the returned tick count.
//!
//! Every response carries an `X-Tessel-Trace-Id` header (the request-scoped
//! trace ID, joined from a valid inbound `X-Tessel-Trace-Id` or freshly
//! minted) and a `Server-Timing` header with the per-stage breakdown; the
//! same stages land in the flight recorder behind `/v1/debug/requests`.
//!
//! [`HttpClient`] is the matching keep-alive client used by `tessel-client`
//! and the end-to-end tests; [`http_call`] is the one-shot
//! (connection-per-request) convenience wrapper.

use crate::flight::{now_unix_ms, FlightRecord, StageTiming};
use crate::metrics::{ServiceMetrics, TransportMetrics};
use crate::service::{ScheduleService, ServiceError};
use crate::sys::{Event, Interest, Poller};
use crate::wire::{ErrorBody, StreamEvent};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::io::{PipeReader, PipeWriter, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tessel_core::fingerprint::Fingerprint;

/// Upper bound on header bytes accepted per request.
const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Upper bound on body bytes accepted per request.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Client-side socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(120);
/// Unflushed response bytes beyond which a connection stops being read
/// (resumed once the peer drains its side).
const WRITE_BACKPRESSURE_BYTES: usize = 256 * 1024;
/// Reads drained from one connection per readiness event before yielding to
/// the other connections (level-triggered epoll re-arms automatically).
const READS_PER_EVENT: usize = 16;
/// Longest inbound `X-Tessel-Trace-Id` header value considered at all; a
/// longer value is dropped before validation so a hostile peer cannot make
/// the daemon buffer or log an arbitrarily large header. (Valid trace IDs
/// are exactly 32 characters; the slack only exists to keep the cutoff far
/// from the legitimate size.)
const MAX_TRACE_HEADER_BYTES: usize = 128;

/// Event-loop registration token of the listener socket.
const TOKEN_LISTENER: u64 = 0;
/// Event-loop registration token of the wakeup pipe.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Response headers as they appeared on the wire: `(name, value)` pairs in
/// arrival order, names keeping their wire casing (look up
/// case-insensitively).
pub type ResponseHeaders = Vec<(String, String)>;

/// Configuration of the HTTP server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7700` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Parsed requests waiting for a worker before `503`s kick in.
    pub queue_depth: usize,
    /// Close connections with no request in flight after this long.
    pub idle_timeout: Duration,
    /// Pipelined requests accepted per connection before reads pause.
    pub max_pipelined: usize,
    /// Open connections allowed per client IP; a connection arriving over
    /// the cap is closed at accept (counted in
    /// `tessel_http_rejected_per_ip_total`). `0` disables the cap.
    pub max_conns_per_ip: usize,
    /// What happens when the admission queue is full (see [`ShedPolicy`]).
    pub shed_policy: ShedPolicy,
    /// Milliseconds between live-plane samples (requests/s, shed/s, cache
    /// hit ratio, solver nodes/s, queue depth, open connections) taken by
    /// the background sampler for `GET /v1/debug/timeseries`. `0` disables
    /// the sampler entirely (the endpoint then answers `404`).
    pub sample_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7700".into(),
            workers: 4,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(60),
            max_pipelined: 32,
            max_conns_per_ip: 0,
            shed_policy: ShedPolicy::LeastValuable,
            sample_interval_ms: 1000,
        }
    }
}

/// Series sampled by the live-plane sampler thread, in ring order.
const SAMPLER_SERIES: [&str; 6] = [
    "requests_per_s",
    "shed_per_s",
    "cache_hit_ratio",
    "solver_nodes_per_s",
    "queue_depth",
    "connections_open",
];

/// Ticks retained by the sampler ring (10 minutes at the default 1 s
/// cadence; six series of f64 keep this under 30 KiB).
const TIMESERIES_CAPACITY: usize = 600;

/// Overload behaviour of the admission queue when a request arrives while
/// [`ServerConfig::queue_depth`] requests are already waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Admit the newcomer and shed the least valuable *waiting* request
    /// instead: lowest priority first, then the client holding the most
    /// queue slots, then the latest deadline (no deadline sorts latest),
    /// then the newest arrival. The victim gets `429 Too Many Requests`
    /// with `Retry-After: 1`.
    #[default]
    LeastValuable,
    /// Classic tail-drop: refuse the newcomer with `503` and keep the
    /// queue as-is. The pre-admission-control baseline, kept for the
    /// overload benchmark comparison.
    RejectNewest,
}

impl std::str::FromStr for ShedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "least-valuable" | "least_valuable" => Ok(ShedPolicy::LeastValuable),
            "reject-newest" | "reject_newest" => Ok(ShedPolicy::RejectNewest),
            other => Err(format!("unknown shed policy `{other}`")),
        }
    }
}

/// A running HTTP server; dropping it without [`HttpServer::shutdown`] leaves
/// the daemon threads running for the life of the process.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: PipeWriter,
    loop_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
    sampler_handle: Option<JoinHandle<()>>,
    timeseries: Option<Arc<tessel_obs::TimeSeries>>,
    transport: Arc<TransportMetrics>,
}

impl HttpServer {
    /// Binds `config.addr` and serves `service` until
    /// [`HttpServer::shutdown`].
    ///
    /// # Errors
    ///
    /// Propagates socket bind and poller setup failures.
    pub fn serve(service: Arc<ScheduleService>, config: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        Self::serve_listener(service, listener, config)
    }

    /// Serves `service` on an already bound `listener` (`config.addr` is
    /// ignored). The cluster tests bind both fleet members' listeners first
    /// so each daemon can be configured with the other's real address before
    /// either starts serving.
    ///
    /// # Errors
    ///
    /// Propagates poller setup failures.
    pub fn serve_listener(
        service: Arc<ScheduleService>,
        listener: TcpListener,
        config: &ServerConfig,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let transport = Arc::new(TransportMetrics::new());
        let (wake_rx, wake_tx) = std::io::pipe()?;

        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKER, Interest::READABLE)?;

        let workers = config.workers.max(1);
        let admission = Arc::new(AdmissionQueue::new(
            config.queue_depth.max(1),
            config.shed_policy,
            transport.clone(),
        ));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        let timeseries = (config.sample_interval_ms > 0).then(|| {
            Arc::new(tessel_obs::TimeSeries::new(
                &SAMPLER_SERIES,
                TIMESERIES_CAPACITY,
                config.sample_interval_ms,
            ))
        });
        let sampler_handle = timeseries.as_ref().map(|timeseries| {
            let timeseries = Arc::clone(timeseries);
            let service = service.clone();
            let transport = transport.clone();
            let stop = stop.clone();
            let interval = Duration::from_millis(config.sample_interval_ms);
            std::thread::spawn(move || {
                sampler_loop(&timeseries, &service, &transport, &stop, interval)
            })
        });

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let admission = admission.clone();
                let service = service.clone();
                let transport = transport.clone();
                let timeseries = timeseries.clone();
                let completions = completions.clone();
                // Shared (not per-worker-owned): the streaming incumbent
                // sink clones it into solver-thread callbacks.
                let waker = Arc::new(Mutex::new(wake_tx.try_clone()?));
                // The loop ends when `pop` returns `None`: queue closed and
                // drained, i.e. shutdown.
                Ok(std::thread::spawn(move || {
                    while let Some(job) = admission.pop() {
                        // A valid inbound trace ID joins the request to the
                        // originating trace (cluster-internal calls); anything
                        // else — absent, malformed, oversized — mints a fresh ID
                        // and the raw header value is never reflected back.
                        let trace_id = job
                            .request
                            .trace_header
                            .as_deref()
                            .and_then(tessel_obs::TraceId::parse)
                            .unwrap_or_else(tessel_obs::TraceId::generate);
                        let started = Instant::now();
                        let start_unix_ms = now_unix_ms();
                        tessel_obs::begin_request(trace_id);
                        tessel_obs::record_stage("parse", job.parse_micros);
                        tessel_obs::record_stage(
                            "queue_wait",
                            job.enqueued.elapsed().as_micros() as u64,
                        );
                        // Live registration: the request shows up on
                        // `GET /v1/debug/inflight` (with its solver progress
                        // board) until the guard drops at the end of this
                        // iteration.
                        let _inflight = service.register_inflight(
                            &job.request.method,
                            &job.request.path,
                            job.client.map(|ip| ip.to_string()),
                        );
                        if stream_requested(&job.request) {
                            // A body that does not even parse degrades to the
                            // ordinary (non-streamed) 400 below via `route`.
                            if let Ok(search_request) =
                                serde_json::from_str::<crate::wire::SearchRequest>(
                                    &job.request.body,
                                )
                            {
                                run_streaming(
                                    &service,
                                    &completions,
                                    &waker,
                                    &job,
                                    &search_request,
                                    trace_id,
                                    started,
                                    start_unix_ms,
                                );
                                continue;
                            }
                        }
                        let response =
                            route(&service, &transport, timeseries.as_deref(), &job.request);
                        let finished = tessel_obs::end_request();
                        let total_micros = started.elapsed().as_micros() as u64;
                        let mut extra_headers = vec![(
                            "X-Tessel-Trace-Id".to_string(),
                            trace_id.as_str().to_string(),
                        )];
                        let flight = finished.map(|done| {
                            let timing = done
                                .stages
                                .iter()
                                .map(|(name, micros)| {
                                    format!("{name};dur={:.3}", *micros as f64 / 1000.0)
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            if !timing.is_empty() {
                                extra_headers.push(("Server-Timing".to_string(), timing));
                            }
                            Box::new(PendingFlight {
                                service: service.clone(),
                                record: FlightRecord {
                                    trace_id: done.trace_id.as_str().to_string(),
                                    method: job.request.method.clone(),
                                    path: job.request.path.clone(),
                                    status: response.status,
                                    start_unix_ms,
                                    total_micros,
                                    stages: done
                                        .stages
                                        .iter()
                                        .map(|&(name, micros)| StageTiming {
                                            name: name.to_string(),
                                            micros,
                                        })
                                        .collect(),
                                },
                                created: Instant::now(),
                            })
                        });
                        tessel_obs::info(
                            "http",
                            "request completed",
                            &[
                                ("method", job.request.method.as_str()),
                                ("path", job.request.path.as_str()),
                                ("status", &response.status.to_string()),
                                ("micros", &total_micros.to_string()),
                                ("trace_id", trace_id.as_str()),
                            ],
                        );
                        let bytes = encode_response(&response, !job.request.close, &extra_headers);
                        push_completion(
                            &completions,
                            &waker,
                            Completion {
                                token: job.token,
                                seq: job.seq,
                                bytes,
                                close: job.request.close,
                                fin: true,
                                droppable: false,
                                flight,
                            },
                        );
                    }
                }))
            })
            .collect::<std::io::Result<_>>()?;

        let mut event_loop = EventLoop {
            poller,
            listener,
            wake_rx,
            conns: HashMap::new(),
            per_ip: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            admission,
            completions,
            transport: transport.clone(),
            stop: stop.clone(),
            idle_timeout: config.idle_timeout,
            max_pipelined: config.max_pipelined.max(1),
            max_conns_per_ip: config.max_conns_per_ip,
            idle_deadline: None,
        };
        let loop_handle = std::thread::spawn(move || event_loop.run());

        Ok(HttpServer {
            addr,
            stop,
            waker: wake_tx,
            loop_handle: Some(loop_handle),
            worker_handles,
            sampler_handle,
            timeseries,
            transport,
        })
    }

    /// The live-plane sample ring, when the sampler is enabled
    /// (`sample_interval_ms > 0`).
    #[must_use]
    pub fn timeseries(&self) -> Option<&Arc<tessel_obs::TimeSeries>> {
        self.timeseries.as_ref()
    }

    /// The address the server actually listens on (resolves `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time snapshot of the transport gauges and counters (also
    /// rendered into `GET /metrics`).
    #[must_use]
    pub fn transport_snapshot(&self) -> crate::metrics::TransportSnapshot {
        self.transport.snapshot()
    }

    /// Stops the event loop, drains the workers and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.waker.write(&[1]);
        if let Some(handle) = self.loop_handle.take() {
            let _ = handle.join();
        }
        // The event loop closed the admission queue on exit, which unblocks
        // the workers once the queue is empty.
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.sampler_handle.take() {
            let _ = handle.join();
        }
    }
}

/// Body of the live-plane sampler thread: once per `interval`, reads the
/// cumulative service/transport counters, converts them into per-second
/// rates (and point-in-time gauges) and pushes one tick into the ring.
/// Sleeps in short slices so shutdown never waits a full interval.
fn sampler_loop(
    timeseries: &tessel_obs::TimeSeries,
    service: &ScheduleService,
    transport: &TransportMetrics,
    stop: &AtomicBool,
    interval: Duration,
) {
    let mut prev = service.metrics_snapshot();
    let mut prev_shed = transport.admission_shed.load(Ordering::Relaxed);
    let mut last_tick = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(interval.min(Duration::from_millis(50)));
        if last_tick.elapsed() < interval {
            continue;
        }
        let elapsed_s = last_tick.elapsed().as_secs_f64().max(1e-3);
        last_tick = Instant::now();
        let now = service.metrics_snapshot();
        let shed = transport.admission_shed.load(Ordering::Relaxed);
        let requests = now.requests.saturating_sub(prev.requests);
        let hits = now.cache_hits.saturating_sub(prev.cache_hits);
        let misses = now.cache_misses.saturating_sub(prev.cache_misses);
        let looked_up = hits + misses;
        timeseries.push(
            now_unix_ms(),
            &[
                requests as f64 / elapsed_s,
                shed.saturating_sub(prev_shed) as f64 / elapsed_s,
                if looked_up == 0 {
                    0.0
                } else {
                    hits as f64 / looked_up as f64
                },
                now.solver_nodes.saturating_sub(prev.solver_nodes) as f64 / elapsed_s,
                transport.admission_queue_depth.load(Ordering::Relaxed) as f64,
                transport.connections_open.load(Ordering::Relaxed) as f64,
            ],
        );
        prev = now;
        prev_shed = shed;
    }
}

/// One parsed request, handed from the event loop to the worker pool.
#[derive(Debug)]
struct ParsedRequest {
    method: String,
    path: String,
    body: String,
    /// The connection must close after this request's response (explicit
    /// `Connection: close`, or HTTP/1.0 without `keep-alive`).
    close: bool,
    /// Raw `X-Tessel-Trace-Id` header value, if one arrived within the size
    /// cap. Validated by the worker ([`tessel_obs::TraceId::parse`]); an
    /// invalid value mints a fresh ID and is never echoed back.
    trace_header: Option<String>,
}

/// A unit of work for the pool: which connection, which slot in its response
/// order, and the request itself.
struct Job {
    token: u64,
    seq: u64,
    request: ParsedRequest,
    /// Microseconds the final (completing) parse pass took; the `parse`
    /// stage of the request's trace.
    parse_micros: u64,
    /// When the job entered the worker queue; the gap to worker pickup is
    /// the `queue_wait` stage.
    enqueued: Instant,
    /// Source IP, the admission queue's fairness unit.
    client: Option<IpAddr>,
    /// Admission priority scanned from the request body (`"priority"`);
    /// higher pops first. Defaults to 0.
    priority: i64,
    /// Absolute admission deadline derived from the body's `"deadline_ms"`;
    /// earlier pops first among equal priorities, and a later deadline is
    /// shed first under overload.
    deadline: Option<Instant>,
}

/// A finished response (or response fragment) travelling back to the event
/// loop.
struct Completion {
    token: u64,
    seq: u64,
    bytes: Vec<u8>,
    close: bool,
    /// This completion finishes its request slot. Streaming responses send
    /// many `fin: false` fragments (head, incumbent events) before one final
    /// `fin: true` completion; everything else is a single `fin: true`.
    fin: bool,
    /// The fragment may be discarded when the connection's unflushed write
    /// backlog passes [`WRITE_BACKPRESSURE_BYTES`] — used for lossy
    /// incumbent events, never for heads or terminal frames (which are
    /// always `droppable: false`, and a droppable fragment is never `fin`).
    droppable: bool,
    /// Flight-recorder entry finalized once the event loop's write pass has
    /// run for this response (`None` for transport-level error responses).
    flight: Option<Box<PendingFlight>>,
}

impl Completion {
    /// An ordinary single-shot response: finishes the slot, never dropped.
    fn full(token: u64, seq: u64, bytes: Vec<u8>, close: bool) -> Self {
        Completion {
            token,
            seq,
            bytes,
            close,
            fin: true,
            droppable: false,
            flight: None,
        }
    }
}

/// One request waiting for a worker, with its admission bookkeeping.
struct Waiting {
    job: Job,
    /// Monotone admission counter; the final tie-breaker for both pop
    /// (oldest first) and shed (newest first).
    arrival: u64,
}

/// State behind the [`AdmissionQueue`] lock.
struct AdmissionState {
    waiting: Vec<Waiting>,
    /// Requests handed to workers so far, per client — the fairness
    /// account: the client with the fewest served requests pops first.
    served: HashMap<Option<IpAddr>, u64>,
    arrivals: u64,
    closed: bool,
}

/// What [`AdmissionQueue::offer`] did with a parsed request.
enum OfferOutcome {
    /// The request is waiting for a worker. Under [`ShedPolicy::LeastValuable`]
    /// admitting into a full queue evicts the least valuable waiting request,
    /// returned here so the event loop can answer it with `429`.
    Admitted { shed: Option<Job> },
    /// [`ShedPolicy::RejectNewest`]: the queue is full and the newcomer is
    /// handed back for a `503`.
    Rejected(Job),
    /// The server is shutting down; the job was dropped unserved.
    Closed,
}

/// Deadline/priority-aware bounded admission queue between the event loop
/// and the worker pool (replaces a plain FIFO channel).
///
/// Pop order: fewest-served client first (round-robin fairness across
/// source IPs), then highest priority, then earliest deadline (none sorts
/// last), then oldest arrival. Overload sheds per [`ShedPolicy`].
struct AdmissionQueue {
    state: Mutex<AdmissionState>,
    available: Condvar,
    capacity: usize,
    policy: ShedPolicy,
    transport: Arc<TransportMetrics>,
}

impl AdmissionQueue {
    fn new(capacity: usize, policy: ShedPolicy, transport: Arc<TransportMetrics>) -> Self {
        AdmissionQueue {
            state: Mutex::new(AdmissionState {
                waiting: Vec::new(),
                served: HashMap::new(),
                arrivals: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            transport,
        }
    }

    /// Ranks `deadline`s with "no deadline" as the latest possible one.
    fn deadline_or_max(deadline: Option<Instant>) -> (bool, Option<Instant>) {
        // `(true, _)` (no deadline) orders after every `(false, Some(_))`.
        (deadline.is_none(), deadline)
    }

    fn offer(&self, job: Job) -> OfferOutcome {
        let mut state = self.state.lock().expect("admission lock");
        if state.closed {
            return OfferOutcome::Closed;
        }
        if self.policy == ShedPolicy::RejectNewest && state.waiting.len() >= self.capacity {
            return OfferOutcome::Rejected(job);
        }
        let arrival = state.arrivals;
        state.arrivals += 1;
        state.waiting.push(Waiting { job, arrival });
        let shed = if state.waiting.len() > self.capacity {
            // Least valuable first: lowest priority, then the client
            // hogging the most slots, then the latest deadline, then the
            // newest arrival. (The newcomer itself is a candidate — a
            // low-priority late-deadline arrival into a queue of urgent
            // work sheds itself.)
            let mut share: HashMap<Option<IpAddr>, usize> = HashMap::new();
            for w in &state.waiting {
                *share.entry(w.job.client).or_insert(0) += 1;
            }
            let victim = state
                .waiting
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    b.job
                        .priority
                        .cmp(&a.job.priority)
                        .then_with(|| share.get(&a.job.client).cmp(&share.get(&b.job.client)))
                        .then_with(|| {
                            Self::deadline_or_max(a.job.deadline)
                                .cmp(&Self::deadline_or_max(b.job.deadline))
                        })
                        .then_with(|| a.arrival.cmp(&b.arrival))
                })
                .map(|(index, _)| index)
                .expect("non-empty waiting list");
            Some(state.waiting.swap_remove(victim).job)
        } else {
            None
        };
        self.transport
            .admission_queue_depth
            .store(state.waiting.len() as u64, Ordering::Relaxed);
        drop(state);
        self.available.notify_one();
        OfferOutcome::Admitted { shed }
    }

    /// Blocks until a request is available (or `None` after [`close`] once
    /// the queue has drained) and returns the most urgent waiting request.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("admission lock");
        loop {
            if let Some(index) = Self::select(&state) {
                let picked = state.waiting.swap_remove(index);
                *state.served.entry(picked.job.client).or_insert(0) += 1;
                self.transport
                    .admission_queue_depth
                    .store(state.waiting.len() as u64, Ordering::Relaxed);
                self.transport
                    .admission_wait
                    .observe_micros(picked.job.enqueued.elapsed().as_micros() as u64);
                return Some(picked.job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("admission lock");
        }
    }

    /// Index of the most urgent waiting request: fewest-served client,
    /// then highest priority, then earliest deadline, then oldest arrival.
    fn select(state: &AdmissionState) -> Option<usize> {
        state
            .waiting
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let served_a = state.served.get(&a.job.client).copied().unwrap_or(0);
                let served_b = state.served.get(&b.job.client).copied().unwrap_or(0);
                served_a
                    .cmp(&served_b)
                    .then_with(|| b.job.priority.cmp(&a.job.priority))
                    .then_with(|| {
                        Self::deadline_or_max(a.job.deadline)
                            .cmp(&Self::deadline_or_max(b.job.deadline))
                    })
                    .then_with(|| a.arrival.cmp(&b.arrival))
            })
            .map(|(index, _)| index)
    }

    /// Marks the queue closed and wakes every worker; waiting requests
    /// still drain before `pop` starts returning `None`.
    fn close(&self) {
        let mut state = self.state.lock().expect("admission lock");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }
}

/// A worker-built flight record waiting for its `write` stage: the event
/// loop stamps `created.elapsed()` after flushing the response and deposits
/// the record. This measures completion-to-write-pass, an approximation of
/// time-to-wire that never blocks on a slow peer draining the socket.
struct PendingFlight {
    service: Arc<ScheduleService>,
    record: FlightRecord,
    created: Instant,
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    read_buf: Vec<u8>,
    /// Incremental-parse progress over `read_buf` (head scan + chunked-body
    /// decode).
    cursor: ParseCursor,
    /// Encoded responses waiting for the socket.
    write_buf: Vec<u8>,
    /// `write_buf` prefix already written.
    written: usize,
    /// Sequence number assigned to the next parsed request.
    next_seq: u64,
    /// Sequence number whose response goes out next (pipelined responses are
    /// reordered to request order).
    next_to_send: u64,
    /// Response bytes per sequence number that cannot be written yet (out of
    /// order, or an in-progress stream). The flag marks the slot finished;
    /// an unfinished slot forwards bytes but holds its place in the order.
    pending: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Requests dispatched but not yet completed.
    in_flight: usize,
    /// Last socket activity, for the idle-timeout sweep.
    last_activity: Instant,
    /// No further requests are accepted; close once everything is flushed.
    draining: bool,
    /// The peer closed its sending half.
    peer_closed: bool,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Source IP, for the per-IP accept cap bookkeeping.
    peer_ip: Option<std::net::IpAddr>,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.written == self.write_buf.len()
    }

    fn idle(&self) -> bool {
        self.in_flight == 0
    }

    /// The interest this connection should be registered with right now.
    fn wanted_interest(&self, max_pipelined: usize) -> Interest {
        let backpressured = self.write_buf.len() - self.written >= WRITE_BACKPRESSURE_BYTES;
        Interest {
            readable: !self.draining
                && !self.peer_closed
                && self.in_flight < max_pipelined
                && !backpressured,
            writable: !self.flushed(),
        }
    }
}

/// The single-threaded readiness loop that owns every socket.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    wake_rx: PipeReader,
    conns: HashMap<u64, Conn>,
    /// Open connections per source IP (entries removed at zero).
    per_ip: HashMap<std::net::IpAddr, usize>,
    next_token: u64,
    admission: Arc<AdmissionQueue>,
    completions: Arc<Mutex<Vec<Completion>>>,
    transport: Arc<TransportMetrics>,
    stop: Arc<AtomicBool>,
    idle_timeout: Duration,
    max_pipelined: usize,
    /// Open connections allowed per source IP (`0` = unlimited).
    max_conns_per_ip: usize,
    /// Lower bound on the earliest idle-connection deadline, maintained in
    /// O(1) as connections go idle. Activity only pushes real deadlines
    /// later, so a sweep scheduled from this bound can fire early (and find
    /// nothing) but never late. `None` means no idle connection exists.
    /// This keeps the per-event work O(events), not O(connections) — the
    /// full scan happens only when the bound actually elapses.
    idle_deadline: Option<Instant>,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                break;
            }
            let timeout = self.next_timeout();
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.drain_waker();
                        self.apply_completions();
                    }
                    token => {
                        if event.hangup {
                            // The connection is dead in both directions (or
                            // errored); dropping the fd is the only way to
                            // consume the level-triggered condition. Any
                            // in-flight response is undeliverable anyway and
                            // is dropped when its completion finds no
                            // connection.
                            self.close_conn(token);
                            continue;
                        }
                        if event.readable {
                            self.conn_readable(token);
                        }
                        if event.writable {
                            self.conn_writable(token);
                        }
                    }
                }
            }
            if self
                .idle_deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
            {
                self.sweep_idle();
            }
        }
        // Shutdown: close every connection and the admission queue so the
        // workers drain and exit.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
        self.admission.close();
    }

    /// The wait timeout: time until the (lower bound on the) earliest idle
    /// deadline, if any connection is idle.
    fn next_timeout(&self) -> Option<Duration> {
        self.idle_deadline.map(|deadline| {
            deadline
                .checked_duration_since(Instant::now())
                .unwrap_or(Duration::ZERO)
        })
    }

    /// Notes that a connection went idle now: the next sweep must happen no
    /// later than one idle timeout from now.
    fn note_idle(&mut self) {
        let candidate = Instant::now() + self.idle_timeout;
        self.idle_deadline = Some(match self.idle_deadline {
            Some(existing) => existing.min(candidate),
            None => candidate,
        });
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    let ip = peer.ip();
                    if self.max_conns_per_ip > 0
                        && self.per_ip.get(&ip).copied().unwrap_or(0) >= self.max_conns_per_ip
                    {
                        // Dropping the stream closes it: the cheapest
                        // possible rejection, before any read or parse work.
                        self.transport
                            .rejected_per_ip
                            .fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = Interest::READABLE;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, interest)
                        .is_err()
                    {
                        continue;
                    }
                    *self.per_ip.entry(ip).or_insert(0) += 1;
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            read_buf: Vec::new(),
                            cursor: ParseCursor::default(),
                            write_buf: Vec::new(),
                            written: 0,
                            next_seq: 0,
                            next_to_send: 0,
                            pending: BTreeMap::new(),
                            in_flight: 0,
                            last_activity: Instant::now(),
                            draining: false,
                            peer_closed: false,
                            interest,
                            peer_ip: Some(ip),
                        },
                    );
                    self.transport
                        .connections_open
                        .fetch_add(1, Ordering::Relaxed);
                    self.transport
                        .connections_idle
                        .fetch_add(1, Ordering::Relaxed);
                    self.transport
                        .connections_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    self.note_idle();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn drain_waker(&mut self) {
        // The pipe is readable, so one read returns whatever bytes are
        // queued without blocking; leftovers re-arm the (level-triggered)
        // poller for the next iteration.
        let mut sink = [0u8; 1024];
        let _ = self.wake_rx.read(&mut sink);
    }

    fn apply_completions(&mut self) {
        let batch: Vec<Completion> = {
            let mut completions = self.completions.lock().expect("completion lock");
            std::mem::take(&mut *completions)
        };
        let mut tokens: Vec<u64> = Vec::new();
        for completion in batch {
            if !tokens.contains(&completion.token) {
                tokens.push(completion.token);
            }
            self.deliver(completion);
        }
        // Completions freed pipelining capacity: parse any requests already
        // sitting in the read buffer. Without this, a client that pipelined
        // past `max_pipelined` in one burst and then went quiet would never
        // get the tail served — epoll only fires on new *socket* data, not
        // on bytes already buffered in user space.
        for token in tokens {
            self.parse_ready(token);
            self.update_interest(token);
        }
    }

    /// Records a finished response (or streaming fragment) for `seq`, moves
    /// every byte that is now in request order into the write buffer,
    /// flushes what the socket accepts, then finalizes the request's
    /// flight-recorder entry (the `write` stage is the
    /// worker-completion-to-write-pass gap).
    fn deliver(&mut self, completion: Completion) {
        let Completion {
            token,
            seq,
            bytes,
            close,
            fin,
            droppable,
            flight,
        } = completion;
        if let Some(conn) = self.conns.get_mut(&token) {
            // Lossy fragments (incumbent events) are discarded when the
            // peer is not draining its socket, so a stalled stream consumer
            // costs bounded memory. `fin` bookkeeping below still runs —
            // droppable fragments are never `fin` by construction.
            let backlogged = conn.write_buf.len() - conn.written >= WRITE_BACKPRESSURE_BYTES;
            if !(droppable && backlogged) {
                let slot = conn
                    .pending
                    .entry(seq)
                    .or_insert_with(|| (Vec::new(), false));
                slot.0.extend_from_slice(&bytes);
                slot.1 |= fin;
            }
            let mut became_idle = false;
            if fin {
                conn.in_flight -= 1;
                became_idle = conn.idle();
                if became_idle {
                    self.transport
                        .connections_idle
                        .fetch_add(1, Ordering::Relaxed);
                }
                if close {
                    conn.draining = true;
                }
            }
            // Drain in request order. An unfinished slot (an in-progress
            // stream) forwards the bytes it has and stays put, blocking
            // later responses until its terminal fragment arrives.
            while let Some(slot) = conn.pending.get_mut(&conn.next_to_send) {
                conn.write_buf.append(&mut slot.0);
                if !slot.1 {
                    break;
                }
                conn.pending.remove(&conn.next_to_send);
                conn.next_to_send += 1;
            }
            if became_idle {
                self.note_idle();
            }
            self.flush(token);
        }
        // The record is deposited even when the connection is gone: the
        // request *was* served, and the trace is most interesting exactly
        // when the client gave up waiting for it.
        if let Some(pending) = flight {
            let pending = *pending;
            let write_micros = pending.created.elapsed().as_micros() as u64;
            let mut record = pending.record;
            record.total_micros += write_micros;
            record.stages.push(StageTiming {
                name: "write".to_string(),
                micros: write_micros,
            });
            let path = record
                .path
                .split_once('?')
                .map_or(record.path.as_str(), |(p, _)| p);
            let label = ServiceMetrics::endpoint_label(path);
            pending
                .service
                .metrics()
                .observe_endpoint_micros(label, record.total_micros);
            pending.service.record_flight(record);
        }
    }

    /// Writes as much of the connection's write buffer as the socket
    /// accepts, then closes (if draining and done) or re-arms interest.
    fn flush(&mut self, token: u64) {
        let mut should_close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while !conn.flushed() {
                match conn.stream.write(&conn.write_buf[conn.written..]) {
                    Ok(0) => {
                        should_close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.written += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        should_close = true;
                        break;
                    }
                }
            }
            if !should_close && conn.flushed() {
                conn.write_buf.clear();
                conn.written = 0;
                if (conn.draining || conn.peer_closed) && conn.idle() && conn.pending.is_empty() {
                    should_close = true;
                }
            }
        }
        if should_close {
            self.close_conn(token);
        } else {
            self.update_interest(token);
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let mut chunk = [0u8; 16 * 1024];
        let mut should_close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.interest.readable {
                // Stale readiness after reads were paused; ignore.
                return;
            }
            for _ in 0..READS_PER_EVENT {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    // Note: receiving bytes does NOT refresh `last_activity`.
                    // Only a *completed* request (see `parse_ready`) or a
                    // response write counts as activity, so a slow-loris
                    // peer trickling an incomplete head forever is still
                    // reaped by the idle sweep.
                    Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        should_close = true;
                        break;
                    }
                }
            }
        }
        if should_close {
            self.close_conn(token);
            return;
        }
        self.parse_ready(token);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.peer_closed && conn.idle() && conn.flushed() && conn.pending.is_empty() {
            self.close_conn(token);
            return;
        }
        self.update_interest(token);
    }

    /// Parses every complete request sitting in the read buffer (up to the
    /// pipelining cap) and dispatches each to the worker pool.
    fn parse_ready(&mut self, token: u64) {
        loop {
            let parsed = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.draining || conn.in_flight >= self.max_pipelined {
                    return;
                }
                // Only the completing pass is timed: a request trickling in
                // across many read events re-enters here per event, but the
                // `parse` stage records the cost of the scan that produced
                // the request, not the waiting in between.
                let parse_started = Instant::now();
                match try_parse(&conn.read_buf, &mut conn.cursor) {
                    ParseStatus::NeedMore => return,
                    ParseStatus::Error(message) => {
                        conn.in_flight += 1;
                        if conn.in_flight == 1 {
                            self.transport
                                .connections_idle
                                .fetch_sub(1, Ordering::Relaxed);
                        }
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        let bytes = encode_response(
                            &error_response(400, "bad_request", &message),
                            false,
                            &[],
                        );
                        self.deliver(Completion::full(token, seq, bytes, true));
                        return;
                    }
                    ParseStatus::Request(request, consumed) => {
                        conn.read_buf.drain(..consumed);
                        conn.cursor = ParseCursor::default();
                        conn.last_activity = Instant::now();
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        if seq > 0 {
                            self.transport
                                .keepalive_reuses
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        if conn.in_flight > 0 {
                            self.transport
                                .pipelined_requests
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        conn.in_flight += 1;
                        if conn.in_flight == 1 {
                            self.transport
                                .connections_idle
                                .fetch_sub(1, Ordering::Relaxed);
                        }
                        if request.close || stream_requested(&request) {
                            // A streaming response owns the connection until
                            // its terminal frame; stop parsing further
                            // pipelined requests behind it.
                            conn.draining = true;
                        }
                        (
                            seq,
                            request,
                            parse_started.elapsed().as_micros() as u64,
                            conn.peer_ip,
                        )
                    }
                }
            };
            let (seq, request, parse_micros, client) = parsed;
            let priority = scan_json_integer(&request.body, "priority").unwrap_or(0);
            let deadline = scan_json_integer(&request.body, "deadline_ms")
                .filter(|&ms| ms >= 0)
                .map(|ms| Instant::now() + Duration::from_millis(ms as u64));
            let job = Job {
                token,
                seq,
                request,
                parse_micros,
                enqueued: Instant::now(),
                client,
                priority,
                deadline,
            };
            match self.admission.offer(job) {
                OfferOutcome::Admitted { shed: None } => {}
                OfferOutcome::Admitted { shed: Some(victim) } => {
                    // Overload: the least valuable *waiting* request is
                    // answered with 429 + Retry-After so the newcomer (or a
                    // more urgent waiter) keeps its slot.
                    self.transport
                        .admission_shed
                        .fetch_add(1, Ordering::Relaxed);
                    let close = victim.request.close;
                    let bytes = encode_response(
                        &error_response(
                            429,
                            "overloaded",
                            "shed by admission control: retry shortly",
                        ),
                        !close,
                        &[("Retry-After".to_string(), "1".to_string())],
                    );
                    self.deliver(Completion::full(victim.token, victim.seq, bytes, close));
                }
                OfferOutcome::Rejected(job) => {
                    // Tail-drop baseline: shed load instead of queueing
                    // without limit.
                    self.transport
                        .admission_shed
                        .fetch_add(1, Ordering::Relaxed);
                    let close = job.request.close;
                    let bytes = encode_response(
                        &error_response(503, "unavailable", "request queue is full"),
                        !close,
                        &[],
                    );
                    self.deliver(Completion::full(job.token, job.seq, bytes, close));
                }
                OfferOutcome::Closed => {
                    self.close_conn(token);
                    return;
                }
            }
        }
    }

    fn conn_writable(&mut self, token: u64) {
        self.flush(token);
    }

    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let wanted = conn.wanted_interest(self.max_pipelined);
        if wanted != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, wanted)
                .is_err()
            {
                self.close_conn(token);
                return;
            }
            conn.interest = wanted;
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.poller.remove(conn.stream.as_raw_fd());
            self.transport
                .connections_open
                .fetch_sub(1, Ordering::Relaxed);
            if conn.idle() {
                self.transport
                    .connections_idle
                    .fetch_sub(1, Ordering::Relaxed);
            }
            if let Some(ip) = conn.peer_ip {
                if let Some(count) = self.per_ip.get_mut(&ip) {
                    *count -= 1;
                    if *count == 0 {
                        self.per_ip.remove(&ip);
                    }
                }
            }
            // `conn.stream` drops here, closing the socket.
        }
    }

    /// Closes connections whose idle deadline has passed.
    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.idle() && now.duration_since(c.last_activity) >= self.idle_timeout)
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            self.transport.idle_closed.fetch_add(1, Ordering::Relaxed);
            self.close_conn(token);
        }
        // This sweep is the one place the exact earliest deadline is
        // recomputed; between sweeps `idle_deadline` is maintained as a
        // cheap lower bound.
        self.idle_deadline = self
            .conns
            .values()
            .filter(|c| c.idle())
            .map(|c| c.last_activity + self.idle_timeout)
            .min();
    }
}

/// Outcome of one incremental parse attempt.
enum ParseStatus {
    /// The buffer does not hold a complete request yet.
    NeedMore,
    /// A complete request; the second field is how many buffer bytes it
    /// consumed.
    Request(ParsedRequest, usize),
    /// The buffer can never become a valid request.
    Error(String),
}

/// Per-connection incremental-parse state, reset whenever a complete request
/// is drained from the read buffer.
#[derive(Debug, Default)]
struct ParseCursor {
    /// Read-buffer prefix already scanned for the head terminator.
    scanned: usize,
    /// Chunked-body decoding progress, once the head announced
    /// `Transfer-Encoding: chunked`.
    chunk: Option<ChunkProgress>,
}

/// Checkpointed chunked-decode state: everything before `pos` is already
/// decoded into `body`.
#[derive(Debug)]
struct ChunkProgress {
    /// Buffer offset of the next chunk-size line.
    pos: usize,
    /// Body bytes decoded so far.
    body: Vec<u8>,
}

/// Attempts to parse one request from the front of `buf`. `cursor` caches
/// how far the head-terminator scan and any chunked-body decode have
/// progressed, so repeated calls over a growing buffer stay linear.
fn try_parse(buf: &[u8], cursor: &mut ParseCursor) -> ParseStatus {
    let Some(header_end) = find_header_end(buf, cursor.scanned) else {
        cursor.scanned = buf.len().saturating_sub(3);
        if buf.len() > MAX_HEADER_BYTES {
            return ParseStatus::Error("headers too large".into());
        }
        return ParseStatus::NeedMore;
    };

    let header_text = String::from_utf8_lossy(&buf[..header_end]);
    let mut lines = header_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_uppercase();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or("HTTP/1.1").to_uppercase();
    if method.is_empty() || !path.starts_with('/') {
        return ParseStatus::Error(format!("malformed request line `{request_line}`"));
    }

    let mut content_length = 0usize;
    let mut chunked = false;
    let mut connection = String::new();
    let mut trace_header = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                let Ok(length) = value.trim().parse() else {
                    return ParseStatus::Error("invalid Content-Length".into());
                };
                content_length = length;
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                // `chunked` must be the final (only, in practice) coding;
                // anything else is something this server cannot decode.
                let value = value.trim().to_ascii_lowercase();
                if value == "chunked" {
                    chunked = true;
                } else {
                    return ParseStatus::Error(format!("unsupported Transfer-Encoding `{value}`"));
                }
            } else if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_ascii_lowercase();
            } else if name.eq_ignore_ascii_case("x-tessel-trace-id") {
                // Oversized values are dropped here (treated as absent, so
                // a fresh ID is minted); everything else is kept raw for
                // the worker to validate.
                let value = value.trim();
                if !value.is_empty() && value.len() <= MAX_TRACE_HEADER_BYTES {
                    trace_header = Some(value.to_string());
                }
            }
        }
    }

    let body_start = header_end + 4;
    let (raw_body, consumed) = if chunked {
        // Transfer-Encoding takes precedence over any Content-Length
        // (RFC 9112 §6.3) — a request smuggling both is decoded as chunked.
        let progress = cursor.chunk.get_or_insert_with(|| ChunkProgress {
            pos: body_start,
            body: Vec::new(),
        });
        match decode_chunked(buf, progress) {
            ChunkStatus::NeedMore => return ParseStatus::NeedMore,
            ChunkStatus::Error(message) => {
                cursor.chunk = None;
                return ParseStatus::Error(message);
            }
            ChunkStatus::Done { consumed } => {
                let body = std::mem::take(&mut progress.body);
                cursor.chunk = None;
                (body, consumed)
            }
        }
    } else {
        if content_length > MAX_BODY_BYTES {
            return ParseStatus::Error("body too large".into());
        }
        let consumed = body_start + content_length;
        if buf.len() < consumed {
            return ParseStatus::NeedMore;
        }
        (buf[body_start..consumed].to_vec(), consumed)
    };
    let Ok(body) = String::from_utf8(raw_body) else {
        return ParseStatus::Error("body is not UTF-8".into());
    };

    let close = connection.contains("close")
        || (version == "HTTP/1.0" && !connection.contains("keep-alive"));
    ParseStatus::Request(
        ParsedRequest {
            method,
            path,
            body,
            close,
            trace_header,
        },
        consumed,
    )
}

/// Outcome of one attempt to decode a chunked body prefix.
enum ChunkStatus {
    /// The buffer does not hold the complete chunk stream yet (progress is
    /// checkpointed in the connection's [`ChunkProgress`]).
    NeedMore,
    /// The whole stream (through the last-chunk and trailer section) is
    /// present; the decoded body sits in the [`ChunkProgress`].
    Done {
        /// Buffer offset one past the final CRLF of the stream.
        consumed: usize,
    },
    /// The stream can never become valid.
    Error(String),
}

/// Longest chunk-size line accepted (hex size + extensions + CRLF). A size
/// line that long without a CRLF is garbage, not a slow sender.
const MAX_CHUNK_SIZE_LINE: usize = 128;

/// Decodes an HTTP/1.1 `chunked` transfer coding starting at
/// `progress.pos`: `hex-size[;ext]\r\n data \r\n` repeated, then `0\r\n`, an
/// optional trailer section, and a final `\r\n`. Trailer fields are consumed
/// and ignored.
///
/// `progress` checkpoints at every complete chunk, so a body trickling in
/// across many read events costs work linear in the bytes received, not
/// quadratic — only the final (incomplete) chunk is rescanned. The
/// checkpoint stays valid because the read buffer is only ever appended to
/// until a whole request is drained, which resets the cursor.
fn decode_chunked(buf: &[u8], progress: &mut ChunkProgress) -> ChunkStatus {
    loop {
        let pos = progress.pos;
        let Some(line_end) = find_crlf(buf, pos, MAX_CHUNK_SIZE_LINE) else {
            if buf.len() > pos + MAX_CHUNK_SIZE_LINE {
                return ChunkStatus::Error("invalid chunk size line".into());
            }
            return ChunkStatus::NeedMore;
        };
        let line = &buf[pos..line_end];
        // Chunk extensions (";name=value") are legal; ignore them.
        let size_text = line
            .split(|&b| b == b';')
            .next()
            .unwrap_or_default()
            .trim_ascii();
        let Ok(size_text) = std::str::from_utf8(size_text) else {
            return ChunkStatus::Error("invalid chunk size line".into());
        };
        let Ok(size) = usize::from_str_radix(size_text, 16) else {
            return ChunkStatus::Error(format!("invalid chunk size `{size_text}`"));
        };
        let data_start = line_end + 2;
        if size == 0 {
            // Last chunk: consume the trailer section. No trailers is the
            // common case (an immediate CRLF); otherwise trailer fields run
            // until an empty line, i.e. a CRLFCRLF from just before them.
            if buf.len() < data_start + 2 {
                return ChunkStatus::NeedMore;
            }
            if &buf[data_start..data_start + 2] == b"\r\n" {
                return ChunkStatus::Done {
                    consumed: data_start + 2,
                };
            }
            return match find_header_end(buf, data_start) {
                Some(end) => ChunkStatus::Done { consumed: end + 4 },
                None if buf.len() - data_start > MAX_HEADER_BYTES => {
                    ChunkStatus::Error("trailers too large".into())
                }
                None => ChunkStatus::NeedMore,
            };
        }
        // Compared against the *remaining* budget: immune to `len + size`
        // overflow from an adversarial (e.g. 2^64-ish) chunk size.
        if size > MAX_BODY_BYTES - progress.body.len() {
            return ChunkStatus::Error("body too large".into());
        }
        let data_end = data_start + size;
        if buf.len() < data_end + 2 {
            return ChunkStatus::NeedMore;
        }
        if &buf[data_end..data_end + 2] != b"\r\n" {
            return ChunkStatus::Error("chunk data not terminated by CRLF".into());
        }
        progress.body.extend_from_slice(&buf[data_start..data_end]);
        progress.pos = data_end + 2;
    }
}

/// Position of the next `\r\n` at or after `start`, scanning at most
/// `max_line` bytes.
fn find_crlf(buf: &[u8], start: usize, max_line: usize) -> Option<usize> {
    let end = buf.len().min(start + max_line);
    buf.get(start..end)?
        .windows(2)
        .position(|w| w == b"\r\n")
        .map(|p| start + p)
}

fn find_header_end(buffer: &[u8], scanned: usize) -> Option<usize> {
    let start = scanned.min(buffer.len());
    buffer[start..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| start + p)
}

/// An un-encoded response produced by the router.
struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

fn route(
    service: &ScheduleService,
    transport: &TransportMetrics,
    timeseries: Option<&tessel_obs::TimeSeries>,
    request: &ParsedRequest,
) -> Response {
    let (path, query) = request
        .path
        .split_once('?')
        .unwrap_or((request.path.as_str(), ""));
    match (request.method.as_str(), path) {
        ("POST", "/v1/search") => match serde_json::from_str(&request.body) {
            Ok(search_request) => match service.search(&search_request) {
                Ok(response) => Response {
                    status: 200,
                    content_type: "application/json",
                    body: tessel_obs::stage("serialize", || render_json(&response)),
                },
                Err(e) => service_error_response(&e),
            },
            Err(e) => error_response(400, "bad_request", &format!("invalid request body: {e}")),
        },
        ("POST", "/v1/search/batch") => {
            match serde_json::from_str::<crate::wire::BatchSearchRequest>(&request.body) {
                Ok(batch) => {
                    let response = service.search_batch(&batch);
                    Response {
                        status: 200,
                        content_type: "application/json",
                        body: tessel_obs::stage("serialize", || render_json(&response)),
                    }
                }
                Err(e) => error_response(400, "bad_request", &format!("invalid request body: {e}")),
            }
        }
        ("GET", "/v1/cache") => Response {
            status: 200,
            content_type: "application/json",
            body: render_json(&service.cache_entries()),
        },
        ("GET", path) if path.starts_with("/v1/cache/") => {
            let raw = &path["/v1/cache/".len()..];
            match Fingerprint::parse(raw) {
                Some(fingerprint) => {
                    let inspect = service.inspect(fingerprint);
                    if inspect.entries.is_empty() {
                        error_response(404, "not_found", &format!("no entry for {fingerprint}"))
                    } else {
                        Response {
                            status: 200,
                            content_type: "application/json",
                            body: render_json(&inspect),
                        }
                    }
                }
                None => error_response(400, "bad_request", &format!("invalid fingerprint `{raw}`")),
            }
        }
        // Internal cluster entry exchange: a non-owner daemon replicates a
        // locally solved entry to its ring owner. Every entry is re-validated
        // before insertion (see `ScheduleService::accept_replication`).
        ("PUT", path) if path.starts_with("/v1/cache/") => {
            if service.cluster().is_none() {
                return error_response(404, "not_found", "cluster mode is not enabled");
            }
            let raw = &path["/v1/cache/".len()..];
            let Some(fingerprint) = Fingerprint::parse(raw) else {
                return error_response(400, "bad_request", &format!("invalid fingerprint `{raw}`"));
            };
            match serde_json::from_str::<crate::wire::CacheExchange>(&request.body) {
                Ok(exchange) => {
                    let ack = service.accept_replication(fingerprint, &exchange);
                    Response {
                        status: if ack.accepted > 0 || ack.rejected == 0 {
                            200
                        } else {
                            400
                        },
                        content_type: "application/json",
                        body: render_json(&ack),
                    }
                }
                Err(e) => {
                    error_response(400, "bad_request", &format!("invalid exchange body: {e}"))
                }
            }
        }
        ("GET", "/v1/cluster") => {
            let fingerprint = query
                .split('&')
                .find_map(|pair| pair.strip_prefix("fp="))
                .and_then(Fingerprint::parse);
            match service.cluster_status(fingerprint) {
                Some(status) => Response {
                    status: 200,
                    content_type: "application/json",
                    body: render_json(&status),
                },
                None => error_response(404, "not_found", "cluster mode is not enabled"),
            }
        }
        // Internal warm-up stream: every cached entry owned (per this
        // daemon's ring) by the requesting node, grouped by fingerprint.
        ("GET", path) if path.starts_with("/v1/cluster/export/") => {
            let node = &path["/v1/cluster/export/".len()..];
            match service.export_owned(node) {
                Some(exchanges) => Response {
                    status: 200,
                    content_type: "application/json",
                    body: render_json(&exchanges),
                },
                None => error_response(
                    404,
                    "not_found",
                    &format!("`{node}` is not a member of this cluster"),
                ),
            }
        }
        // The flight recorder: the last N completed requests with per-stage
        // timing breakdowns, plus the slowest requests seen since startup.
        // Filterable: `?status=408&min_micros=50000&endpoint=/v1/search&trace=…`.
        ("GET", "/v1/debug/requests") => match parse_flight_query(query) {
            Ok(flight_query) => Response {
                status: 200,
                content_type: "application/json",
                body: render_json(&service.debug_requests_filtered(&flight_query)),
            },
            Err(message) => error_response(400, "bad_request", &message),
        },
        // Live in-flight requests with their solver progress boards.
        ("GET", "/v1/debug/inflight") => Response {
            status: 200,
            content_type: "application/json",
            body: render_json(&service.debug_inflight()),
        },
        // Windowed live-plane rates and gauges (`?window=N` ticks, default
        // the whole retained ring).
        ("GET", "/v1/debug/timeseries") => match timeseries {
            Some(timeseries) => {
                let window = match query
                    .split('&')
                    .find_map(|pair| pair.strip_prefix("window="))
                {
                    Some(raw) => match raw.parse::<usize>() {
                        Ok(ticks) if ticks > 0 => ticks,
                        _ => {
                            return error_response(
                                400,
                                "bad_request",
                                &format!("invalid window `{raw}`"),
                            )
                        }
                    },
                    None => TIMESERIES_CAPACITY,
                };
                let window = timeseries.window(window);
                let response = crate::wire::TimeseriesResponse {
                    interval_ms: window.interval_ms,
                    ticks: window.ticks as u64,
                    latest_unix_ms: window.latest_unix_ms,
                    series: window
                        .series
                        .into_iter()
                        .map(|series| crate::wire::SeriesWindowInfo {
                            name: series.name,
                            samples: series.samples,
                            last: series.last,
                            min: series.min,
                            max: series.max,
                            avg: series.avg,
                            p50: series.p50,
                            p95: series.p95,
                        })
                        .collect(),
                };
                Response {
                    status: 200,
                    content_type: "application/json",
                    body: render_json(&response),
                }
            }
            None => error_response(
                404,
                "not_found",
                "the live-plane sampler is disabled (sample_interval_ms = 0)",
            ),
        },
        // Fleet-wide trace assembly: local flight records plus every healthy
        // peer's, merged into one clock-adjusted span timeline.
        ("GET", path) if path.starts_with("/v1/debug/trace/") => {
            let raw = &path["/v1/debug/trace/".len()..];
            match tessel_obs::TraceId::parse(raw) {
                Some(trace_id) => Response {
                    status: 200,
                    content_type: "application/json",
                    body: render_json(&service.assemble_trace(trace_id.as_str())),
                },
                None => error_response(400, "bad_request", &format!("invalid trace id `{raw}`")),
            }
        }
        ("GET", "/v1/debug/loglevel") => Response {
            status: 200,
            content_type: "application/json",
            body: render_json(&crate::wire::LogLevelBody {
                level: tessel_obs::level().as_str().to_string(),
            }),
        },
        // Runtime log-level control. The change is announced at the *old*
        // level so turning logging down leaves one last trace of who did it.
        ("PUT", "/v1/debug/loglevel") => {
            match serde_json::from_str::<crate::wire::LogLevelBody>(&request.body) {
                Ok(body) => match body.level.parse::<tessel_obs::Level>() {
                    Ok(level) => {
                        let previous = tessel_obs::set_level(level);
                        tessel_obs::log(
                            previous,
                            "http",
                            "log level changed",
                            &[("from", previous.as_str()), ("to", level.as_str())],
                        );
                        Response {
                            status: 200,
                            content_type: "application/json",
                            body: format!(
                                "{{\"level\":\"{}\",\"previous\":\"{}\"}}",
                                level.as_str(),
                                previous.as_str()
                            ),
                        }
                    }
                    Err(_) => error_response(
                        400,
                        "bad_request",
                        &format!("unknown log level `{}`", body.level),
                    ),
                },
                Err(e) => error_response(400, "bad_request", &format!("invalid body: {e}")),
            }
        }
        ("GET", "/metrics") => {
            let mut body = service.metrics_snapshot().render_prometheus()
                + &service.metrics().render_histograms()
                + &transport.snapshot().render_prometheus()
                + &transport.render_admission_wait();
            if let Some(cluster) = service.cluster_snapshot() {
                body += &cluster.render_prometheus();
            }
            if let Some(timeseries) = timeseries {
                timeseries.render_prometheus(&mut body);
            }
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body,
            }
        }
        // The `unix_ms` clock stamp feeds peer clock-offset estimation: the
        // health prober reads it against its own send time and probe RTT.
        ("GET", "/healthz") => Response {
            status: 200,
            content_type: "application/json",
            body: format!("{{\"status\":\"ok\",\"unix_ms\":{}}}", now_unix_ms()),
        },
        (_, path) => error_response(404, "not_found", &format!("no route for {path}")),
    }
}

/// Parses the `GET /v1/debug/requests` filter query
/// (`status=…&min_micros=…&endpoint=…&trace=…`); unknown keys are ignored,
/// unparseable numbers are an error.
fn parse_flight_query(query: &str) -> Result<crate::flight::FlightQuery, String> {
    let mut flight_query = crate::flight::FlightQuery::default();
    for pair in query.split('&').filter(|pair| !pair.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        match key {
            "status" => {
                flight_query.status = Some(
                    value
                        .parse::<u16>()
                        .map_err(|_| format!("invalid status `{value}`"))?,
                );
            }
            "min_micros" => {
                flight_query.min_micros = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid min_micros `{value}`"))?,
                );
            }
            "endpoint" => flight_query.endpoint = Some(value.to_string()),
            "trace" => flight_query.trace = Some(value.to_string()),
            _ => {}
        }
    }
    Ok(flight_query)
}

fn service_error_response(error: &ServiceError) -> Response {
    Response {
        status: error.http_status(),
        content_type: "application/json",
        body: render_json(&ErrorBody {
            kind: error.kind().into(),
            error: error.to_string(),
        }),
    }
}

fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response {
        status,
        content_type: "application/json",
        body: render_json(&ErrorBody {
            kind: kind.into(),
            error: message.into(),
        }),
    }
}

fn render_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| format!("{{\"error\":\"serialize: {e}\"}}"))
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn encode_response(
    response: &Response,
    keep_alive: bool,
    extra_headers: &[(String, String)],
) -> Vec<u8> {
    let mut encoded = format!(
        "HTTP/1.1 {status} {text}\r\nContent-Type: {content_type}\r\nContent-Length: {length}\r\nConnection: {connection}\r\n",
        status = response.status,
        text = status_text(response.status),
        content_type = response.content_type,
        length = response.body.len(),
        connection = if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        encoded.push_str(name);
        encoded.push_str(": ");
        encoded.push_str(value);
        encoded.push_str("\r\n");
    }
    encoded.push_str("\r\n");
    encoded.push_str(&response.body);
    encoded.into_bytes()
}

/// `true` when the request asks for anytime incumbent streaming:
/// `POST /v1/search?stream=1`.
fn stream_requested(request: &ParsedRequest) -> bool {
    request.method == "POST"
        && request.path.split_once('?').is_some_and(|(path, query)| {
            path == "/v1/search" && query.split('&').any(|pair| pair == "stream=1")
        })
}

/// Extracts a top-level integer field from a JSON body without a full parse:
/// finds `"name"` followed by `:` and an optionally signed integer. Good
/// enough for admission hints (`priority`, `deadline_ms`) — the worker
/// re-parses the body properly, and a false positive from a pathological
/// nested key only perturbs queue order, never correctness.
fn scan_json_integer(body: &str, name: &str) -> Option<i64> {
    let needle = format!("\"{name}\"");
    let mut from = 0;
    while let Some(found) = body[from..].find(&needle) {
        let after = from + found + needle.len();
        let rest = body[after..].trim_start();
        if let Some(rest) = rest.strip_prefix(':') {
            let rest = rest.trim_start();
            let end = rest
                .char_indices()
                .find(|&(i, c)| !(c.is_ascii_digit() || (i == 0 && c == '-')))
                .map_or(rest.len(), |(i, _)| i);
            return rest[..end].parse().ok();
        }
        from = after;
    }
    None
}

/// Queues a completion and rouses the event loop. One wakeup byte per
/// completion; the loop drains in batches, so a full (64 KiB) pipe is
/// unreachable in practice and a short block here is harmless anyway.
fn push_completion(
    completions: &Mutex<Vec<Completion>>,
    waker: &Mutex<PipeWriter>,
    completion: Completion,
) {
    completions
        .lock()
        .expect("completion lock")
        .push(completion);
    let _ = waker.lock().expect("waker lock").write(&[1]);
}

/// Encodes one SSE event (`data: <json>\n\n`) as an HTTP chunk.
fn encode_stream_chunk(event: &StreamEvent) -> Vec<u8> {
    let payload = format!("data: {}\n\n", render_json(event));
    let mut out = format!("{:x}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out.extend_from_slice(b"\r\n");
    out
}

/// Serves one `POST /v1/search?stream=1` request: sends a chunked SSE head
/// immediately, pushes a (droppable) `incumbent` event for every improving
/// makespan the solver reports, and terminates the stream with a `result`
/// (or `error`) event followed by the last-chunk. Streaming responses
/// always close the connection.
#[allow(clippy::too_many_arguments)]
fn run_streaming(
    service: &Arc<ScheduleService>,
    completions: &Arc<Mutex<Vec<Completion>>>,
    waker: &Arc<Mutex<PipeWriter>>,
    job: &Job,
    search_request: &crate::wire::SearchRequest,
    trace_id: tessel_obs::TraceId,
    started: Instant,
    start_unix_ms: u64,
) {
    let token = job.token;
    let seq = job.seq;
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nTransfer-Encoding: chunked\r\nConnection: close\r\nX-Tessel-Trace-Id: {}\r\n\r\n",
        trace_id.as_str()
    );
    push_completion(
        completions,
        waker,
        Completion {
            token,
            seq,
            bytes: head.into_bytes(),
            close: false,
            fin: false,
            droppable: false,
            flight: None,
        },
    );
    // Portfolio workers report incumbents concurrently and not globally in
    // order; a CAS-min filter keeps the stream strictly improving.
    let best = Arc::new(AtomicU64::new(u64::MAX));
    let sink = {
        let completions = completions.clone();
        let waker = waker.clone();
        let best = best.clone();
        tessel_solver::IncumbentSink::new(move |value| {
            let mut current = best.load(Ordering::Relaxed);
            loop {
                if value >= current {
                    return;
                }
                match best.compare_exchange_weak(
                    current,
                    value,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
            let event = StreamEvent::Incumbent {
                value,
                elapsed_ms: started.elapsed().as_millis() as u64,
            };
            push_completion(
                &completions,
                &waker,
                Completion {
                    token,
                    seq,
                    bytes: encode_stream_chunk(&event),
                    close: false,
                    fin: false,
                    droppable: true,
                    flight: None,
                },
            );
        })
    };
    let result = service.search_streamed(search_request, &sink);
    let status = match &result {
        Ok(_) => 200,
        Err(e) => e.http_status(),
    };
    let terminal = match result {
        Ok(response) => StreamEvent::Result(response),
        Err(e) => StreamEvent::Error {
            status,
            body: ErrorBody {
                kind: e.kind().into(),
                error: e.to_string(),
            },
        },
    };
    let mut bytes = encode_stream_chunk(&terminal);
    bytes.extend_from_slice(b"0\r\n\r\n");
    let finished = tessel_obs::end_request();
    let total_micros = started.elapsed().as_micros() as u64;
    let flight = finished.map(|done| {
        Box::new(PendingFlight {
            service: service.clone(),
            record: FlightRecord {
                trace_id: done.trace_id.as_str().to_string(),
                method: job.request.method.clone(),
                path: job.request.path.clone(),
                status,
                start_unix_ms,
                total_micros,
                stages: done
                    .stages
                    .iter()
                    .map(|&(name, micros)| StageTiming {
                        name: name.to_string(),
                        micros,
                    })
                    .collect(),
            },
            created: Instant::now(),
        })
    });
    tessel_obs::info(
        "http",
        "streamed request completed",
        &[
            ("method", job.request.method.as_str()),
            ("path", job.request.path.as_str()),
            ("status", &status.to_string()),
            ("micros", &total_micros.to_string()),
            ("trace_id", trace_id.as_str()),
        ],
    );
    push_completion(
        completions,
        waker,
        Completion {
            token,
            seq,
            bytes,
            close: true,
            fin: true,
            droppable: false,
            flight,
        },
    );
}

/// A keep-alive HTTP/1.1 client: one TCP connection reused across calls.
///
/// Used by `tessel-client --repeat` and the end-to-end tests. The connection
/// is established lazily on the first call and transparently re-established
/// when the server closes it (idle timeout, `Connection: close` response, or
/// daemon restart).
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    host: String,
    stream: Option<TcpStream>,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl HttpClient {
    /// Creates a client for `addr` (e.g. `127.0.0.1:7700`) and opens its
    /// connection.
    ///
    /// # Errors
    ///
    /// Fails if `addr` does not resolve or the connection is refused.
    pub fn new(addr: &str) -> std::io::Result<Self> {
        let mut client = Self::with_timeouts(addr, Duration::from_secs(10), IO_TIMEOUT)?;
        client.stream = Some(client.open()?);
        Ok(client)
    }

    /// Creates a client with explicit connect and read/write timeouts,
    /// **without** connecting — the connection opens lazily on the first
    /// call. The cluster tier uses this: a peer that is down at daemon
    /// startup must not fail construction, and peer calls must give up in
    /// fractions of the interactive timeouts.
    ///
    /// # Errors
    ///
    /// Fails if `addr` does not resolve.
    pub fn with_timeouts(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> std::io::Result<Self> {
        let socket_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
        })?;
        Ok(HttpClient {
            addr: socket_addr,
            host: addr.to_string(),
            stream: None,
            connect_timeout,
            io_timeout,
        })
    }

    fn open(&self) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// `true` while a connection from an earlier call is still held open.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Issues one request, reusing the held connection when possible, and
    /// returns `(status, body)`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses. A stale kept-alive
    /// connection (closed by the server between calls) is retried once on a
    /// fresh connection before an error is returned.
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        self.call_with_headers(method, path, body, &[])
            .map(|(status, _headers, payload)| (status, payload))
    }

    /// Like [`HttpClient::call`], but sends `extra_headers` with the request
    /// (e.g. `X-Tessel-Trace-Id` to join the originating trace) and returns
    /// the response headers alongside status and body. Used by the cluster
    /// tier for trace propagation and by `tessel-client --timing` to read
    /// the `Server-Timing` breakdown.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses, with the same
    /// one-retry behaviour as [`HttpClient::call`].
    pub fn call_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<(u16, ResponseHeaders, String)> {
        let reused = self.stream.is_some();
        match self.call_once(method, path, body, extra_headers) {
            Ok(result) => Ok(result),
            Err(e) if reused && retriable(&e) => {
                // The server dropped the idle connection; retry fresh.
                self.stream = None;
                self.call_once(method, path, body, extra_headers)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn call_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<(u16, ResponseHeaders, String)> {
        if self.stream.is_none() {
            self.stream = Some(self.open()?);
        }
        let stream = self.stream.as_mut().expect("connection just opened");
        let body = body.unwrap_or("");
        // HTTP/1.1 defaults to keep-alive: no Connection header needed.
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\nContent-Length: {length}\r\n",
            host = self.host,
            length = body.len(),
        );
        for (name, value) in extra_headers {
            request.push_str(name);
            request.push_str(": ");
            request.push_str(value);
            request.push_str("\r\n");
        }
        request.push_str("\r\n");
        request.push_str(body);
        stream.write_all(request.as_bytes())?;
        let (status, close, headers, payload) = read_response_full(stream)?;
        if close {
            self.stream = None;
        }
        Ok((status, headers, payload))
    }
}

fn retriable(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::WriteZero
    )
}

/// Reads one HTTP response from `stream`, discarding the response headers.
/// Returns `(status, server_wants_close, body)`.
fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, bool, String)> {
    read_response_full(stream).map(|(status, close, _headers, body)| (status, close, body))
}

/// Reads one HTTP response from `stream`: head, then exactly
/// `Content-Length` body bytes (the connection may stay open, so reading to
/// EOF is not an option). Returns
/// `(status, server_wants_close, headers, body)`; header names keep their
/// wire casing, so callers look them up case-insensitively.
fn read_response_full(
    stream: &mut TcpStream,
) -> std::io::Result<(u16, bool, ResponseHeaders, String)> {
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buffer, 0) {
            break pos;
        }
        if buffer.len() > MAX_HEADER_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response headers too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buffer[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing status code")
        })?;
    let mut content_length = 0usize;
    let mut close = false;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            headers.push((name.to_string(), value.to_string()));
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.eq_ignore_ascii_case("close");
            }
        }
    }

    let mut body = buffer[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok((status, close, headers, body))
}

/// Issues one HTTP request against `addr` on a throwaway connection and
/// returns `(status, body)`.
///
/// The one-shot counterpart of [`HttpClient`]: it sends `Connection: close`
/// so the server tears the connection down after responding. Used by the
/// subcommands of `tessel-client` that only ever make one call.
///
/// # Errors
///
/// Propagates socket errors and malformed responses.
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let socket_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let (status, _close, payload) = read_response(&mut stream)?;
    Ok((status, payload))
}

/// Issues one streaming request against `addr` on a throwaway connection
/// and decodes the chunked SSE response incrementally: `on_event` is
/// invoked with each `data:` payload (JSON text) the moment its frame is
/// complete, terminal event included. Returns `(status, last_payload)` —
/// for a streamed response the last payload is the terminal `result` /
/// `error` event; a non-chunked response (transport-level errors like `429`
/// or `503`) is returned whole as the payload with no events.
///
/// Used by `tessel-client search --stream`.
///
/// # Errors
///
/// Propagates socket errors and malformed responses.
pub fn http_call_streaming(
    addr: &str,
    path: &str,
    body: &str,
    mut on_event: impl FnMut(&str),
) -> std::io::Result<(u16, String)> {
    let socket_addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;

    let mut buffer: Vec<u8> = Vec::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buffer, 0) {
            break pos;
        }
        if buffer.len() > MAX_HEADER_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response headers too large",
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buffer[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing status code")
        })?;
    let mut chunked = false;
    let mut content_length = 0usize;
    for line in head.split("\r\n").skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            let value = value.trim();
            if name.eq_ignore_ascii_case("transfer-encoding") {
                chunked = value.eq_ignore_ascii_case("chunked");
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    let body_start = header_end + 4;

    if !chunked {
        // Transport-level error (shed, queue-full, malformed body): a plain
        // Content-Length response with no events.
        let mut payload = buffer[body_start..].to_vec();
        while payload.len() < content_length {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            payload.extend_from_slice(&chunk[..n]);
        }
        payload.truncate(content_length);
        let payload = String::from_utf8(payload).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "body is not UTF-8")
        })?;
        return Ok((status, payload));
    }

    // Incremental chunked decode reusing the server parser's checkpointing:
    // decoded bytes accumulate in `progress.body`; complete SSE frames
    // (`data: ...\n\n`) are emitted as they appear.
    let mut progress = ChunkProgress {
        pos: body_start,
        body: Vec::new(),
    };
    let mut emitted = 0usize;
    let mut last_event = String::new();
    loop {
        let done = match decode_chunked(&buffer, &mut progress) {
            ChunkStatus::Done { .. } => true,
            ChunkStatus::NeedMore => false,
            ChunkStatus::Error(message) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    message,
                ));
            }
        };
        while let Some(end) = progress.body[emitted..]
            .windows(2)
            .position(|w| w == b"\n\n")
        {
            let frame = String::from_utf8_lossy(&progress.body[emitted..emitted + end]);
            emitted += end + 2;
            for line in frame.lines() {
                if let Some(data) = line.strip_prefix("data: ") {
                    last_event.clear();
                    last_event.push_str(data);
                    on_event(data);
                }
            }
        }
        if done {
            return Ok((status, last_event));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-stream",
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(input: &[u8]) -> (Vec<ParsedRequest>, usize) {
        let mut buf = input.to_vec();
        let mut cursor = ParseCursor::default();
        let mut out = Vec::new();
        loop {
            match try_parse(&buf, &mut cursor) {
                ParseStatus::Request(request, consumed) => {
                    buf.drain(..consumed);
                    cursor = ParseCursor::default();
                    out.push(request);
                }
                ParseStatus::NeedMore => break,
                ParseStatus::Error(e) => panic!("unexpected parse error: {e}"),
            }
        }
        let leftover = buf.len();
        (out, leftover)
    }

    #[test]
    fn response_encoding_is_well_formed() {
        let response = Response {
            status: 200,
            content_type: "application/json",
            body: "{}".into(),
        };
        let keep = String::from_utf8(encode_response(&response, true, &[])).unwrap();
        assert!(keep.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(keep.contains("Content-Length: 2\r\n"));
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert!(keep.ends_with("\r\n\r\n{}"));
        let close = String::from_utf8(encode_response(&response, false, &[])).unwrap();
        assert!(close.contains("Connection: close\r\n"));
        assert_eq!(status_text(408), "Request Timeout");
        assert_eq!(status_text(599), "Internal Server Error");
        // Extra headers land between the fixed head and the blank line.
        let traced = encode_response(
            &response,
            true,
            &[
                ("X-Tessel-Trace-Id".to_string(), "a".repeat(32)),
                ("Server-Timing".to_string(), "solve;dur=1.500".to_string()),
            ],
        );
        let traced = String::from_utf8(traced).unwrap();
        assert!(traced.contains(&format!("X-Tessel-Trace-Id: {}\r\n", "a".repeat(32))));
        assert!(traced.contains("Server-Timing: solve;dur=1.500\r\n"));
        assert!(traced.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn trace_id_header_is_captured_with_a_size_cap() {
        let with =
            b"GET /healthz HTTP/1.1\r\nx-tessel-trace-id: 0123456789abcdef0123456789abcdef\r\n\r\n";
        let (requests, _) = parse_all(with);
        assert_eq!(
            requests[0].trace_header.as_deref(),
            Some("0123456789abcdef0123456789abcdef")
        );
        let without = b"GET /healthz HTTP/1.1\r\n\r\n";
        let (requests, _) = parse_all(without);
        assert!(requests[0].trace_header.is_none());
        // An oversized value is dropped at parse time (treated as absent),
        // so it can never reach a log line or be reflected in a response.
        let oversized = format!(
            "GET /healthz HTTP/1.1\r\nX-Tessel-Trace-Id: {}\r\n\r\n",
            "f".repeat(MAX_TRACE_HEADER_BYTES + 1)
        );
        let (requests, _) = parse_all(oversized.as_bytes());
        assert!(requests[0].trace_header.is_none());
        // A malformed-but-small value is kept raw; the worker's validation
        // (`TraceId::parse`) rejects it and mints a fresh ID.
        let garbage = b"GET /healthz HTTP/1.1\r\nX-Tessel-Trace-Id: not-hex!\r\n\r\n";
        let (requests, _) = parse_all(garbage);
        assert_eq!(requests[0].trace_header.as_deref(), Some("not-hex!"));
        assert!(tessel_obs::TraceId::parse("not-hex!").is_none());
    }

    #[test]
    fn header_end_detection_resumes_from_scan_offset() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody", 0), Some(14));
        assert_eq!(find_header_end(b"partial\r\n", 0), None);
        // A later scan offset must still find a terminator spanning it.
        let buf = b"GET / HTTP/1.1\r\n\r\n";
        assert_eq!(find_header_end(buf, 13), Some(14));
    }

    #[test]
    fn incremental_parse_needs_full_head_and_body() {
        let mut cursor = ParseCursor::default();
        let full = b"POST /v1/search HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        for cut in [10, 30, full.len() - 1] {
            let mut s = ParseCursor::default();
            assert!(matches!(
                try_parse(&full[..cut], &mut s),
                ParseStatus::NeedMore
            ));
        }
        match try_parse(full, &mut cursor) {
            ParseStatus::Request(request, consumed) => {
                assert_eq!(consumed, full.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.path, "/v1/search");
                assert_eq!(request.body, "body");
                assert!(!request.close, "HTTP/1.1 defaults to keep-alive");
            }
            other => panic!(
                "expected request, got {}",
                match other {
                    ParseStatus::NeedMore => "NeedMore".to_string(),
                    ParseStatus::Error(e) => e,
                    ParseStatus::Request(..) => unreachable!(),
                }
            ),
        }
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let wire =
            b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (requests, leftover) = parse_all(wire);
        assert_eq!(requests.len(), 2);
        assert_eq!(leftover, 0);
        assert_eq!(requests[0].path, "/healthz");
        assert!(!requests[0].close);
        assert_eq!(requests[1].path, "/metrics");
        assert!(requests[1].close);
    }

    #[test]
    fn connection_semantics_follow_the_http_version() {
        let old = b"GET / HTTP/1.0\r\n\r\n";
        let (requests, _) = parse_all(old);
        assert!(requests[0].close, "HTTP/1.0 defaults to close");
        let old_keep = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let (requests, _) = parse_all(old_keep);
        assert!(!requests[0].close);
    }

    #[test]
    fn chunked_bodies_decode_incrementally() {
        let full = b"POST /v1/search HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                     4\r\nbody\r\n6\r\n-tail!\r\n0\r\n\r\n";
        // Every prefix is NeedMore, never an error.
        for cut in 1..full.len() {
            let mut cursor = ParseCursor::default();
            assert!(
                matches!(try_parse(&full[..cut], &mut cursor), ParseStatus::NeedMore),
                "cut at {cut}"
            );
        }
        let mut cursor = ParseCursor::default();
        match try_parse(full, &mut cursor) {
            ParseStatus::Request(request, consumed) => {
                assert_eq!(consumed, full.len());
                assert_eq!(request.body, "body-tail!");
                assert!(!request.close);
            }
            _ => panic!("expected a complete chunked request"),
        }
    }

    #[test]
    fn chunked_trailers_and_extensions_are_consumed() {
        let wire = b"POST /v1/search HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
                     5;ext=1\r\nhello\r\n0\r\nX-Checksum: abc\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
        let (requests, leftover) = parse_all(wire);
        assert_eq!(requests.len(), 2, "trailer section must be consumed");
        assert_eq!(requests[0].body, "hello");
        assert_eq!(requests[1].path, "/healthz");
        assert_eq!(leftover, 0);
    }

    #[test]
    fn chunked_errors_are_rejected() {
        let bad_size =
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhi\r\n0\r\n\r\n";
        let mut cursor = ParseCursor::default();
        assert!(matches!(
            try_parse(bad_size, &mut cursor),
            ParseStatus::Error(_)
        ));
        let bad_term = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhiXX0\r\n\r\n";
        let mut cursor = ParseCursor::default();
        assert!(matches!(
            try_parse(bad_term, &mut cursor),
            ParseStatus::Error(_)
        ));
        let unsupported = b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
        let mut cursor = ParseCursor::default();
        assert!(matches!(
            try_parse(unsupported, &mut cursor),
            ParseStatus::Error(_)
        ));
        // A chunk-size line that never ends is garbage, not a slow sender.
        let mut runaway = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec();
        runaway.extend(std::iter::repeat_n(b'f', MAX_CHUNK_SIZE_LINE + 8));
        let mut cursor = ParseCursor::default();
        assert!(matches!(
            try_parse(&runaway, &mut cursor),
            ParseStatus::Error(_)
        ));
    }

    #[test]
    fn adversarial_chunk_sizes_error_without_panicking() {
        // A size near 2^64 must hit the budget check, not overflow the
        // `decoded + size` arithmetic (which would panic the event-loop
        // thread in debug builds and corrupt slice bounds in release).
        for huge in ["fffffffffffffffe", "ffffffffffffffff", "100000000"] {
            let wire = format!(
                "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nAA\r\n{huge}\r\n"
            );
            let mut cursor = ParseCursor::default();
            assert!(
                matches!(
                    try_parse(wire.as_bytes(), &mut cursor),
                    ParseStatus::Error(_)
                ),
                "size {huge} must be rejected"
            );
        }
        // Sizes that do not even parse as u64 are rejected too.
        let wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n1ffffffffffffffff\r\n";
        let mut cursor = ParseCursor::default();
        assert!(matches!(
            try_parse(wire, &mut cursor),
            ParseStatus::Error(_)
        ));
    }

    #[test]
    fn chunked_progress_is_checkpointed_across_calls() {
        // Feed a two-chunk body one byte at a time through ONE cursor (as
        // the connection state machine does) and confirm the decode
        // completes; the checkpoint means earlier chunks are not re-decoded.
        let full = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n2\r\nde\r\n0\r\n\r\n";
        let mut cursor = ParseCursor::default();
        for cut in 1..full.len() {
            assert!(matches!(
                try_parse(&full[..cut], &mut cursor),
                ParseStatus::NeedMore
            ));
        }
        // After the first chunk is complete, the cursor has moved past it.
        assert!(cursor.chunk.as_ref().is_some_and(|p| p.body == b"abcde"));
        match try_parse(full, &mut cursor) {
            ParseStatus::Request(request, consumed) => {
                assert_eq!(request.body, "abcde");
                assert_eq!(consumed, full.len());
            }
            _ => panic!("expected a complete request"),
        }
    }

    #[test]
    fn chunked_takes_precedence_over_content_length() {
        // A request smuggling both headers is decoded as chunked (RFC 9112):
        // the Content-Length of 9999 must not make the parser wait.
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 9999\r\nTransfer-Encoding: chunked\r\n\r\n\
                     2\r\nok\r\n0\r\n\r\n";
        let mut cursor = ParseCursor::default();
        match try_parse(wire, &mut cursor) {
            ParseStatus::Request(request, consumed) => {
                assert_eq!(request.body, "ok");
                assert_eq!(consumed, wire.len());
            }
            _ => panic!("expected a complete request"),
        }
    }

    #[test]
    fn stream_flag_is_detected_in_the_query() {
        let request = |path: &str, method: &str| ParsedRequest {
            method: method.into(),
            path: path.into(),
            body: String::new(),
            close: false,
            trace_header: None,
        };
        assert!(stream_requested(&request("/v1/search?stream=1", "POST")));
        assert!(stream_requested(&request(
            "/v1/search?foo=bar&stream=1",
            "POST"
        )));
        assert!(!stream_requested(&request("/v1/search", "POST")));
        assert!(!stream_requested(&request("/v1/search?stream=0", "POST")));
        assert!(!stream_requested(&request("/v1/search?stream=1", "GET")));
        assert!(!stream_requested(&request("/v1/cache?stream=1", "POST")));
    }

    #[test]
    fn json_integer_scan_finds_admission_hints() {
        let body = r#"{"placement":{"priority_map":[1,2]},"priority":7,"deadline_ms":1500}"#;
        assert_eq!(scan_json_integer(body, "priority"), Some(7));
        assert_eq!(scan_json_integer(body, "deadline_ms"), Some(1500));
        assert_eq!(scan_json_integer(body, "absent"), None);
        assert_eq!(
            scan_json_integer(r#"{"priority":-3}"#, "priority"),
            Some(-3)
        );
        // A null (the serializer always writes the key) reads as absent.
        assert_eq!(scan_json_integer(r#"{"priority":null}"#, "priority"), None);
        // A quoted key that is only a prefix of another key must not match
        // that other key's value.
        assert_eq!(
            scan_json_integer(r#"{"priority_class":2,"priority": 4}"#, "priority"),
            Some(4)
        );
    }

    #[test]
    fn stream_chunks_are_well_formed_sse_frames() {
        let event = StreamEvent::Incumbent {
            value: 42,
            elapsed_ms: 7,
        };
        let chunk = encode_stream_chunk(&event);
        let text = String::from_utf8(chunk).unwrap();
        // `hex-size\r\n data \r\n`, payload `data: {...}\n\n`.
        let (size_line, rest) = text.split_once("\r\n").unwrap();
        let size = usize::from_str_radix(size_line, 16).unwrap();
        let payload = &rest[..size];
        assert!(rest[size..].starts_with("\r\n"));
        assert!(payload.starts_with("data: {"));
        assert!(payload.ends_with("\n\n"));
        assert!(payload.contains("\"event\":\"incumbent\""));
        assert!(payload.contains("\"value\":42"));
    }

    fn admission_job(client: Option<IpAddr>, priority: i64, deadline: Option<Instant>) -> Job {
        Job {
            token: 0,
            seq: 0,
            request: ParsedRequest {
                method: "POST".into(),
                path: "/v1/search".into(),
                body: String::new(),
                close: false,
                trace_header: None,
            },
            parse_micros: 0,
            enqueued: Instant::now(),
            client,
            priority,
            deadline,
        }
    }

    #[test]
    fn admission_pops_by_fairness_priority_then_deadline() {
        let queue = AdmissionQueue::new(
            8,
            ShedPolicy::LeastValuable,
            Arc::new(TransportMetrics::new()),
        );
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b: IpAddr = "10.0.0.2".parse().unwrap();
        let now = Instant::now();
        // Same client, differing priority and deadline.
        assert!(matches!(
            queue.offer(admission_job(
                Some(a),
                0,
                Some(now + Duration::from_secs(9))
            )),
            OfferOutcome::Admitted { shed: None }
        ));
        assert!(matches!(
            queue.offer(admission_job(Some(a), 5, None)),
            OfferOutcome::Admitted { shed: None }
        ));
        assert!(matches!(
            queue.offer(admission_job(
                Some(a),
                0,
                Some(now + Duration::from_secs(1))
            )),
            OfferOutcome::Admitted { shed: None }
        ));
        assert!(matches!(
            queue.offer(admission_job(Some(b), 0, None)),
            OfferOutcome::Admitted { shed: None }
        ));
        // Highest priority first (within client `a`), but after the first
        // pop client `a` has been served once, so client `b` goes next.
        let first = queue.pop().unwrap();
        assert_eq!((first.client, first.priority), (Some(a), 5));
        let second = queue.pop().unwrap();
        assert_eq!(second.client, Some(b));
        // Back to `a`: earliest deadline among its equal-priority waiters.
        let third = queue.pop().unwrap();
        assert_eq!(third.deadline, Some(now + Duration::from_secs(1)));
        let fourth = queue.pop().unwrap();
        assert_eq!(fourth.deadline, Some(now + Duration::from_secs(9)));
    }

    #[test]
    fn overload_sheds_the_least_valuable_waiting_request() {
        let queue = AdmissionQueue::new(
            2,
            ShedPolicy::LeastValuable,
            Arc::new(TransportMetrics::new()),
        );
        let now = Instant::now();
        let a: IpAddr = "10.0.0.1".parse().unwrap();
        let b: IpAddr = "10.0.0.2".parse().unwrap();
        queue.offer(admission_job(
            Some(a),
            0,
            Some(now + Duration::from_secs(1)),
        ));
        queue.offer(admission_job(Some(a), 0, None)); // no deadline = latest
                                                      // The overflowing urgent arrival evicts the deadline-less waiter,
                                                      // not itself and not the earlier-deadline one.
        match queue.offer(admission_job(
            Some(b),
            0,
            Some(now + Duration::from_secs(2)),
        )) {
            OfferOutcome::Admitted { shed: Some(victim) } => {
                assert_eq!(victim.client, Some(a));
                assert!(victim.deadline.is_none());
            }
            _ => panic!("expected a shed victim"),
        }
        // Priority outranks deadline: a low-priority urgent request is shed
        // before a high-priority lazy one.
        let queue = AdmissionQueue::new(
            1,
            ShedPolicy::LeastValuable,
            Arc::new(TransportMetrics::new()),
        );
        queue.offer(admission_job(Some(a), 9, None));
        match queue.offer(admission_job(
            Some(b),
            -1,
            Some(now + Duration::from_millis(5)),
        )) {
            OfferOutcome::Admitted { shed: Some(victim) } => {
                assert_eq!(victim.priority, -1, "the newcomer itself is shed");
            }
            _ => panic!("expected a shed victim"),
        }
    }

    #[test]
    fn reject_newest_policy_refuses_the_newcomer() {
        let queue = AdmissionQueue::new(
            1,
            ShedPolicy::RejectNewest,
            Arc::new(TransportMetrics::new()),
        );
        queue.offer(admission_job(None, 0, None));
        assert!(matches!(
            queue.offer(admission_job(None, 9, None)),
            OfferOutcome::Rejected(_)
        ));
        // Closing drains the waiter, then pops return None.
        queue.close();
        assert!(queue.pop().is_some());
        assert!(queue.pop().is_none());
    }

    #[test]
    fn malformed_requests_error_out() {
        let mut cursor = ParseCursor::default();
        assert!(matches!(
            try_parse(b"not a request\r\n\r\n", &mut cursor),
            ParseStatus::Error(_)
        ));
        let mut cursor = ParseCursor::default();
        assert!(matches!(
            try_parse(
                b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
                &mut cursor
            ),
            ParseStatus::Error(_)
        ));
    }
}
