//! `tessel-service`: a long-running schedule-search daemon.
//!
//! The Tessel search is exponential in the worst case, but production
//! traffic asks for schedules for the same handful of placement shapes over
//! and over (per hardware target, per model revision). This crate turns the
//! one-shot search into a service:
//!
//! * [`service`] — the in-process [`ScheduleService`]: canonicalizes each
//!   requested placement (via [`tessel_core::fingerprint`]), consults a
//!   sharded LRU result cache keyed by the canonical fingerprint, coalesces
//!   identical concurrent requests onto one in-flight search
//!   (*single-flight*), and enforces per-request deadlines through the
//!   solver's cooperative cancellation.
//! * [`cache`] — the lock-striped [`ShardedCache`] with LRU eviction and
//!   JSON persistence, so daemon restarts start warm.
//! * [`singleflight`] — the request-coalescing primitive.
//! * [`metrics`] — request/hit/miss/latency counters with p50/p99 estimates,
//!   rendered in Prometheus text format for `/metrics`.
//! * [`http`] — a readiness-based HTTP/1.1 server over nonblocking
//!   `std::net` sockets: one epoll-driven event-loop thread multiplexes
//!   every connection (keep-alive, pipelining, chunked request bodies, idle
//!   timeouts, per-IP accept caps) and hands parsed requests to the bounded
//!   worker pool; plus the keep-alive [`HttpClient`] used by the
//!   `tessel-client` binary, the cluster tier and the end-to-end tests.
//! * [`cluster`] — the consistent-hash cache sharding tier: a fleet of
//!   daemons (static `--node-id`/`--peer` membership) shares one logical
//!   cache, fetching misses from the fingerprint's ring owner, replicating
//!   local solves to it asynchronously and warming restarts from peers.
//! * [`flight`] — the in-memory flight recorder behind
//!   `GET /v1/debug/requests`: the last N completed requests with per-stage
//!   timing breakdowns plus a slowest-requests view, correlated by the
//!   request-scoped trace IDs of [`tessel_obs`], filterable by status /
//!   duration / endpoint / trace.
//! * [`inflight`] — the live registry behind `GET /v1/debug/inflight`:
//!   every admitted-but-unanswered request with its pipeline stage,
//!   deadline remaining and relaxed-atomic solver progress.
//! * [`wire`] — the JSON request/response types.
//!
//! Two binaries ship with the crate: `tessel-server` (the daemon) and
//! `tessel-client` (a CLI for submitting searches and inspecting the cache).
//!
//! # In-process quickstart
//!
//! The service is usable as a library, without sockets:
//!
//! ```
//! use tessel_core::ir::{BlockKind, PlacementSpec};
//! use tessel_service::{ScheduleService, ServiceConfig, wire::SearchRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = PlacementSpec::builder("v2", 2);
//! b.set_memory_capacity(Some(3));
//! let f0 = b.add_block("f0", BlockKind::Forward, [0], 1, 1, [])?;
//! let f1 = b.add_block("f1", BlockKind::Forward, [1], 1, 1, [f0])?;
//! let b1 = b.add_block("b1", BlockKind::Backward, [1], 2, -1, [f1])?;
//! b.add_block("b0", BlockKind::Backward, [0], 2, -1, [b1])?;
//! let placement = b.build()?;
//!
//! let service = ScheduleService::new(ServiceConfig::default())?;
//! let miss = service.search(&SearchRequest::for_placement(placement.clone()))?;
//! let hit = service.search(&SearchRequest::for_placement(placement))?;
//! assert!(!miss.cached && hit.cached);
//! assert_eq!(miss.schedule, hit.schedule);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `sys` module is the one allowed exception
// (extern "C" epoll bindings; see its docs).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod flight;
pub mod http;
pub mod inflight;
pub mod metrics;
pub mod service;
pub mod singleflight;
#[allow(unsafe_code)]
mod sys;
pub mod wire;

pub use cache::{CacheConfig, CacheJournal, CachedSearch, ShardedCache};
pub use cluster::{peers::PeerConfig, ring::HashRing, Cluster, ClusterConfig};
pub use flight::{FlightQuery, FlightRecord, FlightRecorder, StageTiming};
pub use http::{http_call_streaming, HttpClient, HttpServer, ServerConfig, ShedPolicy};
pub use inflight::{InflightGuard, InflightRegistry};
pub use metrics::{
    ClusterMetrics, ClusterSnapshot, MetricsSnapshot, ServiceMetrics, TransportMetrics,
    TransportSnapshot,
};
pub use service::{ScheduleService, ServiceConfig, ServiceError};
