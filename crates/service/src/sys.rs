//! Minimal epoll bindings for the readiness-based transport.
//!
//! The build environment cannot reach crates.io, so instead of `mio` or the
//! `libc` crate this module declares the four symbols it needs via
//! `extern "C"` against the C library `std` already links, and wraps them in
//! a small safe [`Poller`] API. This is the only place in the workspace that
//! uses `unsafe`; everything above it (the event loop in [`crate::http`])
//! sees plain `std::io` types.
//!
//! The shim is Linux-only by construction (epoll is a Linux API). The event
//! data word carries an opaque `u64` token chosen by the caller, which the
//! transport uses to map readiness events back to connections.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o200_0000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// Mirror of the kernel's `struct epoll_event`. The x86-64 ABI packs it so
/// the 64-bit data word sits directly after the 32-bit event mask.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// Which readiness classes a registration is interested in.
///
/// `EPOLLRDHUP` is deliberately **not** part of any mask: a half-closed peer
/// already shows up as level-triggered readability (`read` returns 0), and a
/// level-triggered `EPOLLRDHUP` on a connection whose reads are paused would
/// re-fire forever without anything consuming it — a busy-spin. Full-close
/// and error conditions (`EPOLLHUP`/`EPOLLERR`, which epoll always reports
/// regardless of the mask) are surfaced via [`Event::hangup`] so the caller
/// can drop the fd, which is the only way to consume them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (includes a pending EOF).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable-only interest.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    fn mask(self) -> u32 {
        let mut mask = 0;
        if self.readable {
            mask |= EPOLLIN;
        }
        if self.writable {
            mask |= EPOLLOUT;
        }
        mask
    }
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (a subsequent `read` returns data or EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The connection is gone in both directions (`EPOLLHUP`) or errored
    /// (`EPOLLERR`). These conditions are reported by the kernel regardless
    /// of the registered mask and persist until the fd is closed — the
    /// caller must drop the fd, or a level-triggered wait loop spins.
    pub hangup: bool,
}

/// A level-triggered epoll instance.
///
/// Level-triggered (the epoll default) keeps the event loop simple: a fd with
/// unread input or unflushed output interest keeps showing up in
/// [`Poller::wait`] until the condition clears, so a handler that reads or
/// writes less than everything is never stranded.
#[derive(Debug)]
pub struct Poller {
    epfd: c_int,
}

impl Poller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes a flags word and returns a new fd or -1.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut event = event;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), std::ptr::from_mut);
        // SAFETY: `ptr` is either null (only for EPOLL_CTL_DEL, which ignores
        // it) or points at a live EpollEvent for the duration of the call.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure (e.g. the fd is already registered).
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Changes the interest of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failure.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.mask(),
                data: token,
            }),
        )
    }

    /// Deregisters `fd`. Harmless to call for an fd the kernel already
    /// dropped (closing an fd removes it from every epoll set).
    pub fn remove(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, None);
    }

    /// Blocks until at least one registered fd is ready or `timeout` passes,
    /// appending the ready events to `out` (which is cleared first).
    ///
    /// A `None` timeout blocks indefinitely; `EINTR` returns an empty batch
    /// instead of an error so callers simply loop.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failure.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        const MAX_EVENTS: usize = 64;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: c_int = match timeout {
            // Round up so a 100µs deadline does not spin at timeout 0.
            Some(t) => c_int::try_from(t.as_millis().max(1)).unwrap_or(c_int::MAX),
            None => -1,
        };
        // SAFETY: the buffer pointer and capacity describe `raw`, which
        // outlives the call; the kernel writes at most MAX_EVENTS entries.
        let rc =
            unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for slot in raw.iter().take(rc as usize) {
            let events = slot.events;
            out.push(Event {
                token: slot.data,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                hangup: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: epfd came from epoll_create1 and is closed exactly once.
        unsafe {
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn pipe_readiness_round_trip() {
        let (reader, mut writer) = std::io::pipe().unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(reader.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        // Nothing written yet: a short wait times out with no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        writer.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(!events[0].writable);

        poller.remove(reader.as_raw_fd());
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn interest_masks_cover_the_classes() {
        // Exactly EPOLLIN: registering EPOLLRDHUP would busy-spin the wait
        // loop when a half-closed connection has its reads paused (nothing
        // consumes a level-triggered RDHUP).
        assert_eq!(Interest::READABLE.mask(), EPOLLIN);
        assert_eq!(Interest::READABLE.mask() & EPOLLOUT, 0);
        let both = Interest {
            readable: true,
            writable: true,
        };
        assert_eq!(both.mask(), EPOLLIN | EPOLLOUT);
    }
}
