//! JSON wire types of the daemon's HTTP API.
//!
//! Requests deserialize leniently (optional fields may be omitted entirely);
//! responses serialize every field, deterministically, so identical cached
//! results render to byte-identical JSON.

use crate::cache::{CacheParams, CachedSearch};
use serde::{field, field_or_null, Deserialize, Error as SerdeError, Serialize, Value};
use tessel_core::fingerprint::Fingerprint;
use tessel_core::ir::PlacementSpec;
use tessel_core::schedule::Schedule;
use tessel_runtime::metrics::UtilizationSummary;
use tessel_solver::SolverTotals;

/// A `POST /v1/search` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRequest {
    /// The placement to schedule. Device labels and block order are
    /// irrelevant for cache identity: requests canonicalize to the same
    /// fingerprint whenever they describe isomorphic placements.
    pub placement: PlacementSpec,
    /// Micro-batches the composed schedule should cover; the service default
    /// applies when omitted.
    pub num_micro_batches: Option<usize>,
    /// `NR` cap for the repetend search; the service default applies when
    /// omitted.
    pub max_repetend_micro_batches: Option<usize>,
    /// Per-request deadline in milliseconds. A search (or a coalesced wait)
    /// running past it fails with a timeout error and nothing is cached.
    pub deadline_ms: Option<u64>,
    /// Worker threads for each exact solve (the work-stealing parallel
    /// solver). Defaults to the daemon's configured value; clamped to the
    /// daemon's ceiling; `0` asks for the machine's available parallelism.
    /// Does not participate in cache identity — every thread count proves
    /// the same optimum.
    pub solver_threads: Option<usize>,
    /// Admission priority. Higher values are admitted first; among equal
    /// priorities the earliest deadline wins. Under overload, the lowest
    /// priority / latest deadline waiting request is shed first. Defaults to
    /// `0`; does not participate in cache identity.
    pub priority: Option<i64>,
}

impl SearchRequest {
    /// A request for `placement` with every tuning knob left at the service
    /// default.
    #[must_use]
    pub fn for_placement(placement: PlacementSpec) -> Self {
        SearchRequest {
            placement,
            num_micro_batches: None,
            max_repetend_micro_batches: None,
            deadline_ms: None,
            solver_threads: None,
            priority: None,
        }
    }
}

impl Serialize for SearchRequest {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("placement".into(), self.placement.to_value()),
            (
                "num_micro_batches".into(),
                self.num_micro_batches.to_value(),
            ),
            (
                "max_repetend_micro_batches".into(),
                self.max_repetend_micro_batches.to_value(),
            ),
            ("deadline_ms".into(), self.deadline_ms.to_value()),
            ("solver_threads".into(), self.solver_threads.to_value()),
            ("priority".into(), self.priority.to_value()),
        ])
    }
}

impl Deserialize for SearchRequest {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let map = value
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected object for SearchRequest"))?;
        Ok(SearchRequest {
            placement: PlacementSpec::from_value(field(map, "placement")?)?,
            num_micro_batches: Deserialize::from_value(field_or_null(map, "num_micro_batches"))?,
            max_repetend_micro_batches: Deserialize::from_value(field_or_null(
                map,
                "max_repetend_micro_batches",
            ))?,
            deadline_ms: Deserialize::from_value(field_or_null(map, "deadline_ms"))?,
            solver_threads: Deserialize::from_value(field_or_null(map, "solver_threads"))?,
            priority: Deserialize::from_value(field_or_null(map, "priority"))?,
        })
    }
}

/// A successful `POST /v1/search` response body.
///
/// The schedule and per-device utilization are expressed in the **request's**
/// device labeling and stage numbering — cache hits against a permuted
/// equivalent are translated back before they are returned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResponse {
    /// Canonical fingerprint of the requested placement (the cache identity).
    pub fingerprint: Fingerprint,
    /// `true` if the result came from the cache.
    pub cached: bool,
    /// `true` if this request was coalesced onto another request's in-flight
    /// search instead of running its own.
    pub coalesced: bool,
    /// Micro-batches the composed schedule covers.
    pub num_micro_batches: usize,
    /// The winning repetend period `t_R`.
    pub period: u64,
    /// `NR` of the winning repetend.
    pub repetend_micro_batches: usize,
    /// Steady-state bubble rate of the repetend.
    pub bubble_rate: f64,
    /// The composed schedule, in the request's labeling.
    pub schedule: Schedule,
    /// Simulated per-device utilization of the schedule, in the request's
    /// labeling.
    pub utilization: UtilizationSummary,
    /// Wall-clock milliseconds the underlying search took (0 for pure cache
    /// hits).
    pub search_millis: u64,
}

/// A `POST /v1/search/batch` request body: many searches admitted, solved
/// and answered as one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSearchRequest {
    /// The member searches, answered in order.
    pub requests: Vec<SearchRequest>,
}

impl Serialize for BatchSearchRequest {
    fn to_value(&self) -> Value {
        Value::Map(vec![("requests".into(), self.requests.to_value())])
    }
}

impl Deserialize for BatchSearchRequest {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let map = value
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected object for BatchSearchRequest"))?;
        Ok(BatchSearchRequest {
            requests: Deserialize::from_value(field(map, "requests")?)?,
        })
    }
}

/// One member result of a `POST /v1/search/batch` response: exactly one of
/// `ok` / `error` is present.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSearchItem {
    /// The member's search response, translated into its own labeling.
    pub ok: Option<SearchResponse>,
    /// The member's failure, when the search could not be answered.
    pub error: Option<ErrorBody>,
    /// `true` when this member shared another member's solve (same canonical
    /// fingerprint and parameters) instead of running its own.
    pub deduped: bool,
}

impl Serialize for BatchSearchItem {
    fn to_value(&self) -> Value {
        let mut map: Vec<(String, Value)> = Vec::new();
        if let Some(ok) = &self.ok {
            map.push(("ok".into(), ok.to_value()));
        }
        if let Some(error) = &self.error {
            map.push(("error".into(), error.to_value()));
        }
        map.push(("deduped".into(), self.deduped.to_value()));
        Value::Map(map)
    }
}

impl Deserialize for BatchSearchItem {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let map = value
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected object for BatchSearchItem"))?;
        Ok(BatchSearchItem {
            ok: Deserialize::from_value(field_or_null(map, "ok"))?,
            error: Deserialize::from_value(field_or_null(map, "error"))?,
            deduped: Deserialize::from_value(field_or_null(map, "deduped")).unwrap_or(false),
        })
    }
}

/// A `POST /v1/search/batch` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSearchResponse {
    /// Per-member results, in request order.
    pub results: Vec<BatchSearchItem>,
    /// Distinct (fingerprint, parameters) groups the batch resolved.
    pub unique_solves: usize,
    /// Members answered by another member's group (batch-level dedup).
    pub deduped: usize,
}

/// One server-sent event of a streaming `POST /v1/search?stream=1` response.
///
/// Incumbent events arrive while the search runs; exactly one terminal event
/// ([`StreamEvent::Result`] or [`StreamEvent::Error`]) ends the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// The search found an improving schedule: `value` upper-bounds the
    /// period of the best repetend found so far.
    Incumbent {
        /// Makespan of the improving repetend solve (an upper bound on the
        /// final period).
        value: u64,
        /// Milliseconds since the search started.
        elapsed_ms: u64,
    },
    /// Terminal: the completed search response.
    Result(SearchResponse),
    /// Terminal: the search failed with the given HTTP status and error.
    Error {
        /// The HTTP status the non-streaming endpoint would have returned.
        status: u16,
        /// The error body.
        body: ErrorBody,
    },
}

impl Serialize for StreamEvent {
    fn to_value(&self) -> Value {
        match self {
            StreamEvent::Incumbent { value, elapsed_ms } => Value::Map(vec![
                ("event".into(), Value::Str("incumbent".into())),
                ("value".into(), value.to_value()),
                ("elapsed_ms".into(), elapsed_ms.to_value()),
            ]),
            StreamEvent::Result(response) => Value::Map(vec![
                ("event".into(), Value::Str("result".into())),
                ("response".into(), response.to_value()),
            ]),
            StreamEvent::Error { status, body } => Value::Map(vec![
                ("event".into(), Value::Str("error".into())),
                ("status".into(), status.to_value()),
                ("body".into(), body.to_value()),
            ]),
        }
    }
}

impl Deserialize for StreamEvent {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let map = value
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected object for StreamEvent"))?;
        let event = String::from_value(field(map, "event")?)?;
        match event.as_str() {
            "incumbent" => Ok(StreamEvent::Incumbent {
                value: Deserialize::from_value(field(map, "value")?)?,
                elapsed_ms: Deserialize::from_value(field(map, "elapsed_ms")?)?,
            }),
            "result" => Ok(StreamEvent::Result(SearchResponse::from_value(field(
                map, "response",
            )?)?)),
            "error" => Ok(StreamEvent::Error {
                status: Deserialize::from_value(field(map, "status")?)?,
                body: ErrorBody::from_value(field(map, "body")?)?,
            }),
            other => Err(SerdeError::custom(format!(
                "unknown stream event `{other}`"
            ))),
        }
    }
}

/// One row of the `GET /v1/cache` listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntryInfo {
    /// Canonical fingerprint of the cached placement.
    pub fingerprint: Fingerprint,
    /// Micro-batches the cached schedule covers.
    pub num_micro_batches: usize,
    /// `NR` cap the search ran with.
    pub max_repetend_micro_batches: usize,
    /// Winning repetend period.
    pub period: u64,
    /// Steady-state bubble rate.
    pub bubble_rate: f64,
    /// Devices of the placement.
    pub num_devices: usize,
    /// Blocks per micro-batch.
    pub num_blocks: usize,
    /// Times this entry was served from the cache.
    pub hits: u64,
    /// Wall-clock milliseconds the original search took.
    pub search_millis: u64,
}

/// One cache entry as it crosses the wire between daemons (and as the
/// inspect endpoint serves it): a [`CachedSearch`] whose canonical placement
/// is **optional** and omitted from the JSON entirely when absent.
///
/// Since the exact canonical labeling landed, fingerprint equality is trusted
/// across the cache tiers, so `GET /v1/cache/{fp}` responses (remote cache
/// hits) no longer ship the canonical placement at all — the fetching daemon
/// already holds its own canonicalization of the same fingerprint.
/// Replication `PUT`s and warm-up exports still include the placement: the
/// accepting daemon always re-canonicalizes it and rejects any entry whose
/// placement does not hash back to the claimed fingerprint (the only defence
/// against a consistent but mislabeled peer payload).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSearchEntry {
    /// Canonical fingerprint of the placement.
    pub fingerprint: Fingerprint,
    /// Parameters the search ran with.
    pub params: CacheParams,
    /// The canonical placement; `None` on the slim remote-hit path.
    pub canonical_placement: Option<PlacementSpec>,
    /// The composed schedule, in canonical labeling.
    pub schedule: Schedule,
    /// Winning repetend period `t_R`.
    pub period: u64,
    /// `NR` of the winning repetend.
    pub repetend_micro_batches: usize,
    /// Steady-state bubble rate of the repetend.
    pub bubble_rate: f64,
    /// Simulated per-device utilization, in canonical labeling.
    pub utilization: UtilizationSummary,
    /// Aggregate solver effort of the original search.
    pub solver: SolverTotals,
    /// Wall-clock milliseconds the search took.
    pub search_millis: u64,
}

impl WireSearchEntry {
    /// The slim form: everything but the canonical placement. What remote
    /// cache hits ship.
    #[must_use]
    pub fn slim(entry: &CachedSearch) -> Self {
        let mut wire = Self::full(entry);
        wire.canonical_placement = None;
        wire
    }

    /// The full form, placement included. What replication and warm-up
    /// exports ship so the receiver can re-canonicalize before adopting.
    #[must_use]
    pub fn full(entry: &CachedSearch) -> Self {
        WireSearchEntry {
            fingerprint: entry.fingerprint,
            params: entry.params,
            canonical_placement: Some(entry.canonical_placement.clone()),
            schedule: entry.schedule.clone(),
            period: entry.period,
            repetend_micro_batches: entry.repetend_micro_batches,
            bubble_rate: entry.bubble_rate,
            utilization: entry.utilization.clone(),
            solver: entry.solver,
            search_millis: entry.search_millis,
        }
    }

    /// Rebuilds a local cache entry, supplying the canonical placement the
    /// wire omitted (the receiver's own canonicalization on the trusted
    /// remote-hit path, or the shipped one on the replication path).
    #[must_use]
    pub fn into_cached(self, canonical_placement: PlacementSpec) -> CachedSearch {
        CachedSearch {
            fingerprint: self.fingerprint,
            params: self.params,
            canonical_placement,
            schedule: self.schedule,
            period: self.period,
            repetend_micro_batches: self.repetend_micro_batches,
            bubble_rate: self.bubble_rate,
            utilization: self.utilization,
            solver: self.solver,
            search_millis: self.search_millis,
        }
    }
}

impl Serialize for WireSearchEntry {
    fn to_value(&self) -> Value {
        let mut map: Vec<(String, Value)> = vec![
            ("fingerprint".into(), self.fingerprint.to_value()),
            ("params".into(), self.params.to_value()),
        ];
        if let Some(placement) = &self.canonical_placement {
            map.push(("canonical_placement".into(), placement.to_value()));
        }
        map.extend([
            ("schedule".into(), self.schedule.to_value()),
            ("period".into(), self.period.to_value()),
            (
                "repetend_micro_batches".into(),
                self.repetend_micro_batches.to_value(),
            ),
            ("bubble_rate".into(), self.bubble_rate.to_value()),
            ("utilization".into(), self.utilization.to_value()),
            ("solver".into(), self.solver.to_value()),
            ("search_millis".into(), self.search_millis.to_value()),
        ]);
        Value::Map(map)
    }
}

impl Deserialize for WireSearchEntry {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let map = value
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected object for WireSearchEntry"))?;
        Ok(WireSearchEntry {
            fingerprint: Fingerprint::from_value(field(map, "fingerprint")?)?,
            params: CacheParams::from_value(field(map, "params")?)?,
            canonical_placement: Deserialize::from_value(field_or_null(
                map,
                "canonical_placement",
            ))?,
            schedule: Schedule::from_value(field(map, "schedule")?)?,
            period: Deserialize::from_value(field(map, "period")?)?,
            repetend_micro_batches: Deserialize::from_value(field(map, "repetend_micro_batches")?)?,
            bubble_rate: Deserialize::from_value(field(map, "bubble_rate")?)?,
            utilization: UtilizationSummary::from_value(field(map, "utilization")?)?,
            solver: SolverTotals::from_value(field(map, "solver")?)?,
            search_millis: Deserialize::from_value(field(map, "search_millis")?)?,
        })
    }
}

/// A `GET /v1/cache/{fingerprint}` response body: every cached entry for the
/// fingerprint (one per parameter combination), in canonical labeling —
/// **without** the canonical placement (trusted-fingerprint slim form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InspectResponse {
    /// The fingerprint that was looked up.
    pub fingerprint: Fingerprint,
    /// Cached entries, most recently used first, in slim wire form.
    pub entries: Vec<WireSearchEntry>,
}

/// The cluster cache-exchange document: every cached entry of one canonical
/// fingerprint, in canonical labeling, with the parameters that distinguish
/// them.
///
/// This is the wire format of the **internal** cluster endpoints: the body a
/// non-owner daemon `PUT`s to `/v1/cache/{fp}` when replicating a locally
/// solved entry to its ring owner (full entries, placement included), the
/// shape a remote-fetching daemon parses back from `GET /v1/cache/{fp}`
/// (slim entries — the public inspect response serializes to exactly this
/// layout), and the element type of the warm-up export
/// (`GET /v1/cluster/export/{node}` returns a JSON array of these, one per
/// fingerprint, full entries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheExchange {
    /// Canonical fingerprint every entry below belongs to.
    pub fingerprint: Fingerprint,
    /// The entries (one per parameter combination), in canonical labeling.
    pub entries: Vec<WireSearchEntry>,
}

/// Acknowledgement body of `PUT /v1/cache/{fp}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationAck {
    /// Entries accepted into the local cache.
    pub accepted: usize,
    /// Entries rejected by validation.
    pub rejected: usize,
}

/// One peer row of the `GET /v1/cluster` status document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerStatusInfo {
    /// The peer's ring identity.
    pub node_id: String,
    /// The peer's HTTP address.
    pub addr: String,
    /// `true` when the last contact (probe or cluster call) succeeded.
    pub healthy: bool,
    /// `true` while the peer's circuit breaker rejects calls.
    pub circuit_open: bool,
    /// Consecutive failed contacts.
    pub consecutive_failures: u64,
    /// The most recent failure, if the peer is unhealthy.
    pub last_error: Option<String>,
    /// Estimated peer clock minus local clock in milliseconds, from the
    /// latest health probe's RTT midpoint; `None` before the first
    /// successful probe. Trace assembly shifts remote spans by this.
    pub clock_offset_ms: Option<i64>,
}

/// Ring-ownership lookup embedded in `GET /v1/cluster?fp=HEX`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnerInfo {
    /// The fingerprint that was looked up.
    pub fingerprint: Fingerprint,
    /// `true` when the answering daemon is the owner.
    pub is_local: bool,
    /// The owning node's id.
    pub node: String,
}

/// The `GET /v1/cluster` response body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterStatusResponse {
    /// The answering daemon's ring identity.
    pub node_id: String,
    /// Virtual nodes per member on the consistent-hash ring.
    pub vnodes: usize,
    /// Ring membership (this node plus every peer), sorted.
    pub nodes: Vec<String>,
    /// Peer health, in `--peer` order.
    pub peers: Vec<PeerStatusInfo>,
    /// Ownership of the fingerprint passed as `?fp=HEX`, when present.
    pub owner: Option<OwnerInfo>,
}

/// One per-stage timing row of a flight-recorder entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimingInfo {
    /// Stage name (see the span taxonomy in `docs/ARCHITECTURE.md`).
    pub name: String,
    /// Wall-clock microseconds spent in the stage.
    pub micros: u64,
}

/// One completed request in the `GET /v1/debug/requests` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightRecordInfo {
    /// The request's trace ID (32 lowercase hex characters).
    pub trace_id: String,
    /// HTTP method, or `"CALL"` for in-process searches.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// Unix milliseconds when the request started.
    pub start_unix_ms: u64,
    /// Total wall-clock microseconds.
    pub total_micros: u64,
    /// Per-stage breakdown, in execution order.
    pub stages: Vec<StageTimingInfo>,
}

/// The `GET /v1/debug/requests` response body: the flight recorder's two
/// bounded views.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DebugRequestsResponse {
    /// Ring-buffer capacity of the recent view.
    pub capacity: u64,
    /// The last requests, newest first.
    pub recent: Vec<FlightRecordInfo>,
    /// The slowest requests since startup, slowest first.
    pub slowest: Vec<FlightRecordInfo>,
}

/// One in-flight request in the `GET /v1/debug/inflight` response.
///
/// Solver progress fields (`nodes`, `incumbent`, …) are relaxed-atomic
/// snapshots of the request's live progress board; they read as zero while a
/// request is still queued or waiting on the cache tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct InflightInfo {
    /// The request's trace ID.
    pub trace_id: String,
    /// HTTP method, or `"CALL"` for in-process searches.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Peer address of the client connection, when known.
    pub peer: Option<String>,
    /// The pipeline stage the request is currently in (`queued`,
    /// `cache_lookup`, `singleflight_wait`, `remote_fetch`, `solve`,
    /// `translate`).
    pub stage: String,
    /// Milliseconds since the request was admitted.
    pub elapsed_ms: u64,
    /// Milliseconds until the request's deadline, when it has one. Zero when
    /// the deadline has already passed.
    pub deadline_remaining_ms: Option<u64>,
    /// Search nodes explored so far by this request's solves.
    pub nodes: u64,
    /// Best makespan proved so far, when any incumbent exists.
    pub incumbent: Option<u64>,
    /// Incumbent improvements so far.
    pub incumbents: u64,
    /// Work-stealing steals so far.
    pub steals: u64,
    /// Current DFS depth of each active solver worker.
    pub worker_depths: Vec<u64>,
}

impl Serialize for InflightInfo {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("trace_id".into(), self.trace_id.to_value()),
            ("method".into(), self.method.to_value()),
            ("path".into(), self.path.to_value()),
            ("peer".into(), self.peer.to_value()),
            ("stage".into(), self.stage.to_value()),
            ("elapsed_ms".into(), self.elapsed_ms.to_value()),
            (
                "deadline_remaining_ms".into(),
                self.deadline_remaining_ms.to_value(),
            ),
            ("nodes".into(), self.nodes.to_value()),
            ("incumbent".into(), self.incumbent.to_value()),
            ("incumbents".into(), self.incumbents.to_value()),
            ("steals".into(), self.steals.to_value()),
            ("worker_depths".into(), self.worker_depths.to_value()),
        ])
    }
}

impl Deserialize for InflightInfo {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        let map = value
            .as_map()
            .ok_or_else(|| SerdeError::custom("expected object for InflightInfo"))?;
        Ok(InflightInfo {
            trace_id: Deserialize::from_value(field(map, "trace_id")?)?,
            method: Deserialize::from_value(field(map, "method")?)?,
            path: Deserialize::from_value(field(map, "path")?)?,
            peer: Deserialize::from_value(field_or_null(map, "peer"))?,
            stage: Deserialize::from_value(field(map, "stage")?)?,
            elapsed_ms: Deserialize::from_value(field(map, "elapsed_ms")?)?,
            deadline_remaining_ms: Deserialize::from_value(field_or_null(
                map,
                "deadline_remaining_ms",
            ))?,
            nodes: Deserialize::from_value(field(map, "nodes")?)?,
            incumbent: Deserialize::from_value(field_or_null(map, "incumbent"))?,
            incumbents: Deserialize::from_value(field(map, "incumbents")?)?,
            steals: Deserialize::from_value(field(map, "steals")?)?,
            worker_depths: Deserialize::from_value(field(map, "worker_depths")?)?,
        })
    }
}

/// The `GET /v1/debug/inflight` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InflightResponse {
    /// Every admitted-but-unanswered request, oldest first.
    pub inflight: Vec<InflightInfo>,
}

/// One sampled series of the `GET /v1/debug/timeseries` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesWindowInfo {
    /// Series name (`requests_per_s`, `solver_nodes_per_s`, …).
    pub name: String,
    /// The raw samples of the window, oldest first.
    pub samples: Vec<f64>,
    /// Most recent sample.
    pub last: f64,
    /// Window minimum.
    pub min: f64,
    /// Window maximum.
    pub max: f64,
    /// Window mean.
    pub avg: f64,
    /// Window median (nearest-rank).
    pub p50: f64,
    /// Window 95th percentile (nearest-rank).
    pub p95: f64,
}

/// The `GET /v1/debug/timeseries` response body: a window over the daemon's
/// sampled counters and gauges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeseriesResponse {
    /// Milliseconds between samples.
    pub interval_ms: u64,
    /// Samples actually returned per series (the window may exceed history).
    pub ticks: u64,
    /// Unix milliseconds of the newest sample (0 before the first tick).
    pub latest_unix_ms: u64,
    /// The sampled series.
    pub series: Vec<SeriesWindowInfo>,
}

/// One span of an assembled trace timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpanInfo {
    /// Node ID of the daemon that recorded the span.
    pub node: String,
    /// Stage name, or `"request"` for a whole-request envelope span.
    pub name: String,
    /// Span start in the *requesting* daemon's clock, Unix milliseconds
    /// (remote spans are shifted by the estimated peer clock offset).
    pub start_unix_ms: u64,
    /// Wall-clock microseconds the span lasted.
    pub micros: u64,
    /// HTTP method of the request the span belongs to.
    pub method: String,
    /// Path of the request the span belongs to.
    pub path: String,
    /// Status of the request the span belongs to.
    pub status: u16,
}

/// The `GET /v1/debug/trace/{trace_id}` response body: one merged multi-node
/// span timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceAssemblyResponse {
    /// The trace that was assembled.
    pub trace_id: String,
    /// Node IDs that contributed spans, requester first.
    pub nodes: Vec<String>,
    /// Peers that could not be queried (unhealthy or failed), if any.
    pub unreachable: Vec<String>,
    /// All spans, sorted by adjusted start time.
    pub spans: Vec<TraceSpanInfo>,
}

/// The `GET`/`PUT /v1/debug/loglevel` body: the daemon's live log level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogLevelBody {
    /// Level name: `error`, `warn`, `info`, `debug` or `trace`.
    pub level: String,
}

/// An error response body (any non-2xx status).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Machine-readable error kind (`bad_request`, `timeout`, `search`,
    /// `unavailable`, `not_found`).
    pub kind: String,
    /// Human-readable description.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tessel_core::ir::BlockKind;

    fn v2() -> PlacementSpec {
        let mut b = PlacementSpec::builder("v2", 2);
        let f0 = b
            .add_block("f0", BlockKind::Forward, [0], 1, 1, [])
            .unwrap();
        b.add_block("f1", BlockKind::Forward, [1], 1, 1, [f0])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn request_round_trips_and_tolerates_missing_fields() {
        let full = SearchRequest {
            placement: v2(),
            num_micro_batches: Some(6),
            max_repetend_micro_batches: Some(3),
            deadline_ms: Some(250),
            solver_threads: Some(4),
            priority: Some(-2),
        };
        let json = serde_json::to_string(&full).unwrap();
        let back: SearchRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, full);

        // Only the placement is mandatory.
        let minimal = format!(
            "{{\"placement\": {}}}",
            serde_json::to_string(&v2()).unwrap()
        );
        let parsed: SearchRequest = serde_json::from_str(&minimal).unwrap();
        assert_eq!(parsed.placement, v2());
        assert_eq!(parsed.num_micro_batches, None);
        assert_eq!(parsed.deadline_ms, None);
        assert_eq!(parsed.solver_threads, None);
        assert_eq!(parsed.priority, None);

        let missing: Result<SearchRequest, _> = serde_json::from_str("{}");
        assert!(missing.is_err());
    }

    #[test]
    fn batch_request_and_response_round_trip() {
        let batch = BatchSearchRequest {
            requests: vec![
                SearchRequest::for_placement(v2()),
                SearchRequest {
                    priority: Some(3),
                    deadline_ms: Some(100),
                    ..SearchRequest::for_placement(v2())
                },
            ],
        };
        let json = serde_json::to_string(&batch).unwrap();
        let back: BatchSearchRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);

        let response = BatchSearchResponse {
            results: vec![
                BatchSearchItem {
                    ok: None,
                    error: Some(ErrorBody {
                        kind: "bad_request".into(),
                        error: "nope".into(),
                    }),
                    deduped: false,
                },
                BatchSearchItem {
                    ok: None,
                    error: None,
                    deduped: true,
                },
            ],
            unique_solves: 1,
            deduped: 1,
        };
        let json = serde_json::to_string(&response).unwrap();
        let back: BatchSearchResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn stream_events_round_trip() {
        let incumbent = StreamEvent::Incumbent {
            value: 17,
            elapsed_ms: 4,
        };
        let json = serde_json::to_string(&incumbent).unwrap();
        assert!(
            json.contains("\"event\": \"incumbent\"") || json.contains("\"event\":\"incumbent\"")
        );
        let back: StreamEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, incumbent);

        let error = StreamEvent::Error {
            status: 408,
            body: ErrorBody {
                kind: "timeout".into(),
                error: "deadline exceeded".into(),
            },
        };
        let back: StreamEvent =
            serde_json::from_str(&serde_json::to_string(&error).unwrap()).unwrap();
        assert_eq!(back, error);

        let unknown: Result<StreamEvent, _> = serde_json::from_str("{\"event\":\"nope\"}");
        assert!(unknown.is_err());
    }

    #[test]
    fn observability_bodies_round_trip() {
        let inflight = InflightResponse {
            inflight: vec![
                InflightInfo {
                    trace_id: "f".repeat(32),
                    method: "POST".into(),
                    path: "/v1/search".into(),
                    peer: Some("127.0.0.1:50000".into()),
                    stage: "solve".into(),
                    elapsed_ms: 42,
                    deadline_remaining_ms: Some(958),
                    nodes: 12_345,
                    incumbent: Some(17),
                    incumbents: 3,
                    steals: 2,
                    worker_depths: vec![4, 9],
                },
                InflightInfo {
                    trace_id: "0".repeat(32),
                    method: "CALL".into(),
                    path: "/v1/search".into(),
                    peer: None,
                    stage: "queued".into(),
                    elapsed_ms: 1,
                    deadline_remaining_ms: None,
                    nodes: 0,
                    incumbent: None,
                    incumbents: 0,
                    steals: 0,
                    worker_depths: vec![],
                },
            ],
        };
        let json = serde_json::to_string(&inflight).unwrap();
        let back: InflightResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inflight);

        let timeseries = TimeseriesResponse {
            interval_ms: 1000,
            ticks: 2,
            latest_unix_ms: 1_700_000_002_000,
            series: vec![SeriesWindowInfo {
                name: "requests_per_s".into(),
                samples: vec![1.0, 3.0],
                last: 3.0,
                min: 1.0,
                max: 3.0,
                avg: 2.0,
                p50: 1.0,
                p95: 3.0,
            }],
        };
        let back: TimeseriesResponse =
            serde_json::from_str(&serde_json::to_string(&timeseries).unwrap()).unwrap();
        assert_eq!(back, timeseries);

        let trace = TraceAssemblyResponse {
            trace_id: "a".repeat(32),
            nodes: vec!["alpha".into(), "beta".into()],
            unreachable: vec!["gamma".into()],
            spans: vec![TraceSpanInfo {
                node: "alpha".into(),
                name: "cache_lookup".into(),
                start_unix_ms: 1_700_000_000_000,
                micros: 55,
                method: "POST".into(),
                path: "/v1/search".into(),
                status: 200,
            }],
        };
        let back: TraceAssemblyResponse =
            serde_json::from_str(&serde_json::to_string(&trace).unwrap()).unwrap();
        assert_eq!(back, trace);

        let level = LogLevelBody {
            level: "debug".into(),
        };
        let back: LogLevelBody =
            serde_json::from_str(&serde_json::to_string(&level).unwrap()).unwrap();
        assert_eq!(back, level);
    }
}
