//! Observability substrate for the Tessel workspace.
//!
//! The build environment has no registry access, so — like the
//! `crates/compat/*` substitutes — this crate hand-rolls the narrow slice of
//! observability the daemon needs, with zero dependencies:
//!
//! * **Structured, leveled logging** ([`log`], [`error`]/[`warn`]/[`info`]/
//!   [`debug`]): one line per event on stderr, in logfmt-style text or JSON
//!   ([`LogFormat`]), filtered by a process-wide [`Level`]. Every event
//!   emitted while a request context is active automatically carries that
//!   request's `trace_id`, so grepping one ID reconstructs one request's
//!   whole story — including what it triggered on *other* daemons.
//! * **Request-scoped trace IDs** ([`TraceId`]): 32 lowercase hex
//!   characters, minted per request or adopted from a validated
//!   `X-Tessel-Trace-Id` header so a trace spans the cluster tier.
//! * **Stage timing** ([`begin_request`], [`stage`], [`record_stage`],
//!   [`end_request`]): a thread-local span collector the request pipeline
//!   feeds per-stage wall-clock into; the transport harvests it to build
//!   flight-recorder entries, `Server-Timing` headers and per-stage
//!   histograms. All recording calls are no-ops when no request context is
//!   active, so library callers pay one thread-local read.
//! * **Log-bucketed histograms** ([`Histogram`]): atomic fixed-bucket
//!   duration histograms on a 1–2.5–5 ladder from 100µs to 60s, rendered as
//!   real Prometheus `_bucket`/`_sum`/`_count` series
//!   ([`render_prometheus_histogram`]).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::fmt;
use std::hash::{BuildHasher, Hasher};
use std::io::Write;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------------
// Levels and formats
// ---------------------------------------------------------------------------

/// Log severity, most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The daemon cannot do what was asked of it.
    Error = 0,
    /// Something degraded (a peer down, a journal unwritable) but handled.
    Warn = 1,
    /// Request-level lifecycle events; the default.
    Info = 2,
    /// Per-stage detail useful when chasing one request.
    Debug = 3,
    /// Everything, including hot-path chatter.
    Trace = 4,
}

impl Level {
    /// The lowercase name used on the wire and in `--log-level`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(raw: u8) -> Level {
        match raw {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            4 => Level::Trace,
            _ => Level::Info,
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Output encoding of log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `ts=… level=… target=… msg="…" key="value"` — human-greppable.
    #[default]
    Text,
    /// One JSON object per line — machine-parseable.
    Json,
}

impl FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format `{other}` (expected text|json)")),
        }
    }
}

/// Process-wide minimum level (a [`Level`] discriminant).
static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
/// Process-wide format (0 = text, 1 = JSON).
static FORMAT: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide log level and format. Callable any number of times,
/// from any thread; later events use the latest configuration.
pub fn init(level: Level, format: LogFormat) {
    LEVEL.store(level as u8, Ordering::Relaxed);
    FORMAT.store(
        match format {
            LogFormat::Text => 0,
            LogFormat::Json => 1,
        },
        Ordering::Relaxed,
    );
}

/// Changes only the process-wide log level (the format is untouched) and
/// returns the level that was active before the change — the runtime
/// log-level endpoint logs the switch at the *old* level so the change
/// itself is visible in the stream it is leaving behind.
pub fn set_level(level: Level) -> Level {
    Level::from_u8(LEVEL.swap(level as u8, Ordering::Relaxed))
}

/// The current process-wide log level.
#[must_use]
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// `true` when events at `at` currently pass the level filter.
#[must_use]
pub fn enabled(at: Level) -> bool {
    at <= level()
}

// ---------------------------------------------------------------------------
// Event emission
// ---------------------------------------------------------------------------

/// Emits one structured event to stderr (if `level` passes the filter).
///
/// `fields` are appended after the message; when a request context is active
/// on this thread its `trace_id` is appended automatically unless `fields`
/// already carries one.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, &str)]) {
    if !enabled(level) {
        return;
    }
    let trace = if fields.iter().any(|(k, _)| *k == "trace_id") {
        None
    } else {
        current_trace_id()
    };
    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0);
    let json = FORMAT.load(Ordering::Relaxed) == 1;
    let mut line = String::with_capacity(128);
    if json {
        line.push_str(&format!(
            "{{\"ts\":{ts:.3},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            level.as_str(),
            json_escape(target),
            json_escape(message)
        ));
        for (key, value) in fields {
            line.push_str(&format!(
                ",\"{}\":\"{}\"",
                json_escape(key),
                json_escape(value)
            ));
        }
        if let Some(trace) = &trace {
            line.push_str(&format!(",\"trace_id\":\"{trace}\""));
        }
        line.push('}');
    } else {
        line.push_str(&format!(
            "ts={ts:.3} level={} target={} msg=\"{}\"",
            level.as_str(),
            target,
            text_escape(message)
        ));
        for (key, value) in fields {
            line.push_str(&format!(" {key}=\"{}\"", text_escape(value)));
        }
        if let Some(trace) = &trace {
            line.push_str(&format!(" trace_id={trace}"));
        }
    }
    line.push('\n');
    // One write per line: concurrent threads interleave whole lines, never
    // fragments.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, message: &str, fields: &[(&str, &str)]) {
    log(Level::Error, target, message, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, message: &str, fields: &[(&str, &str)]) {
    log(Level::Warn, target, message, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, message: &str, fields: &[(&str, &str)]) {
    log(Level::Info, target, message, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, message: &str, fields: &[(&str, &str)]) {
    log(Level::Debug, target, message, fields);
}

fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn text_escape(raw: &str) -> String {
    raw.chars()
        .map(|c| match c {
            '"' => '\'',
            '\n' | '\r' | '\t' => ' ',
            c => c,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Trace IDs
// ---------------------------------------------------------------------------

/// A request-scoped trace identifier: exactly 32 lowercase hex characters
/// (128 bits), propagated across the cluster via `X-Tessel-Trace-Id`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId([u8; 32]);

/// Distinguishes the two 64-bit halves mixed into one generated ID.
const TRACE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl TraceId {
    /// Mints a fresh, effectively unique ID: 128 bits drawn from the
    /// process's `RandomState` keys (OS-seeded), the wall clock and a global
    /// counter, whitened through a hash round.
    #[must_use]
    pub fn generate() -> Self {
        let count = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = Self::entropy(count);
        let lo = Self::entropy(count ^ TRACE_SALT);
        let mut hex = [0u8; 32];
        for (i, byte) in hi.to_be_bytes().iter().chain(&lo.to_be_bytes()).enumerate() {
            const DIGITS: &[u8; 16] = b"0123456789abcdef";
            hex[2 * i] = DIGITS[(byte >> 4) as usize];
            hex[2 * i + 1] = DIGITS[(byte & 0xf) as usize];
        }
        TraceId(hex)
    }

    fn entropy(salt: u64) -> u64 {
        let mut hasher = RandomState::new().build_hasher();
        hasher.write_u64(salt);
        hasher.write_u128(
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
        );
        hasher.finish()
    }

    /// Parses a trace ID, accepting **only** the canonical form: exactly 32
    /// ASCII characters, each `0-9` or lowercase `a-f`. Anything else —
    /// wrong length, uppercase, separators, control bytes — returns `None`;
    /// callers mint a fresh ID instead of reflecting attacker-controlled
    /// header bytes into logs and responses.
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let bytes = raw.as_bytes();
        if bytes.len() != 32 {
            return None;
        }
        let mut hex = [0u8; 32];
        for (slot, &b) in hex.iter_mut().zip(bytes) {
            if !(b.is_ascii_digit() || (b'a'..=b'f').contains(&b)) {
                return None;
            }
            *slot = b;
        }
        Some(TraceId(hex))
    }

    /// The 32-character lowercase hex form.
    #[must_use]
    pub fn as_str(&self) -> &str {
        // Construction only ever stores ASCII hex digits.
        std::str::from_utf8(&self.0).unwrap_or("00000000000000000000000000000000")
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceId({})", self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Request context and stage timing
// ---------------------------------------------------------------------------

struct ActiveRequest {
    trace_id: TraceId,
    stages: Vec<(&'static str, u64)>,
}

thread_local! {
    static CURRENT: RefCell<Option<ActiveRequest>> = const { RefCell::new(None) };
}

/// A completed request context: the trace ID plus every recorded stage, in
/// first-recorded order (repeated stages merged by summing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedRequest {
    /// The request's trace ID.
    pub trace_id: TraceId,
    /// `(stage name, wall-clock microseconds)` rows.
    pub stages: Vec<(&'static str, u64)>,
}

impl FinishedRequest {
    /// Microseconds recorded for `name` (0 when the stage never ran).
    #[must_use]
    pub fn stage_micros(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .find(|(stage, _)| *stage == name)
            .map_or(0, |(_, micros)| *micros)
    }
}

/// Opens a request context on this thread. Stages recorded until the matching
/// [`end_request`] accumulate under `trace_id`; log events carry it
/// automatically. Re-entrant calls replace the previous context (the
/// transport is the one caller and never nests).
pub fn begin_request(trace_id: TraceId) {
    CURRENT.with(|current| {
        *current.borrow_mut() = Some(ActiveRequest {
            trace_id,
            stages: Vec::with_capacity(8),
        });
    });
}

/// The trace ID of the request context active on this thread, if any.
#[must_use]
pub fn current_trace_id() -> Option<TraceId> {
    CURRENT.with(|current| current.borrow().as_ref().map(|active| active.trace_id))
}

/// Adds `micros` to stage `name` of the active request context (no-op when
/// none is active). Repeated recordings of one stage sum.
pub fn record_stage(name: &'static str, micros: u64) {
    CURRENT.with(|current| {
        if let Some(active) = current.borrow_mut().as_mut() {
            match active.stages.iter_mut().find(|(stage, _)| *stage == name) {
                Some((_, total)) => *total += micros,
                None => active.stages.push((name, micros)),
            }
        }
    });
}

/// Runs `f`, recording its wall-clock as stage `name` of the active request
/// context (still runs `f`, un-timed in effect, when none is active).
pub fn stage<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let started = Instant::now();
    let result = f();
    record_stage(name, started.elapsed().as_micros() as u64);
    result
}

/// Closes the request context on this thread and returns what it collected
/// (`None` when none was active).
pub fn end_request() -> Option<FinishedRequest> {
    CURRENT.with(|current| {
        current.borrow_mut().take().map(|active| FinishedRequest {
            trace_id: active.trace_id,
            stages: active.stages,
        })
    })
}

// ---------------------------------------------------------------------------
// Log-bucketed histograms
// ---------------------------------------------------------------------------

/// Upper bounds (microseconds) of the duration histogram buckets: a
/// 1–2.5–5 ladder from 100µs to 60s. Observations above the last bound land
/// in the implicit `+Inf` bucket.
pub const DURATION_BUCKET_BOUNDS_MICROS: [u64; 18] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 60_000_000,
];

/// Bucket count including the `+Inf` overflow bucket.
const BUCKETS: usize = DURATION_BUCKET_BOUNDS_MICROS.len() + 1;

/// A fixed-bucket duration histogram with atomic counters, shaped for
/// Prometheus exposition: per-bucket counts on the
/// [`DURATION_BUCKET_BOUNDS_MICROS`] ladder plus a running sum and count.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `micros` microseconds.
    pub fn observe_micros(&self, micros: u64) {
        let index = DURATION_BUCKET_BOUNDS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded observations, in seconds.
    #[must_use]
    pub fn sum_seconds(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Cumulative bucket counts (`le` semantics), one per bound plus the
    /// final `+Inf` entry.
    #[must_use]
    pub fn cumulative_counts(&self) -> [u64; BUCKETS] {
        let mut counts = [0u64; BUCKETS];
        let mut running = 0u64;
        for (slot, bucket) in counts.iter_mut().zip(&self.buckets) {
            running += bucket.load(Ordering::Relaxed);
            *slot = running;
        }
        counts
    }
}

/// Appends one Prometheus histogram series to `out`: the
/// `name_bucket{…le="…"}` ladder, then `name_sum` and `name_count`.
///
/// `labels` is either empty or a `key="value"` list **without** the trailing
/// comma (e.g. `endpoint="/v1/search"`); the `le` label is appended after it.
/// The caller emits the family's `# HELP`/`# TYPE name histogram` header once
/// before the first series.
pub fn render_prometheus_histogram(
    out: &mut String,
    name: &str,
    labels: &str,
    histogram: &Histogram,
) {
    let cumulative = histogram.cumulative_counts();
    let sep = if labels.is_empty() { "" } else { "," };
    for (bound, count) in DURATION_BUCKET_BOUNDS_MICROS.iter().zip(&cumulative) {
        let le = *bound as f64 / 1e6;
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {count}\n"
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n",
        cumulative[BUCKETS - 1]
    ));
    let suffix_labels = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    out.push_str(&format!(
        "{name}_sum{suffix_labels} {}\n",
        histogram.sum_seconds()
    ));
    out.push_str(&format!(
        "{name}_count{suffix_labels} {}\n",
        cumulative[BUCKETS - 1]
    ));
}

// ---------------------------------------------------------------------------
// Time series rings
// ---------------------------------------------------------------------------

/// A fixed-capacity ring of per-tick samples for a set of named series.
///
/// The live-observability sampler derives one gauge value per series per tick
/// (rates from cumulative-counter deltas, plain gauges copied as-is) and
/// pushes them here; `GET /v1/debug/timeseries` reads windows back out. The
/// memory bound is `capacity × (series + 1)` `f64`/`u64` slots, fixed at
/// construction — an idle daemon and one under load hold the same ring.
///
/// Writers and readers meet on a plain mutex: samples arrive on one
/// background ticker (per second, typically) and reads come from debug
/// endpoints, so this is nowhere near any hot path.
#[derive(Debug)]
pub struct TimeSeries {
    interval_ms: u64,
    capacity: usize,
    inner: std::sync::Mutex<TimeSeriesInner>,
}

#[derive(Debug)]
struct TimeSeriesInner {
    /// Total ticks ever pushed (not capped by capacity).
    ticks: u64,
    /// Unix-milliseconds stamp per retained tick, oldest first.
    stamps: std::collections::VecDeque<u64>,
    /// One sample ring per series, index-aligned with `names`.
    rings: Vec<std::collections::VecDeque<f64>>,
    names: Vec<String>,
}

/// One series' slice of a [`TimeSeries::window`] read: the retained samples
/// (oldest first) plus summary statistics over them.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesWindow {
    /// Series name as declared at construction.
    pub name: String,
    /// Samples inside the window, oldest first.
    pub samples: Vec<f64>,
    /// Most recent sample (0.0 when the window is empty).
    pub last: f64,
    /// Minimum over the window (0.0 when empty).
    pub min: f64,
    /// Maximum over the window (0.0 when empty).
    pub max: f64,
    /// Mean over the window (0.0 when empty).
    pub avg: f64,
    /// 50th percentile over the window (0.0 when empty).
    pub p50: f64,
    /// 95th percentile over the window (0.0 when empty).
    pub p95: f64,
}

/// A consistent multi-series read of the ring (see [`TimeSeries::window`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesWindow {
    /// Sampling cadence the ring was constructed with.
    pub interval_ms: u64,
    /// Ticks actually inside this window (≤ the requested count).
    pub ticks: usize,
    /// Unix-milliseconds stamp of the newest tick (0 when empty).
    pub latest_unix_ms: u64,
    /// Per-series windows, in declaration order.
    pub series: Vec<SeriesWindow>,
}

impl TimeSeries {
    /// Creates a ring holding `capacity` ticks for the given series names,
    /// sampled every `interval_ms` (recorded for consumers; the ring itself
    /// does not tick — the caller's sampler thread does).
    #[must_use]
    pub fn new(names: &[&str], capacity: usize, interval_ms: u64) -> Self {
        let capacity = capacity.max(1);
        TimeSeries {
            interval_ms,
            capacity,
            inner: std::sync::Mutex::new(TimeSeriesInner {
                ticks: 0,
                stamps: std::collections::VecDeque::with_capacity(capacity),
                rings: names
                    .iter()
                    .map(|_| std::collections::VecDeque::with_capacity(capacity))
                    .collect(),
                names: names.iter().map(|n| (*n).to_string()).collect(),
            }),
        }
    }

    /// The sampling cadence declared at construction.
    #[must_use]
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// Pushes one tick of samples (index-aligned with the constructor's
    /// series names; extra values are ignored, missing ones record 0.0).
    /// `unix_ms` stamps the tick for consumers aligning multiple daemons.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex is poisoned.
    pub fn push(&self, unix_ms: u64, values: &[f64]) {
        let mut inner = self.inner.lock().expect("timeseries lock");
        inner.ticks += 1;
        if inner.stamps.len() == self.capacity {
            inner.stamps.pop_front();
        }
        inner.stamps.push_back(unix_ms);
        for (index, ring) in inner.rings.iter_mut().enumerate() {
            if ring.len() == self.capacity {
                ring.pop_front();
            }
            ring.push_back(values.get(index).copied().unwrap_or(0.0));
        }
    }

    /// Reads the newest `ticks` samples of every series (all retained ticks
    /// when `ticks` exceeds the retention).
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex is poisoned.
    #[must_use]
    pub fn window(&self, ticks: usize) -> TimeSeriesWindow {
        let inner = self.inner.lock().expect("timeseries lock");
        let available = inner.stamps.len();
        let take = ticks.min(available);
        let skip = available - take;
        let series = inner
            .names
            .iter()
            .zip(&inner.rings)
            .map(|(name, ring)| {
                let samples: Vec<f64> = ring.iter().skip(skip).copied().collect();
                let mut sorted = samples.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                // Nearest-rank percentile: the smallest sample with at least
                // q of the window at or below it.
                let pick = |q: f64| -> f64 {
                    if sorted.is_empty() {
                        0.0
                    } else {
                        let rank = (sorted.len() as f64 * q).ceil() as usize;
                        sorted[rank.max(1).min(sorted.len()) - 1]
                    }
                };
                SeriesWindow {
                    name: name.clone(),
                    last: samples.last().copied().unwrap_or(0.0),
                    min: sorted.first().copied().unwrap_or(0.0),
                    max: sorted.last().copied().unwrap_or(0.0),
                    avg: if samples.is_empty() {
                        0.0
                    } else {
                        samples.iter().sum::<f64>() / samples.len() as f64
                    },
                    p50: pick(0.50),
                    p95: pick(0.95),
                    samples,
                }
            })
            .collect();
        TimeSeriesWindow {
            interval_ms: self.interval_ms,
            ticks: take,
            latest_unix_ms: inner.stamps.back().copied().unwrap_or(0),
            series,
        }
    }

    /// Appends the most recent sample of every series to `out` as one
    /// Prometheus gauge family (`tessel_timeseries_last{series="…"}`), so the
    /// live-plane rates are scrapeable alongside the cumulative counters.
    ///
    /// # Panics
    ///
    /// Panics if the internal mutex is poisoned.
    pub fn render_prometheus(&self, out: &mut String) {
        let inner = self.inner.lock().expect("timeseries lock");
        out.push_str(
            "# HELP tessel_timeseries_last Most recent live-plane sample per series.\n\
             # TYPE tessel_timeseries_last gauge\n",
        );
        for (name, ring) in inner.names.iter().zip(&inner.rings) {
            let last = ring.back().copied().unwrap_or(0.0);
            out.push_str(&format!(
                "tessel_timeseries_last{{series=\"{name}\"}} {last}\n"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("info".parse::<Level>().unwrap(), Level::Info);
        assert_eq!("WARN".parse::<Level>().unwrap(), Level::Warn);
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Error < Level::Trace);
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("xml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn trace_ids_are_canonical_and_unique() {
        let a = TraceId::generate();
        let b = TraceId::generate();
        assert_ne!(a, b);
        assert_eq!(a.as_str().len(), 32);
        assert!(a
            .as_str()
            .bytes()
            .all(|c| c.is_ascii_digit() || (b'a'..=b'f').contains(&c)));
        // Round trip.
        assert_eq!(TraceId::parse(a.as_str()), Some(a));
    }

    #[test]
    fn trace_id_parsing_is_strict() {
        assert!(TraceId::parse("0123456789abcdef0123456789abcdef").is_some());
        // Wrong length.
        assert!(TraceId::parse("").is_none());
        assert!(TraceId::parse("abc").is_none());
        assert!(TraceId::parse(&"a".repeat(33)).is_none());
        assert!(TraceId::parse(&"a".repeat(4096)).is_none());
        // Uppercase, non-hex, separators, control bytes.
        assert!(TraceId::parse("0123456789ABCDEF0123456789ABCDEF").is_none());
        assert!(TraceId::parse("0123456789abcdeg0123456789abcdef").is_none());
        assert!(TraceId::parse("01234567-89ab-cdef-0123-456789abcd").is_none());
        assert!(TraceId::parse("0123456789abcde\u{7}0123456789abcdef").is_none());
    }

    #[test]
    fn stages_accumulate_and_merge_per_request() {
        let trace = TraceId::generate();
        begin_request(trace);
        assert_eq!(current_trace_id(), Some(trace));
        record_stage("cache_lookup", 10);
        let value = stage("solve", || 42);
        assert_eq!(value, 42);
        record_stage("cache_lookup", 5);
        let finished = end_request().unwrap();
        assert_eq!(finished.trace_id, trace);
        assert_eq!(finished.stage_micros("cache_lookup"), 15);
        assert_eq!(finished.stage_micros("missing"), 0);
        assert_eq!(finished.stages[0].0, "cache_lookup");
        // The context is gone; further recording is a no-op.
        assert_eq!(current_trace_id(), None);
        record_stage("late", 1);
        assert!(end_request().is_none());
    }

    #[test]
    fn histogram_buckets_and_rendering() {
        let h = Histogram::new();
        h.observe_micros(50); // le=100
        h.observe_micros(100); // le=100 (inclusive)
        h.observe_micros(150_000); // le=250000
        h.observe_micros(120_000_000); // +Inf
        assert_eq!(h.count(), 4);
        let cumulative = h.cumulative_counts();
        assert_eq!(cumulative[0], 2);
        assert_eq!(*cumulative.last().unwrap(), 4);
        assert!((h.sum_seconds() - 120.15015).abs() < 1e-6);

        let mut out = String::new();
        render_prometheus_histogram(&mut out, "tessel_test_seconds", "stage=\"solve\"", &h);
        assert!(out.contains("tessel_test_seconds_bucket{stage=\"solve\",le=\"0.0001\"} 2"));
        assert!(out.contains("tessel_test_seconds_bucket{stage=\"solve\",le=\"+Inf\"} 4"));
        assert!(out.contains("tessel_test_seconds_sum{stage=\"solve\"} "));
        assert!(out.contains("tessel_test_seconds_count{stage=\"solve\"} 4"));

        let mut bare = String::new();
        render_prometheus_histogram(&mut bare, "plain_seconds", "", &h);
        assert!(bare.contains("plain_seconds_bucket{le=\"0.0001\"} 2"));
        assert!(bare.contains("plain_seconds_count 4"));
    }

    #[test]
    fn set_level_returns_the_previous_level() {
        init(Level::Info, LogFormat::Text);
        assert_eq!(set_level(Level::Debug), Level::Info);
        assert_eq!(level(), Level::Debug);
        assert!(enabled(Level::Debug));
        assert_eq!(set_level(Level::Warn), Level::Debug);
        assert!(!enabled(Level::Info));
        set_level(Level::Info);
    }

    #[test]
    fn histogram_routes_sub_minimum_observations_to_the_first_bucket() {
        let h = Histogram::new();
        h.observe_micros(0);
        h.observe_micros(1);
        h.observe_micros(99);
        let cumulative = h.cumulative_counts();
        assert_eq!(cumulative[0], 3, "0, 1 and 99µs all land in le=100µs");
        assert_eq!(*cumulative.last().unwrap(), 3);
        assert_eq!(h.count(), 3);
        assert!((h.sum_seconds() - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn histogram_routes_oversized_observations_to_inf_only() {
        let h = Histogram::new();
        let last_bound = *DURATION_BUCKET_BOUNDS_MICROS.last().unwrap();
        h.observe_micros(last_bound); // inclusive: last finite bucket
        h.observe_micros(last_bound + 1); // first value past the ladder
        h.observe_micros(u64::MAX / 4); // absurd but must not panic
        let cumulative = h.cumulative_counts();
        assert_eq!(
            cumulative[BUCKETS - 2],
            1,
            "only the bound itself is finite"
        );
        assert_eq!(cumulative[BUCKETS - 1], 3);
    }

    #[test]
    fn histogram_concurrent_observe_keeps_sum_and_count_monotone() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        h.observe_micros(50 + (w * 13 + i * 7) % 200_000);
                    }
                })
            })
            .collect();
        // Concurrent reader: every snapshot pair must be monotone — a render
        // never observes count or sum going backwards.
        let mut last_count = 0u64;
        let mut last_sum = 0.0f64;
        for _ in 0..200 {
            let count = h.count();
            let sum = h.sum_seconds();
            assert!(
                count >= last_count,
                "count regressed: {last_count} -> {count}"
            );
            assert!(sum >= last_sum - 1e-9, "sum regressed: {last_sum} -> {sum}");
            last_count = count;
            last_sum = sum;
            std::thread::yield_now();
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(h.count(), 8_000);
        assert_eq!(*h.cumulative_counts().last().unwrap(), 8_000);
    }

    #[test]
    fn timeseries_ring_caps_retention_and_reports_windows() {
        let ts = TimeSeries::new(&["req_rate", "queue_depth"], 4, 1000);
        assert_eq!(ts.interval_ms(), 1000);
        // Empty ring: well-formed zeroed window.
        let empty = ts.window(10);
        assert_eq!(empty.ticks, 0);
        assert_eq!(empty.series.len(), 2);
        assert_eq!(empty.series[0].last, 0.0);
        for tick in 0..6u64 {
            ts.push(1_000 + tick, &[tick as f64, 10.0 - tick as f64]);
        }
        // Capacity 4: ticks 2..=5 retained.
        let window = ts.window(100);
        assert_eq!(window.ticks, 4);
        assert_eq!(window.latest_unix_ms, 1_005);
        assert_eq!(window.series[0].samples, vec![2.0, 3.0, 4.0, 5.0]);
        assert_eq!(window.series[0].last, 5.0);
        assert_eq!(window.series[0].min, 2.0);
        assert_eq!(window.series[0].max, 5.0);
        assert!((window.series[0].avg - 3.5).abs() < 1e-12);
        assert_eq!(window.series[1].samples, vec![8.0, 7.0, 6.0, 5.0]);
        // A narrower window takes only the newest ticks.
        let narrow = ts.window(2);
        assert_eq!(narrow.ticks, 2);
        assert_eq!(narrow.series[0].samples, vec![4.0, 5.0]);
        assert_eq!(narrow.series[0].p50, 4.0);
        assert_eq!(narrow.series[0].p95, 5.0);
    }

    #[test]
    fn timeseries_percentiles_cover_the_window() {
        let ts = TimeSeries::new(&["v"], 100, 500);
        for i in 1..=100u64 {
            ts.push(i, &[i as f64]);
        }
        let w = ts.window(100);
        let series = &w.series[0];
        assert_eq!(series.p50, 50.0);
        assert_eq!(series.p95, 95.0);
        assert_eq!(series.min, 1.0);
        assert_eq!(series.max, 100.0);
    }

    #[test]
    fn timeseries_short_rows_record_zeroes() {
        let ts = TimeSeries::new(&["a", "b", "c"], 4, 1000);
        ts.push(1, &[1.0]); // b and c missing
        let w = ts.window(4);
        assert_eq!(w.series[0].samples, vec![1.0]);
        assert_eq!(w.series[1].samples, vec![0.0]);
        assert_eq!(w.series[2].samples, vec![0.0]);
    }

    #[test]
    fn timeseries_prometheus_gauges_are_well_formed() {
        let ts = TimeSeries::new(&["req_rate", "cache_hit_ratio"], 8, 1000);
        ts.push(1, &[3.5, 0.75]);
        let mut out = String::new();
        ts.render_prometheus(&mut out);
        assert!(out.contains("# TYPE tessel_timeseries_last gauge"));
        assert!(out.contains("tessel_timeseries_last{series=\"req_rate\"} 3.5"));
        assert!(out.contains("tessel_timeseries_last{series=\"cache_hit_ratio\"} 0.75"));
        // Every non-comment line is `name{labels} value` with a float value.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value.parse::<f64>().expect("gauge value parses as f64");
        }
    }

    #[test]
    fn log_lines_do_not_panic_in_either_format() {
        // Smoke: exotic content must escape, not crash (output goes to
        // stderr and is not captured here).
        init(Level::Debug, LogFormat::Json);
        log(
            Level::Info,
            "test",
            "quote \" backslash \\ newline \n tab \t",
            &[("key", "value \u{1} with control")],
        );
        init(Level::Info, LogFormat::Text);
        debug("test", "filtered out", &[]);
        warn("test", "visible", &[("k", "v\"w")]);
    }
}
