//! Baseline pipeline schedules compared against Tessel.
//!
//! The paper compares Tessel's searched schedules against pre-defined
//! schedules: 1F1B (DAPPLE/PipeDream-flush), GPipe, Chimera(-direct), 1F1B+
//! (the authors' manual adaptation of 1F1B to Tessel's advanced placements)
//! and plain tensor parallelism for inference. All of them are implemented
//! here against the same `PlacementSpec` IR so their schedules can be
//! validated, measured and simulated with the same machinery as Tessel's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chimera;
pub mod discipline;
pub mod tensor_parallel;

pub use chimera::{chimera_estimate, ChimeraEstimate};
pub use discipline::{baseline_schedule, gpipe, one_f_one_b, one_f_one_b_plus, Discipline};
pub use tensor_parallel::{tensor_parallel_latency, tensor_parallel_schedule};

/// Result alias re-using the core error type.
pub type Result<T> = std::result::Result<T, tessel_core::CoreError>;
