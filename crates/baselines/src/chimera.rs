//! Chimera(-direct) estimate.
//!
//! Chimera runs two model replicas through bidirectional pipelines; each
//! device holds a stage of the "down" pipeline *and* a stage of the "up"
//! pipeline, doubling the resident parameter and optimizer state. Because our
//! placement IR describes a single micro-batch program (and Chimera routes
//! half the micro-batches through each replica), the baseline is modelled
//! analytically: the published steady-state bubble rate (the 20% reported in
//! Table II for the paper's settings) and the doubled static memory are
//! enough to reproduce the evaluation's comparisons — Chimera out-of-memory
//! failures on GPT and its slight edge over 1F1B+ for single-server mT5.

use serde::{Deserialize, Serialize};

/// Analytical performance/memory estimate of a Chimera-direct execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChimeraEstimate {
    /// Steady-state bubble rate of the bidirectional schedule.
    pub bubble_rate: f64,
    /// Iteration time in time units (`None` when the replica does not fit in
    /// memory).
    pub iteration_time: Option<u64>,
    /// Static memory per device in memory units (two model replicas).
    pub static_memory_units: i64,
    /// Whether the configuration fits in device memory.
    pub fits_in_memory: bool,
}

/// Builds a Chimera estimate.
///
/// * `per_device_work` — compute time of one micro-batch on the busiest
///   device under a balanced V-shape split (forward plus backward).
/// * `num_micro_batches` — micro-batches per iteration.
/// * `single_replica_static_units` — parameter/optimizer memory of one model
///   replica per device.
/// * `capacity_units` — device memory.
#[must_use]
pub fn chimera_estimate(
    per_device_work: u64,
    num_micro_batches: usize,
    num_stages: usize,
    single_replica_static_units: i64,
    capacity_units: i64,
) -> ChimeraEstimate {
    let static_memory_units = single_replica_static_units * 2;
    let fits = static_memory_units < capacity_units;
    // Chimera-direct halves the warmup bubble of 1F1B but keeps an inherent
    // bubble in its steady state when the two pipelines contend for the same
    // device; the paper reports ~20% for numerous micro-batches.
    let steady_bubble = 0.20;
    let warmup_overhead = (num_stages.saturating_sub(2) / 2) as u64;
    let iteration_time = if fits {
        let busy = per_device_work * num_micro_batches as u64 + warmup_overhead * per_device_work;
        Some((busy as f64 / (1.0 - steady_bubble)).round() as u64)
    } else {
        None
    };
    ChimeraEstimate {
        bubble_rate: steady_bubble,
        iteration_time,
        static_memory_units,
        fits_in_memory: fits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubled_replicas_exceed_memory_when_one_barely_fits() {
        let est = chimera_estimate(12, 16, 4, 20, 32);
        assert!(!est.fits_in_memory);
        assert!(est.iteration_time.is_none());
        assert_eq!(est.static_memory_units, 40);
    }

    #[test]
    fn fitting_configurations_report_an_iteration_time() {
        let est = chimera_estimate(12, 16, 4, 10, 32);
        assert!(est.fits_in_memory);
        let time = est.iteration_time.unwrap();
        // Never faster than the pure compute time.
        assert!(time >= 12 * 16);
        assert!((est.bubble_rate - 0.2).abs() < 1e-9);
    }

    #[test]
    fn iteration_time_scales_with_micro_batches() {
        let small = chimera_estimate(10, 8, 4, 5, 32).iteration_time.unwrap();
        let large = chimera_estimate(10, 32, 4, 5, 32).iteration_time.unwrap();
        assert!(large > 3 * small);
    }
}
