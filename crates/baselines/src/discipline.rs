//! Pre-defined pipeline disciplines: GPipe, 1F1B and 1F1B+.
//!
//! All three are realised as deterministic list schedules over the block
//! instances of `N` micro-batches:
//!
//! * **GPipe** runs every forward block of every micro-batch before any
//!   backward block (maximum in-flight micro-batches, maximum memory).
//! * **1F1B** caps the number of in-flight micro-batches at the pipeline
//!   depth and, once the cap is reached, always prefers the backward block of
//!   the oldest in-flight micro-batch — the classic one-forward-one-backward
//!   steady state.
//! * **1F1B+** is the paper's manual adaptation of 1F1B to advanced
//!   placements (M/NN shapes): the same discipline applied to a placement
//!   whose distributed (multi-device) blocks are scheduled adjacent to their
//!   neighbouring stages.

use crate::Result;
use tessel_core::completion::complete_schedule;
use tessel_core::compose::compose_schedule;
use tessel_core::ir::{BlockKind, PlacementSpec};
use tessel_core::repetend::{solve_repetend, RepetendCandidate};
use tessel_core::schedule::{scheduled_block, Schedule, ScheduledBlock};
use tessel_core::CoreError;
use tessel_solver::{Solver, SolverConfig};

/// Which pre-defined discipline to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discipline {
    /// All forwards first, then all backwards.
    GPipe,
    /// One-forward-one-backward with a bounded number of in-flight
    /// micro-batches.
    OneFOneB {
        /// Maximum number of micro-batches in flight (usually the pipeline
        /// depth).
        max_inflight: usize,
    },
}

/// Builds a baseline schedule for `placement` and `n` micro-batches under the
/// given discipline.
///
/// The schedule is constructed greedily in chronological order: at every step
/// the discipline picks one ready block (dependencies satisfied, memory
/// feasible, in-flight cap respected) and starts it at the earliest feasible
/// time. The result is validated before being returned.
///
/// # Errors
///
/// Returns [`CoreError::InvalidSchedule`] if the discipline dead-ends (for
/// example GPipe exceeding the memory budget) — which is itself a result the
/// paper reports as an out-of-memory failure.
pub fn baseline_schedule(
    placement: &PlacementSpec,
    n: usize,
    discipline: Discipline,
) -> Result<Schedule> {
    placement.validate()?;
    let k = placement.num_blocks();
    let total = n * k;
    let capacity = placement.memory_capacity();
    let max_inflight = match discipline {
        Discipline::GPipe => n,
        Discipline::OneFOneB { max_inflight } => max_inflight.max(1),
    };

    // State.
    let mut scheduled: Vec<Vec<bool>> = vec![vec![false; n]; k];
    let mut finish: Vec<Vec<u64>> = vec![vec![0; n]; k];
    let mut device_finish = vec![0u64; placement.num_devices()];
    let mut device_mem = vec![0i64; placement.num_devices()];
    let mut blocks: Vec<ScheduledBlock> = Vec::with_capacity(total);
    // A micro-batch is "in flight" once any of its blocks started and until
    // its last block completed (scheduled, for the purpose of the cap).
    let mut started = vec![false; n];
    let mut remaining = vec![k; n];

    for _ in 0..total {
        let inflight = (0..n).filter(|&m| started[m] && remaining[m] > 0).count();
        let mut best: Option<(usize, usize, u64)> = None;
        for mb in 0..n {
            for stage in 0..k {
                if scheduled[stage][mb] {
                    continue;
                }
                let spec = placement.block(stage);
                // Dependencies within the micro-batch.
                if spec.deps.iter().any(|&d| !scheduled[d][mb]) {
                    continue;
                }
                // Same-stage blocks run in micro-batch order (keeps the
                // pipeline FIFO and matches the 1F1B definition).
                if mb > 0 && !scheduled[stage][mb - 1] {
                    continue;
                }
                // In-flight cap: starting a *new* micro-batch is only allowed
                // below the cap.
                if !started[mb] && inflight >= max_inflight {
                    continue;
                }
                // Memory feasibility. 1F1B stalls new work until memory is
                // available; GPipe has no such adaptation — it schedules
                // regardless and the final validation reports the overflow,
                // which is how its out-of-memory failures surface.
                if let (Some(cap), Discipline::OneFOneB { .. }) = (capacity, discipline) {
                    let fits = spec
                        .devices
                        .iter()
                        .all(|&d| device_mem[d] + spec.memory <= cap);
                    if !fits {
                        continue;
                    }
                }
                let mut est = 0u64;
                for &d in &spec.deps {
                    est = est.max(finish[d][mb]);
                }
                for &d in &spec.devices {
                    est = est.max(device_finish[d]);
                }
                // Discipline priority.
                // * GPipe: every forward (in micro-batch order) before any
                //   backward.
                // * 1F1B: the ready block that can start earliest; ties go to
                //   backward blocks and then to the oldest micro-batch, which
                //   yields the classic one-forward-one-backward alternation.
                let rank = rank_of(discipline, spec.kind, mb, est, stage);
                let better = match &best {
                    None => true,
                    Some((b_stage, b_mb, b_est)) => {
                        let b_kind = placement.block(*b_stage).kind;
                        rank < rank_of(discipline, b_kind, *b_mb, *b_est, *b_stage)
                    }
                };
                if better {
                    best = Some((stage, mb, est));
                }
            }
        }
        let Some((stage, mb, est)) = best else {
            return Err(CoreError::InvalidSchedule(format!(
                "{} dead-ends after {} of {} blocks (out of memory or circular wait)",
                match discipline {
                    Discipline::GPipe => "GPipe",
                    Discipline::OneFOneB { .. } => "1F1B",
                },
                blocks.len(),
                total
            )));
        };
        let spec = placement.block(stage);
        scheduled[stage][mb] = true;
        started[mb] = true;
        remaining[mb] -= 1;
        finish[stage][mb] = est + spec.time;
        for &d in &spec.devices {
            device_finish[d] = est + spec.time;
            device_mem[d] += spec.memory;
        }
        blocks.push(scheduled_block(placement, stage, mb, est));
    }

    let schedule = Schedule::new(placement.num_devices(), n, blocks);
    schedule.validate(placement)?;
    Ok(schedule)
}

/// Ordering key of a ready block under a discipline; smaller is scheduled
/// first.
fn rank_of(
    discipline: Discipline,
    kind: BlockKind,
    mb: usize,
    est: u64,
    stage: usize,
) -> (u64, u8, usize, usize) {
    match discipline {
        Discipline::GPipe => {
            let phase = match kind {
                BlockKind::Forward => 0u64,
                BlockKind::Backward => 1u64,
            };
            (phase, 0, mb, stage)
        }
        Discipline::OneFOneB { .. } => {
            let tie = match kind {
                BlockKind::Backward => 0u8,
                BlockKind::Forward => 1u8,
            };
            (est, tie, mb, stage)
        }
    }
}

/// The classic 1F1B schedule: in-flight micro-batches capped at the pipeline
/// depth (number of devices).
///
/// # Errors
///
/// See [`baseline_schedule`].
pub fn one_f_one_b(placement: &PlacementSpec, n: usize) -> Result<Schedule> {
    baseline_schedule(
        placement,
        n,
        Discipline::OneFOneB {
            max_inflight: placement.num_devices(),
        },
    )
}

/// The paper's 1F1B+ baseline: the 1F1B steady-state pattern manually adapted
/// to an advanced placement (M-, NN- or K-shape) by inserting the distributed
/// (multi-device) blocks next to their neighbouring stages.
///
/// The adaptation is expressed as a *fixed* repetend: forward blocks carry
/// descending micro-batch indices along the dependency chain (exactly the
/// 1F1B steady state) and backward blocks carry index zero. Unlike Tessel,
/// neither the index assignment nor the compaction between repetitions is
/// searched, so the resulting schedule keeps the data-dependency bubbles the
/// paper attributes to 1F1B+.
///
/// # Errors
///
/// Returns an error if the fixed pattern admits no feasible schedule under
/// the memory budget.
pub fn one_f_one_b_plus(placement: &PlacementSpec, n: usize) -> Result<Schedule> {
    placement.validate()?;
    let k = placement.num_blocks();
    // Canonical 1F1B index assignment: along the topological order, forward
    // blocks count down the number of forward blocks that follow them;
    // backward blocks stay at zero. Clamp by the memory-derived in-flight cap.
    let order = placement.topological_stages();
    let forwards: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&s| placement.block(s).kind == BlockKind::Forward)
        .collect();
    let cap = placement
        .max_inflight_micro_batches(placement.num_devices())
        .max(1);
    let mut indices = vec![0usize; k];
    for (pos, &stage) in forwards.iter().enumerate() {
        indices[stage] = (forwards.len() - 1 - pos).min(cap - 1);
    }
    // Property 4.2 requires indices to be non-increasing along dependencies;
    // enforce it explicitly in case the placement has parallel branches.
    for &stage in &order {
        let bound = placement
            .block(stage)
            .deps
            .iter()
            .map(|&d| indices[d])
            .min()
            .unwrap_or(usize::MAX);
        indices[stage] = indices[stage].min(bound);
    }
    let candidate = RepetendCandidate { indices };

    let solver = Solver::new(SolverConfig::default());
    let repetend = solve_repetend(placement, &candidate, &solver, u64::MAX)?
        .ok_or(CoreError::NoFeasibleRepetend)?;
    let nr = repetend.num_micro_batches();
    let n = n.max(nr);
    let copies = n - nr + 1;
    let (warmup, cooldown) = complete_schedule(placement, &repetend, copies, &solver)?;
    compose_schedule(placement, &repetend, &warmup, &cooldown, n)
}

/// The GPipe schedule: all forwards, then all backwards.
///
/// # Errors
///
/// See [`baseline_schedule`]; GPipe frequently fails on tight memory budgets
/// because it keeps every micro-batch in flight.
pub fn gpipe(placement: &PlacementSpec, n: usize) -> Result<Schedule> {
    baseline_schedule(placement, n, Discipline::GPipe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tessel_core::ir::BlockKind;

    fn v_shape(d: usize, fwd: u64, bwd: u64, capacity: Option<i64>) -> PlacementSpec {
        let mut b = PlacementSpec::builder(format!("v{d}"), d);
        b.set_memory_capacity(capacity);
        let mut prev: Option<usize> = None;
        for dev in 0..d {
            let deps: Vec<usize> = prev.into_iter().collect();
            prev = Some(
                b.add_block(format!("f{dev}"), BlockKind::Forward, [dev], fwd, 1, deps)
                    .unwrap(),
            );
        }
        for dev in (0..d).rev() {
            let deps: Vec<usize> = prev.into_iter().collect();
            prev = Some(
                b.add_block(format!("b{dev}"), BlockKind::Backward, [dev], bwd, -1, deps)
                    .unwrap(),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn one_f_one_b_matches_the_textbook_makespan() {
        // D stages, N micro-batches, forward f, backward b: the 1F1B (and
        // GPipe) makespan is (N + D - 1) * (f + b) for balanced stages.
        for (d, n, f, b) in [(2usize, 4usize, 1u64, 2u64), (4, 8, 1, 2), (4, 6, 2, 4)] {
            let p = v_shape(d, f, b, Some(d as i64));
            let schedule = one_f_one_b(&p, n).unwrap();
            schedule.validate(&p).unwrap();
            assert_eq!(
                schedule.makespan(),
                (n as u64 + d as u64 - 1) * (f + b),
                "d={d} n={n}"
            );
        }
    }

    #[test]
    fn one_f_one_b_caps_in_flight_micro_batches() {
        let d = 4;
        let p = v_shape(d, 1, 2, Some(d as i64));
        let schedule = one_f_one_b(&p, 12).unwrap();
        // Peak memory equals the pipeline depth: exactly D in-flight
        // micro-batches on the first device.
        assert_eq!(schedule.peak_memory()[0], d as i64);
    }

    #[test]
    fn gpipe_keeps_all_micro_batches_in_flight() {
        let p = v_shape(2, 1, 2, None);
        let n = 6;
        let schedule = gpipe(&p, n).unwrap();
        schedule.validate(&p).unwrap();
        assert_eq!(schedule.peak_memory()[0], n as i64);
        // All forwards precede all backwards on every device.
        for d in 0..2 {
            let timeline = schedule.device_timeline(d);
            let first_backward = timeline
                .iter()
                .position(|b| b.kind == BlockKind::Backward)
                .unwrap();
            assert!(timeline[first_backward..]
                .iter()
                .all(|b| b.kind == BlockKind::Backward));
        }
    }

    #[test]
    fn gpipe_fails_under_tight_memory_like_the_paper_reports() {
        let p = v_shape(2, 1, 2, Some(2));
        let err = gpipe(&p, 8).unwrap_err();
        assert!(matches!(err, CoreError::InvalidSchedule(_)));
        // 1F1B survives the same budget thanks to its in-flight cap.
        assert!(one_f_one_b(&p, 8).is_ok());
    }

    #[test]
    fn one_f_one_b_plus_handles_multi_device_blocks() {
        // An M-shape-like placement: an all-device embedding around a
        // two-stage pipeline.
        let mut b = PlacementSpec::builder("m2", 2);
        b.set_memory_capacity(Some(6));
        let e_f = b
            .add_block("embed-f", BlockKind::Forward, [0, 1], 1, 1, [])
            .unwrap();
        let f0 = b
            .add_block("f0", BlockKind::Forward, [0], 2, 1, [e_f])
            .unwrap();
        let f1 = b
            .add_block("f1", BlockKind::Forward, [1], 2, 1, [f0])
            .unwrap();
        let b1 = b
            .add_block("b1", BlockKind::Backward, [1], 4, -1, [f1])
            .unwrap();
        let b0 = b
            .add_block("b0", BlockKind::Backward, [0], 4, -1, [b1])
            .unwrap();
        b.add_block("embed-b", BlockKind::Backward, [0, 1], 2, -1, [b0])
            .unwrap();
        let p = b.build().unwrap();
        let schedule = one_f_one_b_plus(&p, 6).unwrap();
        schedule.validate(&p).unwrap();
        assert!(schedule.makespan() > 0);
        // It pipelines: better than fully sequential execution.
        assert!(schedule.makespan() < 6 * p.total_block_time());
    }

    #[test]
    fn one_f_one_b_plus_reduces_to_1f1b_on_v_shapes() {
        let p = v_shape(2, 1, 2, Some(3));
        let plus = one_f_one_b_plus(&p, 8).unwrap();
        plus.validate(&p).unwrap();
        let classic = one_f_one_b(&p, 8).unwrap();
        // Same placement and same steady-state pattern: the makespans agree
        // up to the warmup/cooldown boundary handling.
        let diff = plus.makespan().abs_diff(classic.makespan());
        assert!(
            diff <= p.total_block_time(),
            "plus {} vs classic {}",
            plus.makespan(),
            classic.makespan()
        );
    }

    #[test]
    fn deeper_pipelines_have_larger_bubble_at_few_micro_batches() {
        let shallow = v_shape(2, 1, 2, None);
        let deep = v_shape(8, 1, 2, None);
        let s = one_f_one_b(&shallow, 8).unwrap();
        let d = one_f_one_b(&deep, 8).unwrap();
        assert!(d.bubble_rate() > s.bubble_rate());
    }
}
