//! Pure tensor parallelism: every operator is split across all devices and
//! the micro-batches run strictly one after another.
//!
//! This is the latency-oriented baseline of the Flava inference comparison
//! (Fig. 15): a single micro-batch finishes as fast as the hardware allows,
//! but devices never overlap different micro-batches, so throughput is capped
//! and the per-operator kernels are small and less efficient.

use crate::Result;
use tessel_core::ir::{BlockKind, PlacementSpec};
use tessel_core::schedule::{scheduled_block, Schedule};
use tessel_core::CoreError;

/// Parallel efficiency of slicing individual operators across all devices.
/// The paper observes that tensor-parallel kernels under-utilise the GPU
/// compared to whole-operator execution (small per-GPU GEMMs at micro-batch
/// size 1, plus an all-reduce after every sliced operator), which is why its
/// Fig. 15 shows lower throughput for tensor parallelism than for Tessel's
/// K-shape pipeline.
pub const TENSOR_PARALLEL_EFFICIENCY: f64 = 0.5;

/// Builds an all-device tensor-parallel placement equivalent of `placement`:
/// a single forward block (and, for training placements, a single backward
/// block) per micro-batch spanning every device, whose time is the sum of the
/// original block times divided by the device count and discounted by
/// [`TENSOR_PARALLEL_EFFICIENCY`].
///
/// # Errors
///
/// Propagates placement-construction errors (cannot occur for valid input
/// placements).
pub fn tensor_parallel_placement(placement: &PlacementSpec) -> Result<PlacementSpec> {
    placement.validate()?;
    let devices = placement.num_devices();
    let all: Vec<usize> = (0..devices).collect();
    let scale = |time: u64| -> u64 {
        ((time as f64 / (devices as f64 * TENSOR_PARALLEL_EFFICIENCY)).round() as u64).max(1)
    };
    let forward_time: u64 = placement
        .blocks()
        .iter()
        .filter(|b| b.kind == BlockKind::Forward)
        .map(|b| b.time)
        .sum();
    let backward_time: u64 = placement
        .blocks()
        .iter()
        .filter(|b| b.kind == BlockKind::Backward)
        .map(|b| b.time)
        .sum();
    let forward_flops: f64 = placement
        .blocks()
        .iter()
        .filter(|b| b.kind == BlockKind::Forward)
        .map(|b| b.flops)
        .sum();

    let mut b = PlacementSpec::builder(format!("{}-tensor-parallel", placement.name()), devices);
    b.set_memory_capacity(placement.memory_capacity());
    let fwd = b.push_block(
        tessel_core::ir::BlockSpec::new(
            "tp-forward",
            BlockKind::Forward,
            all.clone(),
            scale(forward_time),
            1,
        )
        .with_flops(forward_flops),
    )?;
    if backward_time > 0 {
        b.push_block(
            tessel_core::ir::BlockSpec::new(
                "tp-backward",
                BlockKind::Backward,
                all,
                scale(backward_time),
                -1,
            )
            .with_deps([fwd]),
        )?;
    }
    b.build()
}

/// The latency of a single micro-batch under tensor parallelism, in time
/// units.
///
/// # Errors
///
/// See [`tensor_parallel_placement`].
pub fn tensor_parallel_latency(placement: &PlacementSpec) -> Result<u64> {
    let tp = tensor_parallel_placement(placement)?;
    Ok(tp.total_block_time())
}

/// A schedule executing `n` micro-batches strictly sequentially under tensor
/// parallelism.
///
/// # Errors
///
/// See [`tensor_parallel_placement`].
pub fn tensor_parallel_schedule(
    placement: &PlacementSpec,
    n: usize,
) -> Result<(PlacementSpec, Schedule)> {
    let tp = tensor_parallel_placement(placement)?;
    let mut blocks = Vec::new();
    let mut clock = 0u64;
    for mb in 0..n {
        for stage in 0..tp.num_blocks() {
            blocks.push(scheduled_block(&tp, stage, mb, clock));
            clock += tp.block(stage).time;
        }
    }
    let schedule = Schedule::new(tp.num_devices(), n, blocks);
    schedule
        .validate(&tp)
        .map_err(|e| CoreError::InvalidSchedule(e.to_string()))?;
    Ok((tp, schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tessel_core::ir::BlockKind;

    fn inference_pipeline(d: usize, stage_time: u64) -> PlacementSpec {
        let mut b = PlacementSpec::builder(format!("inf{d}"), d);
        let mut prev: Option<usize> = None;
        for dev in 0..d {
            let deps: Vec<usize> = prev.into_iter().collect();
            prev = Some(
                b.add_block(
                    format!("f{dev}"),
                    BlockKind::Forward,
                    [dev],
                    stage_time,
                    0,
                    deps,
                )
                .unwrap(),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn tensor_parallel_lowers_single_micro_batch_latency() {
        let p = inference_pipeline(4, 8);
        // Pipeline latency of one micro-batch: 4 stages * 8 = 32.
        let pipeline_latency = p.total_block_time();
        let tp_latency = tensor_parallel_latency(&p).unwrap();
        assert!(tp_latency < pipeline_latency);
        // But not below the ideal 1/D speedup.
        assert!(tp_latency >= pipeline_latency / 4);
    }

    #[test]
    fn tensor_parallel_throughput_is_serialised() {
        let p = inference_pipeline(4, 8);
        let (tp, schedule) = tensor_parallel_schedule(&p, 5).unwrap();
        schedule.validate(&tp).unwrap();
        assert_eq!(
            schedule.makespan(),
            5 * tensor_parallel_latency(&p).unwrap()
        );
        // Every block uses all devices.
        assert!(schedule.blocks().iter().all(|b| b.devices.len() == 4));
    }

    #[test]
    fn training_placements_get_a_backward_block() {
        let mut b = PlacementSpec::builder("train", 2);
        let f = b.add_block("f", BlockKind::Forward, [0], 4, 1, []).unwrap();
        b.add_block("bwd", BlockKind::Backward, [1], 8, -1, [f])
            .unwrap();
        let p = b.build().unwrap();
        let tp = tensor_parallel_placement(&p).unwrap();
        assert_eq!(tp.num_blocks(), 2);
        assert!(tp.block(1).kind.is_backward());
    }
}
