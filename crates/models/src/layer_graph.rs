//! Layer-level model graphs consumed by the placement crate.
//!
//! A [`LayerGraph`] is a coarse DAG of model layers (embedding, transformer,
//! cross-encoder, head, ...) annotated with the costs computed by the
//! [`cost`](crate::cost) module. The placement crate groups layers into
//! execution blocks and assigns them to devices, producing the
//! `PlacementSpec` that the Tessel search consumes.

use crate::cost::LayerCost;
use serde::{Deserialize, Serialize};

/// The role of a layer in the model; placements treat some kinds specially
/// (e.g. distributing the embedding across all devices in the M-shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Token embedding table (and tied output projection).
    Embedding,
    /// A standard transformer layer.
    Transformer,
    /// An encoder layer (mT5 encoder stack).
    Encoder,
    /// A decoder layer (mT5 decoder stack, with cross attention).
    Decoder,
    /// A text-branch layer (Flava).
    TextEncoder,
    /// A vision-branch layer (Flava).
    VisionEncoder,
    /// A multi-modal cross-encoder layer (Flava).
    CrossEncoder,
    /// The language-model / task head.
    Head,
}

impl LayerKind {
    /// `true` for the memory-dominant embedding layer.
    #[must_use]
    pub fn is_embedding(self) -> bool {
        matches!(self, LayerKind::Embedding)
    }
}

/// One layer of the model with its analytical costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNode {
    /// Display name (e.g. `"layer07"`, `"embedding"`).
    pub name: String,
    /// What kind of layer this is.
    pub kind: LayerKind,
    /// Analytical costs of the layer for one micro-batch.
    pub cost: LayerCost,
    /// Indices of layers this one consumes activations from.
    pub deps: Vec<usize>,
}

/// A DAG of layers describing one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerGraph {
    /// Model name.
    pub name: String,
    /// The layers in topological order of construction.
    pub layers: Vec<LayerNode>,
}

impl LayerGraph {
    /// Creates an empty graph for `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        LayerGraph {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Adds a layer and returns its index.
    pub fn add_layer(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        cost: LayerCost,
        deps: impl IntoIterator<Item = usize>,
    ) -> usize {
        let idx = self.layers.len();
        self.layers.push(LayerNode {
            name: name.into(),
            kind,
            cost,
            deps: deps.into_iter().collect(),
        });
        idx
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the graph has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total forward FLOPs of one micro-batch.
    #[must_use]
    pub fn total_forward_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.cost.forward_flops).sum()
    }

    /// Total parameter bytes of the model.
    #[must_use]
    pub fn total_param_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.cost.param_bytes).sum()
    }

    /// Indices of layers of a given kind.
    #[must_use]
    pub fn layers_of_kind(&self, kind: LayerKind) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of all layers that are *not* embeddings, in order; these are
    /// the layers the Piper-style partitioner spreads across pipeline stages.
    #[must_use]
    pub fn compute_layers(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.kind.is_embedding())
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks the dependency indices are in range and acyclic (layers may only
    /// depend on earlier layers, which the builders guarantee).
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.layers
            .iter()
            .enumerate()
            .all(|(i, l)| l.deps.iter().all(|&d| d < i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LayerCost;

    fn cost(flops: f64) -> LayerCost {
        LayerCost {
            forward_flops: flops,
            backward_flops: 2.0 * flops,
            param_bytes: 100,
            activation_bytes: 10,
            output_bytes: 10,
        }
    }

    #[test]
    fn graph_builder_assigns_indices_and_deps() {
        let mut g = LayerGraph::new("toy");
        let a = g.add_layer("embed", LayerKind::Embedding, cost(1.0), []);
        let b = g.add_layer("layer0", LayerKind::Transformer, cost(2.0), [a]);
        let c = g.add_layer("head", LayerKind::Head, cost(1.0), [b]);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert!(g.is_well_formed());
    }

    #[test]
    fn aggregates_sum_layer_costs() {
        let mut g = LayerGraph::new("toy");
        g.add_layer("a", LayerKind::Transformer, cost(1.0), []);
        g.add_layer("b", LayerKind::Transformer, cost(2.0), [0]);
        assert!((g.total_forward_flops() - 3.0).abs() < 1e-12);
        assert_eq!(g.total_param_bytes(), 200);
    }

    #[test]
    fn kind_filters_work() {
        let mut g = LayerGraph::new("toy");
        g.add_layer("embed", LayerKind::Embedding, cost(0.1), []);
        g.add_layer("l0", LayerKind::Transformer, cost(1.0), [0]);
        g.add_layer("l1", LayerKind::Transformer, cost(1.0), [1]);
        assert_eq!(g.layers_of_kind(LayerKind::Embedding), vec![0]);
        assert_eq!(g.compute_layers(), vec![1, 2]);
        assert!(LayerKind::Embedding.is_embedding());
        assert!(!LayerKind::Transformer.is_embedding());
    }

    #[test]
    fn forward_references_are_detected() {
        let g = LayerGraph {
            name: "bad".into(),
            layers: vec![LayerNode {
                name: "a".into(),
                kind: LayerKind::Transformer,
                cost: cost(1.0),
                deps: vec![5],
            }],
        };
        assert!(!g.is_well_formed());
    }
}
