//! Model configurations, including the Table III entries of the paper.

use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of a transformer-family model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model family name (`"gpt"`, `"mt5"`, `"flava"`).
    pub name: String,
    /// Number of transformer layers (for encoder–decoder models, the total
    /// across both stacks).
    pub num_layers: usize,
    /// Hidden dimension.
    pub hidden_size: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Vocabulary size of the (large) embedding table.
    pub vocab_size: usize,
    /// Sequence length used for training/inference.
    pub seq_len: usize,
    /// Micro-batch size (samples per micro-batch).
    pub micro_batch_size: usize,
}

impl ModelConfig {
    /// Approximate parameter count in billions, using the standard
    /// `12 * L * H^2 + V * H` transformer estimate.
    #[must_use]
    pub fn approx_params_billions(&self) -> f64 {
        let h = self.hidden_size as f64;
        let l = self.num_layers as f64;
        let v = self.vocab_size as f64;
        (12.0 * l * h * h + v * h) / 1e9
    }

    /// Bytes of the embedding table parameters in half precision.
    #[must_use]
    pub fn embedding_param_bytes(&self) -> u64 {
        (self.vocab_size as u64) * (self.hidden_size as u64) * 2
    }

    /// Bytes of a single transformer layer's parameters in half precision.
    #[must_use]
    pub fn layer_param_bytes(&self) -> u64 {
        12 * (self.hidden_size as u64) * (self.hidden_size as u64) * 2
    }
}

/// One row of Table III: the model configuration used at a given GPU count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableIIIEntry {
    /// Number of GPUs the configuration targets.
    pub gpus: usize,
    /// Approximate parameter count in billions as reported in the paper.
    pub params_billions: f64,
    /// Number of layers.
    pub layers: usize,
    /// Hidden size.
    pub hidden_size: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
}

/// GPT rows of Table III (11B / 24B / 47B / 77B for 4 / 8 / 16 / 32 GPUs).
pub const GPT_TABLE_III: [TableIIIEntry; 4] = [
    TableIIIEntry {
        gpus: 4,
        params_billions: 11.0,
        layers: 32,
        hidden_size: 4096,
        heads: 32,
        vocab_size: 1_000_000,
    },
    TableIIIEntry {
        gpus: 8,
        params_billions: 24.0,
        layers: 40,
        hidden_size: 6144,
        heads: 48,
        vocab_size: 1_000_000,
    },
    TableIIIEntry {
        gpus: 16,
        params_billions: 47.0,
        layers: 48,
        hidden_size: 8192,
        heads: 64,
        vocab_size: 1_000_000,
    },
    TableIIIEntry {
        gpus: 32,
        params_billions: 77.0,
        layers: 80,
        hidden_size: 8192,
        heads: 64,
        vocab_size: 1_500_000,
    },
];

/// mT5 rows of Table III (1.8B / 9.5B / 43B / 88B for 4 / 8 / 16 / 32 GPUs).
pub const MT5_TABLE_III: [TableIIIEntry; 4] = [
    TableIIIEntry {
        gpus: 4,
        params_billions: 1.8,
        layers: 48,
        hidden_size: 1024,
        heads: 16,
        vocab_size: 512_000,
    },
    TableIIIEntry {
        gpus: 8,
        params_billions: 9.5,
        layers: 48,
        hidden_size: 3072,
        heads: 24,
        vocab_size: 1_000_000,
    },
    TableIIIEntry {
        gpus: 16,
        params_billions: 43.0,
        layers: 64,
        hidden_size: 6144,
        heads: 48,
        vocab_size: 1_500_000,
    },
    TableIIIEntry {
        gpus: 32,
        params_billions: 88.0,
        layers: 80,
        hidden_size: 8192,
        heads: 64,
        vocab_size: 1_500_000,
    },
];

impl TableIIIEntry {
    /// Expands the row into a full [`ModelConfig`] for the given family.
    #[must_use]
    pub fn to_config(&self, name: &str, seq_len: usize, micro_batch_size: usize) -> ModelConfig {
        ModelConfig {
            name: name.to_string(),
            num_layers: self.layers,
            hidden_size: self.hidden_size,
            num_heads: self.heads,
            vocab_size: self.vocab_size,
            seq_len,
            micro_batch_size,
        }
    }
}

/// Returns the GPT Table III configuration for a GPU count, if listed.
#[must_use]
pub fn gpt_config_for_gpus(gpus: usize) -> Option<ModelConfig> {
    GPT_TABLE_III
        .iter()
        .find(|e| e.gpus == gpus)
        .map(|e| e.to_config("gpt", 1024, 1))
}

/// Returns the mT5 Table III configuration for a GPU count, if listed.
#[must_use]
pub fn mt5_config_for_gpus(gpus: usize) -> Option<ModelConfig> {
    MT5_TABLE_III
        .iter()
        .find(|e| e.gpus == gpus)
        .map(|e| e.to_config("mt5", 1024, 1))
}

/// Flava (Fig. 15): 24 layers, 4096 hidden, 32 heads, evaluated on 4 GPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlavaConfig {
    /// Layers of the text encoder branch.
    pub text_layers: usize,
    /// Layers of the vision encoder branch.
    pub vision_layers: usize,
    /// Layers of the cross (multi-modal) encoder.
    pub cross_layers: usize,
    /// Hidden size shared across branches.
    pub hidden_size: usize,
    /// Attention heads.
    pub num_heads: usize,
    /// Text sequence length.
    pub text_seq_len: usize,
    /// Vision token count (patches).
    pub vision_seq_len: usize,
    /// Micro-batch size.
    pub micro_batch_size: usize,
}

impl Default for FlavaConfig {
    fn default() -> Self {
        // "24 layers, 4096 hidden size with 32 heads" split evenly across the
        // text, vision and cross encoders as in the Flava architecture.
        FlavaConfig {
            text_layers: 8,
            vision_layers: 8,
            cross_layers: 8,
            hidden_size: 4096,
            num_heads: 32,
            text_seq_len: 512,
            vision_seq_len: 576,
            micro_batch_size: 1,
        }
    }
}

impl FlavaConfig {
    /// Total number of transformer layers across all three encoders.
    #[must_use]
    pub fn total_layers(&self) -> usize {
        self.text_layers + self.vision_layers + self.cross_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_gpt_parameter_counts_are_close_to_the_paper() {
        for entry in &GPT_TABLE_III {
            let config = entry.to_config("gpt", 1024, 1);
            let params = config.approx_params_billions();
            // Within 40% of the headline number: the paper's count also
            // includes positional embeddings and biases which we fold into
            // the 12*L*H^2 estimate.
            assert!(
                (params - entry.params_billions).abs() / entry.params_billions < 0.4,
                "{} GPUs: estimated {params}B vs paper {}B",
                entry.gpus,
                entry.params_billions
            );
        }
    }

    #[test]
    fn table_iii_rows_cover_the_gpu_scaling_points() {
        let gpus: Vec<usize> = GPT_TABLE_III.iter().map(|e| e.gpus).collect();
        assert_eq!(gpus, vec![4, 8, 16, 32]);
        let gpus: Vec<usize> = MT5_TABLE_III.iter().map(|e| e.gpus).collect();
        assert_eq!(gpus, vec![4, 8, 16, 32]);
    }

    #[test]
    fn configs_resolve_by_gpu_count() {
        assert!(gpt_config_for_gpus(4).is_some());
        assert!(gpt_config_for_gpus(32).is_some());
        assert!(gpt_config_for_gpus(5).is_none());
        assert!(mt5_config_for_gpus(8).is_some());
        let gpt4 = gpt_config_for_gpus(4).unwrap();
        assert_eq!(gpt4.num_layers, 32);
        assert_eq!(gpt4.vocab_size, 1_000_000);
    }

    #[test]
    fn embedding_dominates_parameters_for_large_vocabularies() {
        // The motivation of Fig. 2: the embedding table of a multilingual GPT
        // is enormous relative to a single transformer layer.
        let config = gpt_config_for_gpus(4).unwrap();
        assert!(config.embedding_param_bytes() > 20 * config.layer_param_bytes());
    }

    #[test]
    fn flava_defaults_match_the_paper_inference_setup() {
        let flava = FlavaConfig::default();
        assert_eq!(flava.total_layers(), 24);
        assert_eq!(flava.hidden_size, 4096);
        assert_eq!(flava.num_heads, 32);
    }

    #[test]
    fn mt5_params_grow_with_gpu_count() {
        let params: Vec<f64> = MT5_TABLE_III
            .iter()
            .map(|e| e.to_config("mt5", 1024, 1).approx_params_billions())
            .collect();
        for pair in params.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }
}
