//! Analytical cost model: FLOPs, parameter/activation bytes and their
//! conversion into the integer time and memory units used by the search.
//!
//! The conversion targets a V100-class device (the paper's testbed): 112
//! TFLOP/s of usable half-precision throughput and 32 GiB of memory. One
//! *time unit* corresponds to [`DeviceProfile::time_unit_seconds`] of
//! computation and one *memory unit* to [`DeviceProfile::memory_unit_bytes`];
//! both are coarse on purpose, because the Tessel search only needs relative
//! block costs, not microsecond-accurate ones.

use crate::config::{FlavaConfig, ModelConfig};
use serde::{Deserialize, Serialize};

/// Costs of a single layer for one micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Forward-pass FLOPs.
    pub forward_flops: f64,
    /// Backward-pass FLOPs (without recompute; recompute is applied when
    /// blocks are formed).
    pub backward_flops: f64,
    /// Parameter bytes resident on whichever device holds the layer.
    pub param_bytes: u64,
    /// Activation bytes kept alive between the forward and backward pass.
    pub activation_bytes: u64,
    /// Bytes of the layer's output activation (what must be communicated to a
    /// dependent layer on another device).
    pub output_bytes: u64,
}

impl LayerCost {
    /// A zero cost, useful as a starting point in tests.
    #[must_use]
    pub fn zero() -> Self {
        LayerCost {
            forward_flops: 0.0,
            backward_flops: 0.0,
            param_bytes: 0,
            activation_bytes: 0,
            output_bytes: 0,
        }
    }
}

/// Hardware profile of one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Sustained half-precision throughput in FLOP/s.
    pub flops_per_second: f64,
    /// Device memory in bytes.
    pub memory_bytes: u64,
    /// Seconds of compute represented by one integer time unit.
    pub time_unit_seconds: f64,
    /// Bytes represented by one integer memory unit.
    pub memory_unit_bytes: u64,
}

impl DeviceProfile {
    /// A V100-32GB-like profile, matching the paper's testbed: 112 TFLOP/s of
    /// sustained tensor-core throughput, 32 GiB of HBM, 1 ms time units and
    /// 1 GiB memory units.
    #[must_use]
    pub fn v100() -> Self {
        DeviceProfile {
            flops_per_second: 112e12,
            memory_bytes: 32 * (1 << 30),
            time_unit_seconds: 1e-3,
            memory_unit_bytes: 1 << 30,
        }
    }

    /// Device memory expressed in integer memory units.
    #[must_use]
    pub fn memory_capacity_units(&self) -> i64 {
        (self.memory_bytes / self.memory_unit_bytes) as i64
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::v100()
    }
}

/// Converts analytical layer costs into search-friendly integer units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The device the costs target.
    pub device: DeviceProfile,
    /// Multiplier applied to backward FLOPs to account for activation
    /// recompute (the paper enables recompute on every transformer layer,
    /// making backward roughly 3x forward).
    pub recompute_factor: f64,
}

impl CostModel {
    /// Cost model for the paper's setup: V100 devices with recompute enabled.
    #[must_use]
    pub fn paper_default() -> Self {
        CostModel {
            device: DeviceProfile::v100(),
            recompute_factor: 1.5,
        }
    }

    /// Integer time units needed to execute `flops` on one device (at least 1
    /// for any non-trivial amount of work).
    #[must_use]
    pub fn time_units(&self, flops: f64) -> u64 {
        if flops <= 0.0 {
            return 0;
        }
        let seconds = flops / self.device.flops_per_second;
        let units = (seconds / self.device.time_unit_seconds).round() as u64;
        units.max(1)
    }

    /// Integer time units for a forward pass over `cost`.
    #[must_use]
    pub fn forward_time(&self, cost: &LayerCost) -> u64 {
        self.time_units(cost.forward_flops)
    }

    /// Integer time units for a backward pass over `cost`, including the
    /// recompute overhead.
    #[must_use]
    pub fn backward_time(&self, cost: &LayerCost) -> u64 {
        self.time_units(cost.backward_flops * self.recompute_factor)
    }

    /// Integer memory units for `bytes` (at least 1 for any non-zero amount).
    #[must_use]
    pub fn memory_units(&self, bytes: u64) -> i64 {
        if bytes == 0 {
            return 0;
        }
        let units = bytes.div_ceil(self.device.memory_unit_bytes);
        units.max(1) as i64
    }

    /// Cost of one GPT-style transformer layer.
    ///
    /// Uses the standard dense-transformer estimate: `24 * b * s * h^2` for
    /// the MLP/projection GEMMs plus `4 * b * s^2 * h` for attention.
    #[must_use]
    pub fn transformer_layer(&self, hidden: usize, seq: usize, batch: usize) -> LayerCost {
        let (h, s, b) = (hidden as f64, seq as f64, batch as f64);
        let forward = 24.0 * b * s * h * h + 4.0 * b * s * s * h;
        let params = 12 * (hidden as u64) * (hidden as u64) * 2;
        // Half-precision activations that must persist until the backward
        // pass; with recompute only the layer input is kept.
        let activation = (batch * seq * hidden) as u64 * 2;
        LayerCost {
            forward_flops: forward,
            backward_flops: 2.0 * forward,
            param_bytes: params,
            activation_bytes: activation,
            output_bytes: (batch * seq * hidden) as u64 * 2,
        }
    }

    /// Cost of an mT5 decoder layer (self attention + cross attention + MLP):
    /// roughly 4/3 of an encoder layer of the same width.
    #[must_use]
    pub fn decoder_layer(&self, hidden: usize, seq: usize, batch: usize) -> LayerCost {
        let base = self.transformer_layer(hidden, seq, batch);
        LayerCost {
            forward_flops: base.forward_flops * 4.0 / 3.0,
            backward_flops: base.backward_flops * 4.0 / 3.0,
            param_bytes: base.param_bytes * 4 / 3,
            activation_bytes: base.activation_bytes * 4 / 3,
            output_bytes: base.output_bytes,
        }
    }

    /// Cost of the (tied) token embedding plus output projection for a
    /// vocabulary of `vocab` entries: enormous parameter footprint, modest
    /// compute (`2 * b * s * h * V` for the logits GEMM).
    #[must_use]
    pub fn embedding_layer(
        &self,
        hidden: usize,
        vocab: usize,
        seq: usize,
        batch: usize,
    ) -> LayerCost {
        let (h, s, b, v) = (hidden as f64, seq as f64, batch as f64, vocab as f64);
        let forward = 2.0 * b * s * h * v;
        LayerCost {
            forward_flops: forward,
            backward_flops: 2.0 * forward,
            param_bytes: (vocab as u64) * (hidden as u64) * 2,
            activation_bytes: (batch * seq * hidden) as u64 * 2,
            output_bytes: (batch * seq * hidden) as u64 * 2,
        }
    }

    /// Per-device memory units of a layer when its parameters and optimizer
    /// state are sharded across `shards` devices.
    #[must_use]
    pub fn sharded_param_memory(&self, cost: &LayerCost, shards: usize) -> i64 {
        // Parameters + gradients + fp32 optimizer state: roughly 8x the
        // half-precision parameter bytes, spread across the shards.
        let total = cost.param_bytes.saturating_mul(8);
        self.memory_units(total / shards.max(1) as u64)
    }

    /// Activation memory units of one micro-batch through a layer.
    #[must_use]
    pub fn activation_memory(&self, cost: &LayerCost) -> i64 {
        self.memory_units(cost.activation_bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

/// Convenience: the total forward FLOPs of one GPT micro-batch (embedding +
/// all transformer layers), used for PFLOPS throughput reporting.
#[must_use]
pub fn gpt_micro_batch_flops(model: &ModelConfig, cost: &CostModel) -> f64 {
    let layer = cost.transformer_layer(model.hidden_size, model.seq_len, model.micro_batch_size);
    let embed = cost.embedding_layer(
        model.hidden_size,
        model.vocab_size,
        model.seq_len,
        model.micro_batch_size,
    );
    // Forward + backward (3x forward with recompute is a *time* effect; the
    // FLOP metric conventionally counts 3x forward as well when recompute is
    // enabled, matching Megatron-LM's reporting).
    3.0 * (layer.forward_flops * model.num_layers as f64 + embed.forward_flops)
}

/// Total forward FLOPs of one Flava micro-batch across both branches and the
/// cross encoder.
#[must_use]
pub fn flava_micro_batch_flops(config: &FlavaConfig, cost: &CostModel) -> f64 {
    let text = cost.transformer_layer(
        config.hidden_size,
        config.text_seq_len,
        config.micro_batch_size,
    );
    let vision = cost.transformer_layer(
        config.hidden_size,
        config.vision_seq_len,
        config.micro_batch_size,
    );
    let cross = cost.transformer_layer(
        config.hidden_size,
        config.text_seq_len + config.vision_seq_len,
        config.micro_batch_size,
    );
    text.forward_flops * config.text_layers as f64
        + vision.forward_flops * config.vision_layers as f64
        + cross.forward_flops * config.cross_layers as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::gpt_config_for_gpus;

    #[test]
    fn v100_profile_matches_testbed() {
        let device = DeviceProfile::v100();
        assert_eq!(device.memory_capacity_units(), 32);
        assert!(device.flops_per_second > 1e14);
    }

    #[test]
    fn time_units_scale_with_flops_and_never_vanish() {
        let cm = CostModel::paper_default();
        let small = cm.time_units(1e9);
        let large = cm.time_units(1e13);
        assert!(small >= 1);
        assert!(large > small);
        assert_eq!(cm.time_units(0.0), 0);
    }

    #[test]
    fn backward_is_three_times_forward_with_recompute() {
        let cm = CostModel::paper_default();
        let layer = cm.transformer_layer(4096, 1024, 1);
        let fwd = cm.forward_time(&layer);
        let bwd = cm.backward_time(&layer);
        let ratio = bwd as f64 / fwd as f64;
        assert!(
            (2.5..=3.5).contains(&ratio),
            "recompute backward/forward ratio {ratio} outside [2.5, 3.5]"
        );
    }

    #[test]
    fn embedding_is_memory_heavy_but_compute_light() {
        let cm = CostModel::paper_default();
        let gpt = gpt_config_for_gpus(4).unwrap();
        let layer = cm.transformer_layer(gpt.hidden_size, gpt.seq_len, 1);
        let embed = cm.embedding_layer(gpt.hidden_size, gpt.vocab_size, gpt.seq_len, 1);
        // Parameter footprint: the 1M-entry embedding dwarfs a single layer.
        assert!(embed.param_bytes > 20 * layer.param_bytes);
        // Compute: the embedding costs less than the whole 32-layer stack.
        assert!(embed.forward_flops < layer.forward_flops * gpt.num_layers as f64);
        // It is large enough that it cannot fit on a single V100 with
        // optimizer state, which is the paper's motivation for distributing
        // it (M-shape).
        let full_units = cm.sharded_param_memory(&embed, 1);
        assert!(full_units > cm.device.memory_capacity_units());
        let sharded_units = cm.sharded_param_memory(&embed, 4);
        assert!(sharded_units <= cm.device.memory_capacity_units());
    }

    #[test]
    fn decoder_layers_cost_more_than_encoder_layers() {
        let cm = CostModel::paper_default();
        let enc = cm.transformer_layer(1024, 1024, 1);
        let dec = cm.decoder_layer(1024, 1024, 1);
        assert!(dec.forward_flops > enc.forward_flops);
        assert!(dec.param_bytes > enc.param_bytes);
    }

    #[test]
    fn memory_units_round_up() {
        let cm = CostModel::paper_default();
        assert_eq!(cm.memory_units(0), 0);
        assert_eq!(cm.memory_units(1), 1);
        assert_eq!(cm.memory_units(1 << 30), 1);
        assert_eq!(cm.memory_units((1 << 30) + 1), 2);
    }

    #[test]
    fn flops_helpers_are_positive_and_ordered() {
        let cm = CostModel::paper_default();
        let gpt4 = gpt_config_for_gpus(4).unwrap();
        let gpt16 = gpt_config_for_gpus(16).unwrap();
        let small = gpt_micro_batch_flops(&gpt4, &cm);
        let large = gpt_micro_batch_flops(&gpt16, &cm);
        assert!(small > 0.0);
        assert!(large > small);
        let flava = flava_micro_batch_flops(&FlavaConfig::default(), &cm);
        assert!(flava > 0.0);
    }
}
