//! GPT layer graph: a large (multilingual) embedding, a stack of homogeneous
//! transformer layers and a tied language-model head.

use crate::config::ModelConfig;
use crate::cost::CostModel;
use crate::layer_graph::{LayerGraph, LayerKind};

/// Builds the GPT layer graph for `config`.
///
/// The embedding and the tied LM head are modelled as a single
/// [`LayerKind::Embedding`] node (they share the same parameter table), which
/// is how the paper's M-shape placement treats them: one memory-dominant
/// operator distributed across all devices.
#[must_use]
pub fn build_gpt(config: &ModelConfig, cost: &CostModel) -> LayerGraph {
    let mut graph = LayerGraph::new(format!(
        "gpt-{}l-{}h",
        config.num_layers, config.hidden_size
    ));
    let embed_cost = cost.embedding_layer(
        config.hidden_size,
        config.vocab_size,
        config.seq_len,
        config.micro_batch_size,
    );
    let embed = graph.add_layer("embedding", LayerKind::Embedding, embed_cost, []);
    let mut prev = embed;
    for i in 0..config.num_layers {
        let layer_cost =
            cost.transformer_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
        prev = graph.add_layer(
            format!("layer{i:02}"),
            LayerKind::Transformer,
            layer_cost,
            [prev],
        );
    }
    // The LM head reuses the embedding table; model it as a light head layer
    // that depends on both the last transformer layer and the embedding.
    let head_cost =
        cost.transformer_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
    let head_cost = crate::cost::LayerCost {
        forward_flops: head_cost.forward_flops * 0.1,
        backward_flops: head_cost.backward_flops * 0.1,
        param_bytes: 0,
        activation_bytes: head_cost.activation_bytes / 4,
        output_bytes: head_cost.output_bytes / 4,
    };
    graph.add_layer("lm-head", LayerKind::Head, head_cost, [prev, embed]);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::gpt_config_for_gpus;

    #[test]
    fn gpt_graph_has_embedding_layers_and_head() {
        let config = gpt_config_for_gpus(4).unwrap();
        let graph = build_gpt(&config, &CostModel::paper_default());
        assert_eq!(graph.len(), config.num_layers + 2);
        assert!(graph.is_well_formed());
        assert_eq!(graph.layers_of_kind(LayerKind::Embedding).len(), 1);
        assert_eq!(
            graph.layers_of_kind(LayerKind::Transformer).len(),
            config.num_layers
        );
        assert_eq!(graph.layers_of_kind(LayerKind::Head).len(), 1);
    }

    #[test]
    fn gpt_layers_form_a_chain_through_the_stack() {
        let config = gpt_config_for_gpus(4).unwrap();
        let graph = build_gpt(&config, &CostModel::paper_default());
        for i in 2..graph.len() - 1 {
            assert_eq!(graph.layers[i].deps, vec![i - 1]);
        }
        // The head depends on the last layer and the embedding.
        let head = graph.layers.last().unwrap();
        assert_eq!(head.deps.len(), 2);
    }

    #[test]
    fn embedding_dominates_parameter_bytes() {
        let config = gpt_config_for_gpus(4).unwrap();
        let graph = build_gpt(&config, &CostModel::paper_default());
        let embed = &graph.layers[0];
        let one_layer = &graph.layers[1];
        assert!(embed.cost.param_bytes > 10 * one_layer.cost.param_bytes);
        assert!(embed.cost.forward_flops < graph.total_forward_flops() / 2.0);
    }

    #[test]
    fn larger_configs_cost_more() {
        let cm = CostModel::paper_default();
        let small = build_gpt(&gpt_config_for_gpus(4).unwrap(), &cm);
        let large = build_gpt(&gpt_config_for_gpus(16).unwrap(), &cm);
        assert!(large.total_forward_flops() > small.total_forward_flops());
        assert!(large.total_param_bytes() > small.total_param_bytes());
    }
}
