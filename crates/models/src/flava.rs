//! Flava layer graph: independent text and vision encoder branches whose
//! outputs meet in a multi-modal cross encoder (the 2-branch structure behind
//! the paper's K-shape placement).

use crate::config::FlavaConfig;
use crate::cost::CostModel;
use crate::layer_graph::{LayerGraph, LayerKind};

/// Builds the Flava layer graph for `config`.
#[must_use]
pub fn build_flava(config: &FlavaConfig, cost: &CostModel) -> LayerGraph {
    let mut graph = LayerGraph::new(format!(
        "flava-{}t-{}v-{}x",
        config.text_layers, config.vision_layers, config.cross_layers
    ));

    let mut prev_text: Option<usize> = None;
    for i in 0..config.text_layers {
        let layer_cost = cost.transformer_layer(
            config.hidden_size,
            config.text_seq_len,
            config.micro_batch_size,
        );
        let deps: Vec<usize> = prev_text.into_iter().collect();
        prev_text = Some(graph.add_layer(
            format!("text{i:02}"),
            LayerKind::TextEncoder,
            layer_cost,
            deps,
        ));
    }
    let mut prev_vision: Option<usize> = None;
    for i in 0..config.vision_layers {
        let layer_cost = cost.transformer_layer(
            config.hidden_size,
            config.vision_seq_len,
            config.micro_batch_size,
        );
        let deps: Vec<usize> = prev_vision.into_iter().collect();
        prev_vision = Some(graph.add_layer(
            format!("vision{i:02}"),
            LayerKind::VisionEncoder,
            layer_cost,
            deps,
        ));
    }
    let mut prev_cross: Vec<usize> = vec![
        prev_text.expect("text branch has at least one layer"),
        prev_vision.expect("vision branch has at least one layer"),
    ];
    for i in 0..config.cross_layers {
        let layer_cost = cost.transformer_layer(
            config.hidden_size,
            config.text_seq_len + config.vision_seq_len,
            config.micro_batch_size,
        );
        let idx = graph.add_layer(
            format!("cross{i:02}"),
            LayerKind::CrossEncoder,
            layer_cost,
            prev_cross.clone(),
        );
        prev_cross = vec![idx];
    }
    let head_cost = cost.transformer_layer(
        config.hidden_size,
        config.text_seq_len + config.vision_seq_len,
        config.micro_batch_size,
    );
    let head_cost = crate::cost::LayerCost {
        forward_flops: head_cost.forward_flops * 0.05,
        backward_flops: head_cost.backward_flops * 0.05,
        param_bytes: 0,
        activation_bytes: head_cost.activation_bytes / 8,
        output_bytes: head_cost.output_bytes / 8,
    };
    graph.add_layer("head", LayerKind::Head, head_cost, prev_cross);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flava_graph_has_two_independent_branches() {
        let config = FlavaConfig::default();
        let graph = build_flava(&config, &CostModel::paper_default());
        assert!(graph.is_well_formed());
        let text = graph.layers_of_kind(LayerKind::TextEncoder);
        let vision = graph.layers_of_kind(LayerKind::VisionEncoder);
        assert_eq!(text.len(), config.text_layers);
        assert_eq!(vision.len(), config.vision_layers);
        // The first layers of both branches have no dependencies: they can
        // run concurrently, which is what the K-shape exploits.
        assert!(graph.layers[text[0]].deps.is_empty());
        assert!(graph.layers[vision[0]].deps.is_empty());
    }

    #[test]
    fn cross_encoder_joins_both_branches() {
        let config = FlavaConfig::default();
        let graph = build_flava(&config, &CostModel::paper_default());
        let cross = graph.layers_of_kind(LayerKind::CrossEncoder);
        assert_eq!(cross.len(), config.cross_layers);
        let first_cross = &graph.layers[cross[0]];
        assert_eq!(first_cross.deps.len(), 2);
    }

    #[test]
    fn cross_layers_are_the_most_expensive() {
        let config = FlavaConfig::default();
        let graph = build_flava(&config, &CostModel::paper_default());
        let text = graph.layers_of_kind(LayerKind::TextEncoder)[0];
        let cross = graph.layers_of_kind(LayerKind::CrossEncoder)[0];
        assert!(graph.layers[cross].cost.forward_flops > graph.layers[text].cost.forward_flops);
    }

    #[test]
    fn total_layer_count_matches_config() {
        let config = FlavaConfig::default();
        let graph = build_flava(&config, &CostModel::paper_default());
        // text + vision + cross + head
        assert_eq!(graph.len(), config.total_layers() + 1);
    }
}
