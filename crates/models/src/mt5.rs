//! mT5 layer graph: a shared multilingual embedding, an encoder stack and a
//! decoder stack that attends to the encoder output.

use crate::config::ModelConfig;
use crate::cost::CostModel;
use crate::layer_graph::{LayerGraph, LayerKind};

/// Builds the mT5 layer graph for `config`.
///
/// `config.num_layers` is split evenly between the encoder and decoder. Both
/// stacks read the shared embedding (the paper's NN-shape distributes that
/// embedding across all devices); every decoder layer additionally depends on
/// the final encoder layer through cross-attention.
#[must_use]
pub fn build_mt5(config: &ModelConfig, cost: &CostModel) -> LayerGraph {
    let mut graph = LayerGraph::new(format!(
        "mt5-{}l-{}h",
        config.num_layers, config.hidden_size
    ));
    let embed_cost = cost.embedding_layer(
        config.hidden_size,
        config.vocab_size,
        config.seq_len,
        config.micro_batch_size,
    );
    let embed = graph.add_layer("shared-embedding", LayerKind::Embedding, embed_cost, []);

    let encoder_layers = config.num_layers / 2;
    let decoder_layers = config.num_layers - encoder_layers;

    let mut prev = embed;
    let mut last_encoder = embed;
    for i in 0..encoder_layers {
        let layer_cost =
            cost.transformer_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
        prev = graph.add_layer(format!("enc{i:02}"), LayerKind::Encoder, layer_cost, [prev]);
        last_encoder = prev;
    }
    let mut prev_dec = embed;
    for i in 0..decoder_layers {
        let layer_cost =
            cost.decoder_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
        // Every decoder layer attends over the full encoder output (cross
        // attention), so each depends on the last encoder layer as well.
        let deps = vec![prev_dec, last_encoder];
        prev_dec = graph.add_layer(format!("dec{i:02}"), LayerKind::Decoder, layer_cost, deps);
    }
    let head_cost =
        cost.transformer_layer(config.hidden_size, config.seq_len, config.micro_batch_size);
    let head_cost = crate::cost::LayerCost {
        forward_flops: head_cost.forward_flops * 0.1,
        backward_flops: head_cost.backward_flops * 0.1,
        param_bytes: 0,
        activation_bytes: head_cost.activation_bytes / 4,
        output_bytes: head_cost.output_bytes / 4,
    };
    graph.add_layer("lm-head", LayerKind::Head, head_cost, [prev_dec, embed]);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::mt5_config_for_gpus;

    #[test]
    fn mt5_graph_splits_layers_between_encoder_and_decoder() {
        let config = mt5_config_for_gpus(4).unwrap();
        let graph = build_mt5(&config, &CostModel::paper_default());
        assert!(graph.is_well_formed());
        let enc = graph.layers_of_kind(LayerKind::Encoder).len();
        let dec = graph.layers_of_kind(LayerKind::Decoder).len();
        assert_eq!(enc + dec, config.num_layers);
        assert!((enc as i64 - dec as i64).abs() <= 1);
        assert_eq!(graph.layers_of_kind(LayerKind::Embedding).len(), 1);
    }

    #[test]
    fn decoder_layers_depend_on_the_encoder_output() {
        let config = mt5_config_for_gpus(4).unwrap();
        let graph = build_mt5(&config, &CostModel::paper_default());
        let encoder_last = *graph.layers_of_kind(LayerKind::Encoder).last().unwrap();
        for &idx in &graph.layers_of_kind(LayerKind::Decoder) {
            assert!(
                graph.layers[idx].deps.contains(&encoder_last),
                "decoder layer {idx} misses cross-attention dependency"
            );
        }
    }

    #[test]
    fn decoder_layers_are_heavier_than_encoder_layers() {
        let config = mt5_config_for_gpus(4).unwrap();
        let graph = build_mt5(&config, &CostModel::paper_default());
        let enc = graph.layers_of_kind(LayerKind::Encoder)[0];
        let dec = graph.layers_of_kind(LayerKind::Decoder)[0];
        assert!(graph.layers[dec].cost.forward_flops > graph.layers[enc].cost.forward_flops);
    }

    #[test]
    fn both_stacks_read_the_shared_embedding() {
        let config = mt5_config_for_gpus(4).unwrap();
        let graph = build_mt5(&config, &CostModel::paper_default());
        let first_enc = graph.layers_of_kind(LayerKind::Encoder)[0];
        let first_dec = graph.layers_of_kind(LayerKind::Decoder)[0];
        assert!(graph.layers[first_enc].deps.contains(&0));
        assert!(graph.layers[first_dec].deps.contains(&0));
    }
}
