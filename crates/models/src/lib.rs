//! Analytical DNN model zoo for the Tessel reproduction.
//!
//! The paper evaluates Tessel on three models — GPT, mT5 and Flava — captured
//! through TorchScript and profiled on V100 GPUs. This crate replaces that
//! pipeline with an *analytical* cost model: each layer's FLOPs, parameter bytes
//! and activation bytes are derived from the architecture hyper-parameters of
//! Table III, and converted into the integer time/memory units consumed by
//! the Tessel search. The relative magnitudes (huge, compute-light embedding
//! layers versus compute-heavy transformer layers; recompute making backward
//! roughly 3x forward) are what drive the paper's results, and they are
//! preserved here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod cost;
pub mod flava;
pub mod gpt;
pub mod layer_graph;
pub mod mt5;

pub use config::{FlavaConfig, ModelConfig, TableIIIEntry, GPT_TABLE_III, MT5_TABLE_III};
pub use cost::{CostModel, DeviceProfile, LayerCost};
pub use layer_graph::{LayerGraph, LayerKind, LayerNode};
