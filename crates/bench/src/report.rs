//! Machine-readable performance tracking: `BENCH_search.json`.
//!
//! The schedule-search pipeline is the hot path of the whole system, so its
//! perf trajectory is tracked in a single JSON file at the repository root
//! (override the location with the `TESSEL_BENCH_JSON` environment
//! variable). Three emitters update it section-by-section — the
//! `bench_search` binary and the `solver_scaling` / `schedule_search`
//! criterion benches — each replacing only its own key, so the file
//! accumulates a consistent snapshot no matter which entry point ran last.
//!
//! Sections:
//!
//! * `solver_scaling` — branch-and-bound nodes per second: the seed
//!   (allocation-heavy) solver vs the current allocation-free one, single-
//!   and multi-threaded.
//! * `solver_parallel_scaling` — work-stealing search quality: explored-node
//!   count, node ratio vs serial and shared-memo dedup per thread count.
//!   Node counts are meaningful on any host; the wall-clock columns need a
//!   multi-core box (`host.cpus` records the measuring host).
//! * `solver_thread_scaling` — the 1→N wall-clock curve of the lock-free
//!   work-stealing solver plus its contention counters (steals, failed
//!   steals, CAS retries, memo drops); interpret against `host.cpus`.
//! * `portfolio_search` — end-to-end `TesselSearch::run` wall-clock on the
//!   Fig. 8 synthetic shapes with 1 vs 4 portfolio workers.
//! * `service_throughput` — requests/s and cache hit rate of the in-process
//!   schedule-search service under repeat traffic (written by the
//!   `bench_service` binary).
//! * `request_stage_latency` — per-stage median latency of the same repeat
//!   workload, computed from the service's flight recorder (the per-request
//!   stage breakdowns behind `GET /v1/debug/requests`); shows *where* the
//!   request time goes, not just how much there is.
//! * `http_transport` — socket-level daemon throughput with a fresh TCP
//!   connection per request vs one kept-alive connection (also written by
//!   `bench_service`).
//! * `criterion_<name>` — raw measurements of the corresponding criterion
//!   bench run.

use crate::legacy_solver::legacy_minimize;
use crate::time_optimal_instance;
use serde::Serialize;
use std::time::Instant;
use tessel_core::search::{SearchConfig, TesselSearch};
use tessel_placement::shapes::{synthetic_placement, ShapeKind};
use tessel_solver::{Solver, SolverConfig};

/// One row of the `solver_scaling` section.
#[derive(Debug, Clone, Serialize)]
pub struct SolverScalingRow {
    /// Instance description.
    pub instance: String,
    /// `"seed"` (allocation-heavy baseline), or `"current"`.
    pub engine: String,
    /// Solver threads (1 for the seed engine).
    pub threads: usize,
    /// Branch nodes expanded.
    pub nodes: u64,
    /// Wall-clock seconds of the solve.
    pub seconds: f64,
    /// Nodes per second.
    pub nodes_per_sec: f64,
    /// Proved optimal makespan.
    pub makespan: Option<u64>,
}

/// One row of the `portfolio_search` section.
#[derive(Debug, Clone, Serialize)]
pub struct PortfolioRow {
    /// Placement shape (Fig. 8 synthetic set).
    pub shape: String,
    /// Portfolio worker threads.
    pub threads: usize,
    /// End-to-end `TesselSearch::run` wall-clock seconds.
    pub seconds: f64,
    /// Repetend period found (must not depend on the thread count).
    pub period: u64,
    /// Wall-clock speedup relative to the single-threaded row of the same
    /// shape.
    pub speedup_vs_serial: f64,
}

/// Path of the tracked JSON file.
///
/// Anchored to the workspace root at compile time: `cargo bench` runs bench
/// binaries with the *package* directory as their working directory, so a
/// bare relative path would scatter copies under `crates/bench/`.
#[must_use]
pub fn bench_json_path() -> std::path::PathBuf {
    std::env::var_os("TESSEL_BENCH_JSON")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_search.json")
        })
}

/// Replaces one top-level section of `BENCH_search.json`, keeping the others.
pub fn write_section<T: Serialize>(section: &str, payload: &T) {
    write_section_to(&bench_json_path(), section, payload);
}

/// [`write_section`] against an explicit file, for callers (and tests) that
/// should not touch the tracked snapshot.
pub fn write_section_to<T: Serialize>(path: &std::path::Path, section: &str, payload: &T) {
    let mut entries: Vec<(String, serde::Value)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde::Value>(&text).ok())
        .and_then(|value| value.as_map().map(<[(String, serde::Value)]>::to_vec))
        .unwrap_or_default();
    let rendered = match serde_json::to_string(payload) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("warning: cannot serialise section {section}: {e}");
            return;
        }
    };
    let Ok(value) = serde_json::from_str::<serde::Value>(&rendered) else {
        eprintln!("warning: cannot re-parse section {section}");
        return;
    };
    match entries.iter_mut().find(|(k, _)| k == section) {
        Some((_, slot)) => *slot = value,
        None => entries.push((section.to_string(), value)),
    }
    match serde_json::to_string_pretty(&serde::Value::Map(entries)) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("warning: cannot write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {}: {e}", path.display()),
    }
}

/// Measures branch-and-bound node throughput: the seed algorithm vs the
/// current solver, single-threaded and with 4 root-split workers, on
/// whole-schedule (time-optimal) V-shape instances.
#[must_use]
pub fn solver_scaling_rows() -> Vec<SolverScalingRow> {
    let placement = synthetic_placement(ShapeKind::V, 4).expect("placement");
    let mut rows = Vec::new();
    // Best-of-N to dampen scheduler noise (the CI host may be a single
    // shared core).
    const REPS: usize = 2;
    for micro_batches in [5usize, 6] {
        let instance = time_optimal_instance(&placement, micro_batches).expect("instance");
        let label = format!("time_optimal/v4/mb{micro_batches}");

        let mut best: Option<SolverScalingRow> = None;
        for _ in 0..REPS {
            let exhaustive = SolverConfig::exhaustive();
            let legacy =
                legacy_minimize(&instance, u64::MAX, None, exhaustive.dominance_memo_limit);
            let row = SolverScalingRow {
                instance: label.clone(),
                engine: "seed".into(),
                threads: 1,
                nodes: legacy.nodes,
                seconds: legacy.elapsed.as_secs_f64(),
                nodes_per_sec: legacy.nodes as f64 / legacy.elapsed.as_secs_f64().max(1e-9),
                makespan: legacy.makespan,
            };
            if best
                .as_ref()
                .is_none_or(|b| row.nodes_per_sec > b.nodes_per_sec)
            {
                best = Some(row);
            }
        }
        rows.extend(best);

        for threads in [1usize, 4] {
            let mut best: Option<SolverScalingRow> = None;
            for _ in 0..REPS {
                let solver = Solver::new(SolverConfig::exhaustive().with_threads(threads));
                let started = Instant::now();
                let outcome = solver.minimize(&instance).expect("solve");
                let elapsed = started.elapsed();
                let stats = outcome.stats();
                let row = SolverScalingRow {
                    instance: label.clone(),
                    engine: "current".into(),
                    threads,
                    nodes: stats.nodes,
                    seconds: elapsed.as_secs_f64(),
                    nodes_per_sec: stats.nodes as f64 / elapsed.as_secs_f64().max(1e-9),
                    makespan: outcome.solution().map(tessel_solver::Solution::makespan),
                };
                if best
                    .as_ref()
                    .is_none_or(|b| row.nodes_per_sec > b.nodes_per_sec)
                {
                    best = Some(row);
                }
            }
            rows.extend(best);
        }
    }
    rows
}

/// One row of the `solver_parallel_scaling` section.
///
/// The interesting column is `nodes_vs_serial`: with per-worker *private*
/// dominance memos the 4-thread search re-explored ~2.7× the serial node
/// count on the mb6 instance; the shared sharded table must keep the ratio
/// near 1. `memo_dedup` reports which fraction of dominance prunes were
/// served by a record another worker inserted — the sharing actually paying
/// off, not just private-memo hits that would have happened anyway.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelScalingRow {
    /// Instance description.
    pub instance: String,
    /// Solver worker threads.
    pub threads: usize,
    /// Branch nodes expanded (all workers combined).
    pub nodes: u64,
    /// `nodes` of this row divided by the single-threaded row's.
    pub nodes_vs_serial: f64,
    /// Nodes pruned by dominance.
    pub pruned_dominance: u64,
    /// Dominance prunes served by another worker's record.
    pub shared_memo_hits: u64,
    /// `shared_memo_hits / pruned_dominance` (0 when no dominance prunes).
    pub memo_dedup: f64,
    /// Subtree tasks stolen between workers.
    pub steals: u64,
    /// Wall-clock seconds (only comparable on a multi-core host).
    pub seconds: f64,
    /// Proved optimal makespan — must be identical across thread counts.
    pub makespan: Option<u64>,
}

/// Measures the work-stealing parallel solver against the serial search on
/// the whole-schedule (time-optimal) V-shape instances: explored-node counts
/// and shared-memo dedup per thread count.
#[must_use]
pub fn solver_parallel_scaling_rows() -> Vec<ParallelScalingRow> {
    let placement = synthetic_placement(ShapeKind::V, 4).expect("placement");
    let mut rows = Vec::new();
    for micro_batches in [5usize, 6] {
        let instance = time_optimal_instance(&placement, micro_batches).expect("instance");
        let label = format!("time_optimal/v4/mb{micro_batches}");
        let mut serial_nodes = None;
        for threads in [1usize, 2, 4] {
            let solver = Solver::new(SolverConfig::exhaustive().with_threads(threads));
            let started = Instant::now();
            let outcome = solver.minimize(&instance).expect("solve");
            let seconds = started.elapsed().as_secs_f64();
            let stats = outcome.stats();
            assert!(
                stats.complete,
                "parallel scaling rows must prove optimality"
            );
            let baseline = *serial_nodes.get_or_insert(stats.nodes);
            rows.push(ParallelScalingRow {
                instance: label.clone(),
                threads,
                nodes: stats.nodes,
                nodes_vs_serial: stats.nodes as f64 / baseline.max(1) as f64,
                pruned_dominance: stats.pruned_dominance,
                shared_memo_hits: stats.shared_memo_hits,
                memo_dedup: stats.shared_memo_hits as f64 / (stats.pruned_dominance.max(1)) as f64,
                steals: stats.steals,
                seconds,
                makespan: outcome.solution().map(tessel_solver::Solution::makespan),
            });
        }
    }
    rows
}

/// One row of the `solver_thread_scaling` section.
///
/// The 1→N wall-clock curve of the lock-free work-stealing solver, with the
/// contention counters that explain it: `steals` (successful load balancing),
/// `steal_failures` (lost deque-`top` races), `cas_retries` (lost claims in
/// the shared dominance table) and `memo_drops` (bounded-probe memo
/// drops). Wall-clock speedups need a multi-core host — interpret `seconds`
/// against the recorded `host.cpus`; on a single core the curve only shows
/// the synchronisation overhead floor, which the lock-free structures keep
/// flat. The serial warmstart probe is disabled for these rows so every
/// thread count exercises the real worker pool.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadScalingRow {
    /// Instance description.
    pub instance: String,
    /// Solver worker threads.
    pub threads: usize,
    /// Branch nodes expanded (all workers combined).
    pub nodes: u64,
    /// Wall-clock seconds of the solve (best of 2 runs).
    pub seconds: f64,
    /// Nodes per second.
    pub nodes_per_sec: f64,
    /// Serial wall-clock divided by this row's (>1 means faster than 1t).
    pub speedup_vs_serial: f64,
    /// Subtree tasks stolen between workers.
    pub steals: u64,
    /// Steal attempts that lost the deque-`top` race.
    pub steal_failures: u64,
    /// Lost CAS races in the lock-free shared dominance table.
    pub cas_retries: u64,
    /// Finish vectors the bounded-probe table declined to memoise.
    pub memo_drops: u64,
    /// Proved optimal makespan — must be identical across thread counts.
    pub makespan: Option<u64>,
}

/// Measures the 1→N thread-scaling curve of the lock-free work-stealing
/// solver on the whole-schedule (time-optimal) V-shape instances.
#[must_use]
pub fn solver_thread_scaling_rows() -> Vec<ThreadScalingRow> {
    let placement = synthetic_placement(ShapeKind::V, 4).expect("placement");
    let mut rows = Vec::new();
    const REPS: usize = 2;
    for micro_batches in [5usize, 6] {
        let instance = time_optimal_instance(&placement, micro_batches).expect("instance");
        let label = format!("time_optimal/v4/mb{micro_batches}");
        let mut serial = None;
        for threads in [1usize, 2, 4, 8] {
            let config = SolverConfig::exhaustive()
                .with_threads(threads)
                .with_serial_warmstart(0);
            let mut best: Option<ThreadScalingRow> = None;
            for _ in 0..REPS {
                let started = Instant::now();
                let outcome = Solver::new(config.clone())
                    .minimize(&instance)
                    .expect("solve");
                let seconds = started.elapsed().as_secs_f64();
                let stats = outcome.stats();
                assert!(stats.complete, "thread scaling rows must prove optimality");
                let row = ThreadScalingRow {
                    instance: label.clone(),
                    threads,
                    nodes: stats.nodes,
                    seconds,
                    nodes_per_sec: stats.nodes as f64 / seconds.max(1e-9),
                    speedup_vs_serial: 0.0,
                    steals: stats.steals,
                    steal_failures: stats.steal_failures,
                    cas_retries: stats.cas_retries,
                    memo_drops: stats.memo_drops,
                    makespan: outcome.solution().map(tessel_solver::Solution::makespan),
                };
                if best.as_ref().is_none_or(|b| row.seconds < b.seconds) {
                    best = Some(row);
                }
            }
            let mut row = best.expect("at least one run");
            let (serial_seconds, serial_makespan) =
                *serial.get_or_insert((row.seconds, row.makespan));
            assert_eq!(
                row.makespan, serial_makespan,
                "thread count changed the proved makespan on {label}"
            );
            row.speedup_vs_serial = serial_seconds / row.seconds.max(1e-9);
            rows.push(row);
        }
    }
    rows
}

/// Runs the 1→N thread-scaling measurement and updates its section.
pub fn emit_thread_scaling() {
    write_section("host", &HostInfo::capture());
    let rows = solver_thread_scaling_rows();
    write_section("solver_thread_scaling", &rows);
    for row in &rows {
        println!(
            "solver_thread_scaling {:<22} threads={} {:>10} nodes {:>7.3}s \
             ({:.2}x serial) steals={:>5} steal_fail={:>4} cas_retries={:>4} \
             memo_drops={:>4} makespan={:?}",
            row.instance,
            row.threads,
            row.nodes,
            row.seconds,
            row.speedup_vs_serial,
            row.steals,
            row.steal_failures,
            row.cas_retries,
            row.memo_drops,
            row.makespan
        );
    }
}

/// The search configuration used for the portfolio wall-clock comparison:
/// the Fig. 8 experiment configuration, bounded so a full run stays in the
/// seconds range single-threaded.
#[must_use]
pub fn portfolio_bench_config(threads: usize) -> SearchConfig {
    let mut config = crate::experiment_search_config(8)
        .with_lazy(false)
        .with_portfolio_threads(threads);
    config.max_repetend_micro_batches = 4;
    config.candidate_limit = Some(600);
    config
}

/// Measures end-to-end `TesselSearch::run` wall-clock on the 8-device
/// synthetic shapes with 1 vs 4 portfolio workers (best of 2 runs each).
///
/// The X-shape row is the headline: its candidate portfolio mixes expensive
/// dead-end candidates with cheap good ones, so the shared bound lets the
/// 4-worker pool skip most of the dead-end work — a >2x wall-clock win even
/// on a single core. The other shapes early-exit at the zero-bubble lower
/// bound within milliseconds and only benefit on multi-core hosts.
#[must_use]
pub fn portfolio_rows() -> Vec<PortfolioRow> {
    let mut rows = Vec::new();
    for shape in [ShapeKind::X, ShapeKind::M, ShapeKind::NN, ShapeKind::K] {
        let placement = synthetic_placement(shape, 8).expect("placement");
        let mut serial_seconds = None;
        for threads in [1usize, 4] {
            let search = TesselSearch::new(portfolio_bench_config(threads));
            let mut best: Option<(f64, u64)> = None;
            for _ in 0..2 {
                let started = Instant::now();
                let outcome = search.run(&placement).expect("search");
                let seconds = started.elapsed().as_secs_f64();
                if best.is_none_or(|(s, _)| seconds < s) {
                    best = Some((seconds, outcome.repetend.period));
                }
            }
            let (seconds, period) = best.expect("at least one run");
            let baseline = *serial_seconds.get_or_insert(seconds);
            rows.push(PortfolioRow {
                shape: shape.to_string(),
                threads,
                seconds,
                period,
                speedup_vs_serial: baseline / seconds.max(1e-9),
            });
        }
    }
    rows
}

/// One row of the `service_throughput` section.
#[derive(Debug, Clone, Serialize)]
pub struct ServiceThroughputRow {
    /// Workload description.
    pub workload: String,
    /// Search requests issued.
    pub requests: u64,
    /// Requests served from the result cache (including device-permuted
    /// variants that hit via the canonical fingerprint).
    pub cache_hits: u64,
    /// Requests that ran a full search.
    pub cache_misses: u64,
    /// Hit rate over all requests.
    pub hit_rate: f64,
    /// Wall-clock seconds for the whole workload.
    pub seconds: f64,
    /// Requests per second.
    pub requests_per_sec: f64,
    /// Median request latency in milliseconds (histogram bucket bound).
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds (bucket bound).
    pub p99_ms: f64,
}

/// One row of the `request_stage_latency` section: the latency distribution
/// of a single request stage across the whole repeat workload, read back
/// from the service's flight recorder.
#[derive(Debug, Clone, Serialize)]
pub struct StageLatencyRow {
    /// Stage name (the span taxonomy in `docs/ARCHITECTURE.md`).
    pub stage: String,
    /// Requests whose flight record contains the stage.
    pub samples: u64,
    /// Median stage latency in milliseconds.
    pub median_ms: f64,
    /// Worst stage latency in milliseconds.
    pub max_ms: f64,
}

/// The two result sets of the in-process service workload: aggregate
/// throughput per shape plus the per-stage latency medians recovered from
/// the flight recorder afterwards.
#[derive(Debug, Clone)]
pub struct ServiceBenchResults {
    /// The `service_throughput` section rows.
    pub throughput: Vec<ServiceThroughputRow>,
    /// The `request_stage_latency` section rows.
    pub stage_latency: Vec<StageLatencyRow>,
}

/// Measures the in-process schedule-search service under repeat traffic:
/// every synthetic 4-device shape is requested `repeats` times — the first
/// request pays the full search, later ones (including device-permuted
/// variants) must hit the canonical-fingerprint cache — and the aggregate
/// requests/s and hit rate are recorded. After each shape's workload the
/// service's flight recorder is drained into per-stage latency samples.
#[must_use]
pub fn service_rows(repeats: usize) -> ServiceBenchResults {
    use tessel_service::wire::SearchRequest;
    use tessel_service::{ScheduleService, ServiceConfig};

    let mut rows = Vec::new();
    let mut stage_samples: Vec<(String, Vec<u64>)> = Vec::new();
    for shape in [
        ShapeKind::V,
        ShapeKind::X,
        ShapeKind::M,
        ShapeKind::NN,
        ShapeKind::K,
    ] {
        let placement = synthetic_placement(shape, 4).expect("placement");
        let service = ScheduleService::new(ServiceConfig {
            default_micro_batches: 8,
            default_max_repetend: 3,
            candidate_limit: Some(600),
            ..ServiceConfig::default()
        })
        .expect("service");
        let devices = placement.num_devices();
        let started = Instant::now();
        for i in 0..repeats.max(1) {
            // Every other repeat rotates the device labels: those requests
            // can only hit through canonical fingerprinting.
            let variant = if i % 2 == 1 {
                let rotation: Vec<usize> = (0..devices).map(|d| (d + 1) % devices).collect();
                let order: Vec<usize> = (0..placement.num_blocks()).collect();
                placement.permuted(&rotation, &order).expect("permutation")
            } else {
                placement.clone()
            };
            service
                .search(&SearchRequest::for_placement(variant))
                .expect("search");
        }
        let seconds = started.elapsed().as_secs_f64();
        let snapshot = service.metrics_snapshot();
        rows.push(ServiceThroughputRow {
            workload: format!("{shape}-4dev-x{}-rotating", repeats.max(1)),
            requests: snapshot.requests,
            cache_hits: snapshot.cache_hits,
            cache_misses: snapshot.cache_misses,
            hit_rate: snapshot.hit_rate,
            seconds,
            requests_per_sec: snapshot.requests as f64 / seconds.max(1e-9),
            p50_ms: snapshot.latency_p50_ms,
            p99_ms: snapshot.latency_p99_ms,
        });
        // Drain this shape's flight records into the per-stage sample pools
        // before the service (and its recorder) is dropped.
        for record in service.flight_recorder().recent() {
            for stage in &record.stages {
                match stage_samples
                    .iter_mut()
                    .find(|(name, _)| *name == stage.name)
                {
                    Some((_, samples)) => samples.push(stage.micros),
                    None => stage_samples.push((stage.name.clone(), vec![stage.micros])),
                }
            }
        }
    }
    ServiceBenchResults {
        throughput: rows,
        stage_latency: stage_latency_rows(stage_samples),
    }
}

/// Collapses per-stage sample pools into [`StageLatencyRow`]s, ordered by the
/// canonical stage taxonomy (unknown stage names sort last, alphabetically).
fn stage_latency_rows(stage_samples: Vec<(String, Vec<u64>)>) -> Vec<StageLatencyRow> {
    use tessel_service::metrics::STAGE_LABELS;

    let mut rows: Vec<StageLatencyRow> = stage_samples
        .into_iter()
        .map(|(stage, mut samples)| {
            samples.sort_unstable();
            let mid = samples.len() / 2;
            let median_micros = if samples.len() % 2 == 0 {
                (samples[mid - 1] + samples[mid]) as f64 / 2.0
            } else {
                samples[mid] as f64
            };
            StageLatencyRow {
                stage,
                samples: samples.len() as u64,
                median_ms: median_micros / 1e3,
                max_ms: *samples.last().expect("non-empty sample pool") as f64 / 1e3,
            }
        })
        .collect();
    let rank = |stage: &str| {
        STAGE_LABELS
            .iter()
            .position(|&known| known == stage)
            .unwrap_or(STAGE_LABELS.len())
    };
    rows.sort_by(|a, b| {
        rank(&a.stage)
            .cmp(&rank(&b.stage))
            .then_with(|| a.stage.cmp(&b.stage))
    });
    rows
}

/// One row of the `http_transport` section: socket-level daemon throughput
/// in one connection mode.
#[derive(Debug, Clone, Serialize)]
pub struct TransportThroughputRow {
    /// Workload description (`…/close-per-request` or `…/keepalive`).
    pub workload: String,
    /// Requests issued (all cache hits; the transport is what is measured).
    pub requests: u64,
    /// Wall-clock seconds for the whole workload.
    pub seconds: f64,
    /// Requests per second.
    pub requests_per_sec: f64,
    /// TCP connections the workload opened against the daemon.
    pub connections: u64,
    /// Requests that reused an already-open connection (keep-alive).
    pub keepalive_reuses: u64,
}

/// Measures the daemon over real sockets in both connection modes: a fresh
/// TCP connection per request (the pre-event-loop behaviour, still available
/// via `Connection: close`) vs one kept-alive connection carrying every
/// request. The cache is warmed first so the numbers isolate transport cost,
/// not search cost.
#[must_use]
pub fn transport_rows(requests: usize) -> Vec<TransportThroughputRow> {
    use std::sync::Arc;
    use tessel_service::http::http_call;
    use tessel_service::wire::SearchRequest;
    use tessel_service::{HttpClient, HttpServer, ScheduleService, ServerConfig, ServiceConfig};

    let placement = synthetic_placement(ShapeKind::V, 4).expect("placement");
    let service = ScheduleService::new(ServiceConfig {
        default_micro_batches: 8,
        default_max_repetend: 3,
        candidate_limit: Some(600),
        ..ServiceConfig::default()
    })
    .expect("service");
    let server = HttpServer::serve(
        Arc::new(service),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr().to_string();
    let body = serde_json::to_string(&SearchRequest::for_placement(placement)).expect("request");

    // Warm the cache so both modes measure the transport, not the search.
    let (status, warm) = http_call(&addr, "POST", "/v1/search", Some(&body)).expect("warmup");
    assert_eq!(status, 200, "warmup failed: {warm}");

    let requests = requests.max(1);
    let mut rows = Vec::new();

    let before = server.transport_snapshot();
    let started = Instant::now();
    for _ in 0..requests {
        let (status, _) =
            http_call(&addr, "POST", "/v1/search", Some(&body)).expect("close-per-request call");
        assert_eq!(status, 200);
    }
    let seconds = started.elapsed().as_secs_f64();
    let after = server.transport_snapshot();
    rows.push(TransportThroughputRow {
        workload: format!("http/v4-x{requests}/close-per-request"),
        requests: requests as u64,
        seconds,
        requests_per_sec: requests as f64 / seconds.max(1e-9),
        connections: after.connections_accepted - before.connections_accepted,
        keepalive_reuses: after.keepalive_reuses - before.keepalive_reuses,
    });

    let before = server.transport_snapshot();
    let mut client = HttpClient::new(&addr).expect("client");
    let started = Instant::now();
    for _ in 0..requests {
        let (status, _) = client
            .call("POST", "/v1/search", Some(&body))
            .expect("keep-alive call");
        assert_eq!(status, 200);
    }
    let seconds = started.elapsed().as_secs_f64();
    let after = server.transport_snapshot();
    rows.push(TransportThroughputRow {
        workload: format!("http/v4-x{requests}/keepalive"),
        requests: requests as u64,
        seconds,
        requests_per_sec: requests as f64 / seconds.max(1e-9),
        connections: after.connections_accepted - before.connections_accepted,
        keepalive_reuses: after.keepalive_reuses - before.keepalive_reuses,
    });

    server.shutdown();
    rows
}

/// One row of the `admission_overload` section: the daemon under sustained
/// overload (one worker, a tiny queue, more clients than slots) with one of
/// the two shed policies.
///
/// `reject-newest` is the blind tail-drop baseline (the pre-admission-
/// control behaviour: a full queue 503s the newcomer no matter what it is);
/// `least-valuable` is the deadline/priority-aware policy. The headline
/// column is `valuable_goodput_per_sec`: completed high-priority requests
/// per second — the traffic the operator actually cares about under
/// overload.
#[derive(Debug, Clone, Serialize)]
pub struct AdmissionOverloadRow {
    /// Shed policy the daemon ran with.
    pub policy: String,
    /// Client requests issued (all classes).
    pub requests: u64,
    /// Requests answered `200`.
    pub completed: u64,
    /// High-priority (zipf-distributed search) requests issued.
    pub valuable_requests: u64,
    /// High-priority requests answered `200`.
    pub valuable_completed: u64,
    /// Requests shed (`429`) or refused (`503`).
    pub shed_or_rejected: u64,
    /// Requests that ran past their deadline (`408`).
    pub timeouts: u64,
    /// Wall-clock seconds of the measured window.
    pub seconds: f64,
    /// Completed requests per second, all classes.
    pub goodput_per_sec: f64,
    /// Completed high-priority requests per second.
    pub valuable_goodput_per_sec: f64,
    /// `shed_or_rejected / requests`.
    pub shed_rate: f64,
    /// Median admission-queue wait (histogram bucket bound, ms).
    pub queue_wait_p50_ms: f64,
    /// 99th-percentile admission-queue wait (bucket bound, ms).
    pub queue_wait_p99_ms: f64,
}

/// A deterministic xorshift64 step (the bench must not depend on external
/// PRNG crates or wall-clock seeding).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Samples a zipf-ish rank in `0..n`: rank `r` has weight `1/(r+1)`.
fn zipf_rank(state: &mut u64, n: usize) -> usize {
    let weights: Vec<f64> = (0..n).map(|r| 1.0 / (r + 1) as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut u = (xorshift(state) >> 11) as f64 / (1u64 << 53) as f64 * total;
    for (rank, w) in weights.iter().enumerate() {
        if u < *w {
            return rank;
        }
        u -= w;
    }
    n - 1
}

/// Reads the `le`-bucket cumulative counts of a Prometheus histogram out of
/// `/metrics` text and returns the smallest bucket bound (in ms) whose
/// cumulative count reaches quantile `q`.
fn histogram_quantile_ms(metrics: &str, name: &str, q: f64) -> f64 {
    let prefix = format!("{name}_bucket{{le=\"");
    let mut buckets: Vec<(f64, u64)> = Vec::new();
    for line in metrics.lines() {
        if let Some(rest) = line.strip_prefix(&prefix) {
            let Some((bound, count)) = rest.split_once("\"} ") else {
                continue;
            };
            let bound = if bound == "+Inf" {
                f64::INFINITY
            } else {
                bound.parse().unwrap_or(f64::INFINITY)
            };
            if let Ok(count) = count.trim().parse::<u64>() {
                buckets.push((bound, count));
            }
        }
    }
    let Some(&(_, total)) = buckets.last() else {
        return 0.0;
    };
    let need = (q * total as f64).ceil() as u64;
    for (bound, count) in buckets {
        if count >= need.max(1) {
            return bound * 1e3;
        }
    }
    0.0
}

/// Measures goodput under sustained overload with each shed policy: one
/// worker and a 2-deep queue, hammered by background spam (hopeless
/// 8-device X-shape searches bounded to 150 ms by their deadline, priority
/// 0) and by high-priority zipf-distributed searches over the 4-device
/// synthetic shapes (every other repeat device-rotated, so the tail mixes
/// canonical-fingerprint hits with cold solves).
#[must_use]
pub fn admission_overload_rows(window: std::time::Duration) -> Vec<AdmissionOverloadRow> {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use tessel_service::http::http_call;
    use tessel_service::wire::SearchRequest;
    use tessel_service::{
        HttpClient, HttpServer, ScheduleService, ServerConfig, ServiceConfig, ShedPolicy,
    };

    const SPAM_THREADS: usize = 6;
    const VALUABLE_THREADS: usize = 4;

    // The zipf catalog: 4-device synthetic shapes at several micro-batch
    // counts. Rank 0 is the hot entry; deep ranks are cold solves.
    let catalog: Vec<String> = {
        let mut bodies = Vec::new();
        for mb in [8usize, 6, 7] {
            for shape in [ShapeKind::V, ShapeKind::M, ShapeKind::NN, ShapeKind::K] {
                let placement = synthetic_placement(shape, 4).expect("placement");
                for rotated in [false, true] {
                    let variant = if rotated {
                        let rotation: Vec<usize> = (0..4).map(|d| (d + 1) % 4).collect();
                        let order: Vec<usize> = (0..placement.num_blocks()).collect();
                        placement.permuted(&rotation, &order).expect("permutation")
                    } else {
                        placement.clone()
                    };
                    let mut request = SearchRequest::for_placement(variant);
                    request.num_micro_batches = Some(mb);
                    request.max_repetend_micro_batches = Some(3);
                    request.priority = Some(5);
                    request.deadline_ms = Some(2_000);
                    bodies.push(serde_json::to_string(&request).expect("request"));
                }
            }
        }
        bodies
    };
    // Spam cycles through distinct micro-batch counts so nearly every spam
    // request is a cold solve: real worker time burned (bounded by the
    // 150 ms deadline), not a cache hit.
    let spam_bodies: Vec<String> = {
        let placement = synthetic_placement(ShapeKind::X, 8).expect("placement");
        (0..64usize)
            .map(|i| {
                let mut request = SearchRequest::for_placement(placement.clone());
                request.num_micro_batches = Some(8 + i);
                request.max_repetend_micro_batches = Some(4);
                request.solver_threads = Some(1);
                request.priority = Some(0);
                request.deadline_ms = Some(150);
                serde_json::to_string(&request).expect("request")
            })
            .collect()
    };

    let mut rows = Vec::new();
    for policy in [ShedPolicy::RejectNewest, ShedPolicy::LeastValuable] {
        let service = ScheduleService::new(ServiceConfig {
            default_micro_batches: 8,
            default_max_repetend: 3,
            portfolio_threads: 1,
            solver_threads: 1,
            candidate_limit: Some(600),
            ..ServiceConfig::default()
        })
        .expect("service");
        let server = HttpServer::serve(
            Arc::new(service),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 1,
                queue_depth: 2,
                shed_policy: policy,
                ..ServerConfig::default()
            },
        )
        .expect("server");
        let addr = server.local_addr().to_string();

        let stop = Arc::new(AtomicBool::new(false));
        let issued = Arc::new(AtomicU64::new(0));
        let completed = Arc::new(AtomicU64::new(0));
        let valuable_issued = Arc::new(AtomicU64::new(0));
        let valuable_completed = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let timeouts = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for thread in 0..SPAM_THREADS + VALUABLE_THREADS {
            let spam = thread < SPAM_THREADS;
            let addr = addr.clone();
            let stop = stop.clone();
            let issued = issued.clone();
            let completed = completed.clone();
            let valuable_issued = valuable_issued.clone();
            let valuable_completed = valuable_completed.clone();
            let shed = shed.clone();
            let timeouts = timeouts.clone();
            let catalog = catalog.clone();
            let spam_bodies = spam_bodies.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = 0x9E37_79B9_7F4A_7C15u64 ^ (thread as u64 + 1);
                let mut spam_cursor = thread;
                let mut client = HttpClient::new(&addr).expect("client");
                while !stop.load(Ordering::Relaxed) {
                    let body = if spam {
                        spam_cursor += SPAM_THREADS;
                        &spam_bodies[spam_cursor % spam_bodies.len()]
                    } else {
                        &catalog[zipf_rank(&mut rng, catalog.len())]
                    };
                    issued.fetch_add(1, Ordering::Relaxed);
                    if !spam {
                        valuable_issued.fetch_add(1, Ordering::Relaxed);
                    }
                    match client.call("POST", "/v1/search", Some(body)) {
                        Ok((200, _)) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                            if !spam {
                                valuable_completed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok((429 | 503, _)) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                            // Bound the reject-retry spin without draining
                            // the pressure the bench is about.
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Ok((408, _)) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {}
                        Err(_) => {
                            client = HttpClient::new(&addr).expect("client");
                        }
                    }
                }
            }));
        }
        let started = Instant::now();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            handle.join().expect("client thread");
        }
        let seconds = started.elapsed().as_secs_f64();

        let (status, metrics) = http_call(&addr, "GET", "/metrics", None).expect("metrics");
        assert_eq!(status, 200, "{metrics}");
        let requests = issued.load(Ordering::Relaxed);
        let completed = completed.load(Ordering::Relaxed);
        let valuable_requests = valuable_issued.load(Ordering::Relaxed);
        let valuable_completed = valuable_completed.load(Ordering::Relaxed);
        let shed_or_rejected = shed.load(Ordering::Relaxed);
        rows.push(AdmissionOverloadRow {
            policy: match policy {
                ShedPolicy::LeastValuable => "least-valuable".into(),
                ShedPolicy::RejectNewest => "reject-newest".into(),
            },
            requests,
            completed,
            valuable_requests,
            valuable_completed,
            shed_or_rejected,
            timeouts: timeouts.load(Ordering::Relaxed),
            seconds,
            goodput_per_sec: completed as f64 / seconds.max(1e-9),
            valuable_goodput_per_sec: valuable_completed as f64 / seconds.max(1e-9),
            shed_rate: shed_or_rejected as f64 / (requests.max(1)) as f64,
            queue_wait_p50_ms: histogram_quantile_ms(
                &metrics,
                "tessel_admission_wait_seconds",
                0.50,
            ),
            queue_wait_p99_ms: histogram_quantile_ms(
                &metrics,
                "tessel_admission_wait_seconds",
                0.99,
            ),
        });
        server.shutdown();
    }
    rows
}

/// The `anytime_streaming` section: client-observed latency to the first
/// incumbent event of a streamed search vs the total search wall-clock.
#[derive(Debug, Clone, Serialize)]
pub struct AnytimeStreamingRow {
    /// Workload description.
    pub workload: String,
    /// Milliseconds until the first incumbent event arrived.
    pub first_incumbent_ms: f64,
    /// Incumbent events before the terminal event.
    pub incumbents: u64,
    /// Milliseconds until the terminal result event arrived.
    pub total_ms: f64,
    /// `first_incumbent_ms / total_ms`.
    pub first_incumbent_fraction: f64,
}

/// Measures anytime streaming on a search slow enough to be worth watching:
/// the 8-device X-shape portfolio (bounded by a candidate limit), streamed
/// over `POST /v1/search?stream=1`.
#[must_use]
pub fn anytime_streaming_row() -> AnytimeStreamingRow {
    use std::sync::Arc;
    use tessel_service::http::http_call_streaming;
    use tessel_service::wire::SearchRequest;
    use tessel_service::{HttpServer, ScheduleService, ServerConfig, ServiceConfig};

    let service = ScheduleService::new(ServiceConfig {
        default_micro_batches: 8,
        default_max_repetend: 4,
        portfolio_threads: 1,
        solver_threads: 1,
        candidate_limit: Some(600),
        ..ServiceConfig::default()
    })
    .expect("service");
    let server = HttpServer::serve(
        Arc::new(service),
        &ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr().to_string();
    let placement = synthetic_placement(ShapeKind::X, 8).expect("placement");
    let body = serde_json::to_string(&SearchRequest::for_placement(placement)).expect("request");

    let started = Instant::now();
    let mut first_incumbent = None;
    let mut incumbents = 0u64;
    let (status, _last) = http_call_streaming(&addr, "/v1/search?stream=1", &body, |event| {
        if event.contains("\"incumbent\"") {
            incumbents += 1;
            first_incumbent.get_or_insert(started.elapsed());
        }
    })
    .expect("streamed search");
    let total = started.elapsed();
    assert_eq!(status, 200);
    server.shutdown();

    let first_ms = first_incumbent.map_or(0.0, |d| d.as_secs_f64() * 1e3);
    let total_ms = total.as_secs_f64() * 1e3;
    AnytimeStreamingRow {
        workload: "stream/x8-mb8-nr4".into(),
        first_incumbent_ms: first_ms,
        incumbents,
        total_ms,
        first_incumbent_fraction: first_ms / total_ms.max(1e-9),
    }
}

/// One mode of the `observability_overhead` section: the cache-hit repeat
/// workload with the live-plane sampler on or off.
#[derive(Debug, Clone, Serialize)]
pub struct ObservabilityOverheadRow {
    /// `sampler-off` or `sampler-<interval>ms`.
    pub mode: String,
    /// Keep-alive requests measured (cache hits, transport-bound).
    pub requests: u64,
    /// Wall-clock seconds of the best pass.
    pub seconds: f64,
    /// Requests per second of the best pass.
    pub requests_per_sec: f64,
}

/// The `observability_overhead` section: sampler-on vs sampler-off
/// throughput on the same workload, with the relative delta the live plane
/// costs.
#[derive(Debug, Clone, Serialize)]
pub struct ObservabilityOverheadSection {
    /// Both modes' best-of-`passes` measurements.
    pub rows: Vec<ObservabilityOverheadRow>,
    /// `(off - on) / off`: the throughput fraction the sampler costs
    /// (negative means the difference sank below run-to-run noise).
    pub delta_fraction: f64,
    /// The budget this section is tracked against.
    pub target_max_fraction: f64,
}

/// Measures the live-plane sampler's overhead: the same keep-alive
/// cache-hit repeat workload against one daemon with the sampler off and
/// one sampling aggressively (10 ms — 100× the default cadence), best of
/// `passes` passes each, interleaved so drift hits both modes equally.
#[must_use]
pub fn observability_overhead_rows(requests: usize, passes: usize) -> ObservabilityOverheadSection {
    use std::sync::Arc;
    use tessel_service::http::http_call;
    use tessel_service::wire::SearchRequest;
    use tessel_service::{HttpClient, HttpServer, ScheduleService, ServerConfig, ServiceConfig};

    const SAMPLE_INTERVAL_MS: u64 = 10;
    let requests = requests.max(1);
    let placement = synthetic_placement(ShapeKind::V, 4).expect("placement");
    let body = serde_json::to_string(&SearchRequest::for_placement(placement)).expect("request");

    let start_daemon = |sample_interval_ms: u64| {
        let service = ScheduleService::new(ServiceConfig {
            default_micro_batches: 8,
            default_max_repetend: 3,
            candidate_limit: Some(600),
            ..ServiceConfig::default()
        })
        .expect("service");
        let server = HttpServer::serve(
            Arc::new(service),
            &ServerConfig {
                addr: "127.0.0.1:0".into(),
                sample_interval_ms,
                ..ServerConfig::default()
            },
        )
        .expect("server");
        let addr = server.local_addr().to_string();
        // Warm the cache so every measured request is a transport-bound hit.
        let (status, warm) = http_call(&addr, "POST", "/v1/search", Some(&body)).expect("warmup");
        assert_eq!(status, 200, "warmup failed: {warm}");
        (server, addr)
    };

    let (server_off, addr_off) = start_daemon(0);
    let (server_on, addr_on) = start_daemon(SAMPLE_INTERVAL_MS);
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..passes.max(1) {
        for (addr, best) in [(&addr_off, &mut best_off), (&addr_on, &mut best_on)] {
            let mut client = HttpClient::new(addr).expect("client");
            let started = Instant::now();
            for _ in 0..requests {
                let (status, _) = client
                    .call("POST", "/v1/search", Some(&body))
                    .expect("repeat call");
                assert_eq!(status, 200);
            }
            let seconds = started.elapsed().as_secs_f64();
            if seconds < *best {
                *best = seconds;
            }
        }
    }
    server_off.shutdown();
    server_on.shutdown();

    let rate = |seconds: f64| requests as f64 / seconds.max(1e-9);
    ObservabilityOverheadSection {
        rows: vec![
            ObservabilityOverheadRow {
                mode: "sampler-off".into(),
                requests: requests as u64,
                seconds: best_off,
                requests_per_sec: rate(best_off),
            },
            ObservabilityOverheadRow {
                mode: format!("sampler-{SAMPLE_INTERVAL_MS}ms"),
                requests: requests as u64,
                seconds: best_on,
                requests_per_sec: rate(best_on),
            },
        ],
        delta_fraction: (rate(best_off) - rate(best_on)) / rate(best_off).max(1e-9),
        target_max_fraction: 0.02,
    }
}

/// Runs the service workloads (in-process and socket-level) and updates
/// their `BENCH_search.json` sections.
pub fn emit_service() {
    write_section("host", &HostInfo::capture());
    let results = service_rows(16);
    write_section("service_throughput", &results.throughput);
    for row in &results.throughput {
        println!(
            "service_throughput {:<24} {:>3} reqs hit_rate={:.2} {:>8.1} req/s p50={:.3}ms p99={:.3}ms",
            row.workload, row.requests, row.hit_rate, row.requests_per_sec, row.p50_ms, row.p99_ms
        );
    }
    write_section("request_stage_latency", &results.stage_latency);
    for row in &results.stage_latency {
        println!(
            "request_stage_latency {:<18} {:>4} samples median={:.3}ms max={:.3}ms",
            row.stage, row.samples, row.median_ms, row.max_ms
        );
    }
    let transport = transport_rows(200);
    write_section("http_transport", &transport);
    for row in &transport {
        println!(
            "http_transport {:<36} {:>4} reqs {:>8.1} req/s conns={} reuses={}",
            row.workload, row.requests, row.requests_per_sec, row.connections, row.keepalive_reuses
        );
    }
    let overload = admission_overload_rows(std::time::Duration::from_secs(4));
    write_section("admission_overload", &overload);
    for row in &overload {
        println!(
            "admission_overload {:<16} {:>5} reqs goodput={:>6.1}/s valuable={:>5.1}/s \
             shed_rate={:.2} wait_p50={:.1}ms p99={:.1}ms",
            row.policy,
            row.requests,
            row.goodput_per_sec,
            row.valuable_goodput_per_sec,
            row.shed_rate,
            row.queue_wait_p50_ms,
            row.queue_wait_p99_ms
        );
    }
    let streaming = anytime_streaming_row();
    write_section("anytime_streaming", &streaming);
    println!(
        "anytime_streaming {:<20} first_incumbent={:.1}ms of {:.1}ms total ({:.1}% in, {} incumbents)",
        streaming.workload,
        streaming.first_incumbent_ms,
        streaming.total_ms,
        streaming.first_incumbent_fraction * 100.0,
        streaming.incumbents
    );
    let overhead = observability_overhead_rows(2000, 5);
    write_section("observability_overhead", &overhead);
    for row in &overhead.rows {
        println!(
            "observability_overhead {:<14} {:>4} reqs {:>8.1} req/s",
            row.mode, row.requests, row.requests_per_sec
        );
    }
    println!(
        "observability_overhead delta={:.2}% (target <{:.0}%)",
        overhead.delta_fraction * 100.0,
        overhead.target_max_fraction * 100.0
    );
}

/// Host metadata stored alongside the measurements so thread-scaling rows
/// can be interpreted (a single-core host cannot show wall-clock speedups
/// from hardware parallelism, only from portfolio-effect pruning).
#[derive(Debug, Clone, Serialize)]
pub struct HostInfo {
    /// Available hardware parallelism.
    pub cpus: usize,
    /// `git rev-parse HEAD` of the workspace at measurement time
    /// (`"unknown"` outside a git checkout), so a snapshot can be tied back
    /// to the exact code it measured.
    pub git_commit: String,
    /// How the snapshot was produced.
    pub generated_by: String,
}

impl HostInfo {
    /// Captures the current host.
    #[must_use]
    pub fn capture() -> Self {
        HostInfo {
            cpus: std::thread::available_parallelism().map_or(1, usize::from),
            git_commit: git_commit_hash(),
            generated_by: "cargo run --release -p tessel-bench --bin bench_search".into(),
        }
    }
}

/// The workspace's current commit hash, or `"unknown"`. Anchored to the
/// manifest directory: bench binaries may run with an arbitrary working
/// directory (`cargo bench` uses the package dir).
fn git_commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|hash| hash.trim().to_string())
        .filter(|hash| !hash.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Drains the criterion measurements recorded so far in this process into
/// `(id, seconds)` rows for a `criterion_*` section.
#[must_use]
pub fn criterion_rows() -> Vec<(String, f64)> {
    criterion::take_measurements()
        .into_iter()
        .map(|m| (m.id, m.mean_ns / 1e9))
        .collect()
}

/// Runs the work-stealing scaling measurement and updates its section.
pub fn emit_parallel_scaling() {
    write_section("host", &HostInfo::capture());
    let rows = solver_parallel_scaling_rows();
    write_section("solver_parallel_scaling", &rows);
    for row in &rows {
        println!(
            "solver_parallel_scaling {:<22} threads={} {:>10} nodes ({:.2}x serial) \
             dedup={:.2} steals={:>5} {:>7.3}s makespan={:?}",
            row.instance,
            row.threads,
            row.nodes,
            row.nodes_vs_serial,
            row.memo_dedup,
            row.steals,
            row.seconds,
            row.makespan
        );
    }
}

/// Runs all solver measurement suites and updates their sections. The
/// `host` section is written by the trailing [`emit_parallel_scaling`] call.
pub fn emit_all() {
    let scaling = solver_scaling_rows();
    write_section("solver_scaling", &scaling);
    let portfolio = portfolio_rows();
    write_section("portfolio_search", &portfolio);
    for row in &scaling {
        println!(
            "solver_scaling {:<28} {:>8} threads={} {:>12.0} nodes/s",
            row.instance, row.engine, row.threads, row.nodes_per_sec
        );
    }
    for row in &portfolio {
        println!(
            "portfolio_search {:<10} threads={} {:>8.3}s speedup={:.2}x period={}",
            row.shape, row.threads, row.seconds, row.speedup_vs_serial, row.period
        );
    }
    emit_parallel_scaling();
    emit_thread_scaling();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_latency_rows_compute_medians_in_taxonomy_order() {
        let rows = stage_latency_rows(vec![
            ("serialize".to_string(), vec![40, 10, 20]),
            ("parse".to_string(), vec![2, 4]),
            ("mystery".to_string(), vec![7]),
        ]);
        let names: Vec<&str> = rows.iter().map(|r| r.stage.as_str()).collect();
        // Taxonomy order (parse before serialize), unknown stages last.
        assert_eq!(names, ["parse", "serialize", "mystery"]);
        assert_eq!(rows[0].median_ms, 0.003); // even count: mean of middles
        assert_eq!(rows[1].median_ms, 0.020); // odd count: middle sample
        assert_eq!(rows[1].max_ms, 0.040);
        assert_eq!(rows[1].samples, 3);
    }

    #[test]
    fn host_info_records_the_git_commit() {
        let host = HostInfo::capture();
        // This workspace is a git checkout, so the stamp must be a real
        // 40-hex commit hash, not the fallback.
        assert_eq!(host.git_commit.len(), 40, "{}", host.git_commit);
        assert!(host.git_commit.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn sections_merge_instead_of_clobbering() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("BENCH_test-{}.json", std::process::id()));
        write_section_to(&path, "alpha", &vec![1u64, 2]);
        write_section_to(&path, "beta", &"hello".to_string());
        write_section_to(&path, "alpha", &vec![3u64]);
        let text = std::fs::read_to_string(&path).unwrap();
        let value: serde::Value = serde_json::from_str(&text).unwrap();
        let entries = value.as_map().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "alpha");
        assert_eq!(entries[1].0, "beta");
        let _ = std::fs::remove_file(&path);
    }
}
